"""Per-client reports and experiment-level aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.energy.model import EnergyBreakdown


@dataclass(frozen=True, slots=True)
class ClientReport:
    """Everything the paper reports about one client.

    ``energy_saved_pct`` compares the power-aware client against its
    own naive counterpart (same traffic, card always in high-power
    mode) — the paper's headline metric.
    """

    name: str
    ip: str
    kind: str  # "video" | "web" | "ftp"
    breakdown: EnergyBreakdown
    naive: EnergyBreakdown
    bytes_received: int
    bytes_sent: int
    packets_expected: int
    packets_missed: int
    missed_schedules: int
    schedules_heard: int
    early_wait_s: float
    miss_recovery_s: float
    optimal_saved_pct: Optional[float] = None
    extra: dict = field(default_factory=dict)

    @property
    def energy_j(self) -> float:
        """Energy the power-aware client used."""
        return self.breakdown.energy_j

    @property
    def naive_energy_j(self) -> float:
        """Energy a naive (always-on) client would have used."""
        return self.naive.energy_j

    @property
    def energy_saved_pct(self) -> float:
        """Percent energy saved versus the naive client."""
        if self.naive.energy_j <= 0:
            return 0.0
        return 100.0 * (1.0 - self.breakdown.energy_j / self.naive.energy_j)

    @property
    def loss_pct(self) -> float:
        """Percent of expected packets missed (lost/dropped on the air)."""
        if self.packets_expected <= 0:
            return 0.0
        return 100.0 * self.packets_missed / self.packets_expected

    @property
    def gap_to_optimal_pct(self) -> Optional[float]:
        """How far the measured savings fall short of the optimum."""
        if self.optimal_saved_pct is None:
            return None
        return self.optimal_saved_pct - self.energy_saved_pct


@dataclass(frozen=True, slots=True)
class ExperimentSummary:
    """Average / min / max statistics over a set of client reports.

    ``drops`` is the scenario's unified drop/fault accounting (one
    entry per counter key, e.g. ``"link.dropped"``,
    ``"faults.blackout"``) — where every lost packet went.
    """

    count: int
    avg_saved_pct: float
    min_saved_pct: float
    max_saved_pct: float
    avg_loss_pct: float
    max_loss_pct: float
    drops: dict = field(default_factory=dict)

    @property
    def total_drops(self) -> int:
        """Every packet any layer discarded or failed to deliver."""
        return sum(self.drops.values())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        text = (
            f"n={self.count} saved avg={self.avg_saved_pct:.1f}% "
            f"[{self.min_saved_pct:.1f}, {self.max_saved_pct:.1f}] "
            f"loss avg={self.avg_loss_pct:.2f}% max={self.max_loss_pct:.2f}%"
        )
        if self.drops:
            text += f" drops={self.total_drops}"
        return text


def summarize(
    reports: Sequence[ClientReport],
    drops: Optional[dict] = None,
) -> ExperimentSummary:
    """Aggregate client reports the way the paper's bar charts do."""
    if not reports:
        return ExperimentSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, drops or {})
    saved = [report.energy_saved_pct for report in reports]
    loss = [report.loss_pct for report in reports]
    return ExperimentSummary(
        count=len(reports),
        avg_saved_pct=sum(saved) / len(saved),
        min_saved_pct=min(saved),
        max_saved_pct=max(saved),
        avg_loss_pct=sum(loss) / len(loss),
        max_loss_pct=max(loss),
        drops=drops or {},
    )
