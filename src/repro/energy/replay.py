"""Postmortem policy replay — the paper's actual methodology (§4.1).

The paper never measured client energy live: the monitoring station
captured the wireless traffic once, and a simulator then computed "how
much energy the client would use by transitioning its WNIC between
modes **according to a given delay compensation algorithm**" — i.e.
one capture, many hypothetical client policies.

:func:`replay_policy` is that simulator. It re-runs the real
:class:`~repro.core.client.PowerAwareClient` daemon against a recorded
frame sequence: frames are replayed at their captured times, the
hypothetical WNIC's sleep/awake state decides which of them the client
would have received, and the result is analyzed with the same energy
model. Sweeping early-transition amounts (Figure 6) then costs one
capture instead of six live runs.

Note the inherent approximation the paper shares: the capture is
fixed, so a hypothetical client that misses *more* packets cannot
change the proxy's retransmission behaviour. For UDP video (Figure 6's
workload) there is no feedback path at this timescale and the replay
is faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence

if TYPE_CHECKING:
    from repro.sweep import SweepEngine

from repro.core.client import PowerAwareClient
from repro.core.delay_comp import DelayCompensator
from repro.energy.analyzer import EnergyAnalyzer
from repro.energy.report import ClientReport
from repro.errors import TraceError
from repro.net.addr import BROADCAST_IP, Endpoint
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.sniffer import FrameRecord
from repro.obs.recorder import SimRecorder
from repro.sim import Simulator, TraceRecorder
from repro.wnic.power import PowerModel
from repro.wnic.states import Wnic


@dataclass(frozen=True, slots=True)
class ReplayResult:
    """Outcome of replaying one policy over one capture."""

    report: ClientReport
    frames_delivered: int
    frames_missed: int
    schedules_heard: int
    missed_schedules: int


def _rebuild_packet(frame: FrameRecord) -> Packet:
    """Reconstruct enough of a packet for the client daemon's logic."""
    meta = dict(frame.schedule_meta) if frame.schedule_meta else {}
    return Packet(
        proto=frame.proto,
        src=Endpoint(frame.src_ip, frame.src_port or 1),
        dst=Endpoint(frame.dst_ip, frame.dst_port or 1),
        payload_size=frame.payload_size,
        tos_marked=frame.tos_marked,
        meta=meta,
        created_at=frame.start,
    )


def replay_policy(
    frames: Sequence[FrameRecord],
    client_ip: str,
    compensator: DelayCompensator,
    power: PowerModel,
    duration_s: Optional[float] = None,
    client_kwargs: Optional[dict] = None,
) -> ReplayResult:
    """Replay a capture against a hypothetical client policy.

    Args:
        frames: the monitoring station's capture (time-ordered).
        client_ip: which client to re-simulate.
        compensator: the delay-compensation algorithm under test.
        power: card power model for the final accounting.
        duration_s: analysis horizon (defaults to the last frame time).
        client_kwargs: extra ``PowerAwareClient`` arguments.
    """
    if not frames:
        raise TraceError("cannot replay an empty capture")
    horizon = duration_s if duration_s is not None else frames[-1].end + 0.001

    sim = Simulator()
    trace = TraceRecorder()
    recorder = SimRecorder(trace=trace)
    node = Node(sim, f"replay-{client_ip}", client_ip, obs=recorder)
    node.add_interface("wl0")
    wnic = Wnic(sim, node.name, obs=recorder)
    daemon = PowerAwareClient(
        node, wnic, compensator, obs=recorder, **(client_kwargs or {})
    )

    delivered = {"n": 0}
    missed = {"n": 0}

    def deliver(frame: FrameRecord) -> None:
        if frame.src_ip == client_ip:
            return  # our own (recorded) transmissions
        addressed = frame.broadcast or frame.dst_ip == client_ip
        if not addressed:
            return
        if wnic.is_awake:
            delivered["n"] += 1
            node.on_receive(node.interfaces["wl0"], _rebuild_packet(frame))
        else:
            missed["n"] += 1
            if frame.payload_size > 0 and not frame.broadcast:
                recorder.event(
                    sim.now, "medium.miss",
                    dst=client_ip, proto=frame.proto,
                    size=frame.wire_size, payload=frame.payload_size,
                    marked=frame.tos_marked, broadcast=frame.broadcast,
                    packet_id=frame.packet_id,
                )

    for frame in frames:
        if frame.end > horizon:
            break
        sim.call_at(frame.end, lambda f=frame: deliver(f))
    sim.run(until=horizon)

    analyzer = EnergyAnalyzer(list(frames), power, duration_s=horizon, trace=trace)
    report = analyzer.analyze(
        name=node.name,
        ip=client_ip,
        wnic=wnic,
        missed_schedules=daemon.missed_schedules,
        schedules_heard=daemon.schedules_heard,
        early_wait_s=daemon.early_wait_s,
        miss_recovery_s=daemon.miss_recovery_s,
    )
    return ReplayResult(
        report=report,
        frames_delivered=delivered["n"],
        frames_missed=missed["n"],
        schedules_heard=daemon.schedules_heard,
        missed_schedules=daemon.missed_schedules,
    )


def sweep_early_amounts(
    frames: Sequence[FrameRecord],
    client_ip: str,
    power: PowerModel,
    early_amounts_s: Sequence[float],
    compensator_factory: Optional[Callable[[float], DelayCompensator]] = None,
    duration_s: Optional[float] = None,
    client_kwargs: Optional[dict] = None,
    engine: Optional["SweepEngine"] = None,
) -> list[tuple[float, ReplayResult]]:
    """Figure 6 from one capture: replay several early amounts.

    The default adaptive-compensator sweep fans out through the sweep
    engine (task ``replay-early``), so replays cache and parallelize
    like live experiments. A custom ``compensator_factory`` is a live
    callable — it cannot be content-addressed — so that path replays
    serially in-process, bypassing the engine.
    """
    if compensator_factory is not None:
        return [
            (
                early,
                replay_policy(
                    frames, client_ip, compensator_factory(early), power,
                    duration_s=duration_s,
                    client_kwargs=client_kwargs,
                ),
            )
            for early in early_amounts_s
        ]

    from repro.sweep import SweepEngine, SweepSpec

    if engine is None:
        engine = SweepEngine()
    frame_list = list(frames)
    outcome = engine.run(
        SweepSpec.from_tasks(
            "replay_early_sweep",
            "replay-early",
            [
                {
                    "frames": frame_list,
                    "client_ip": client_ip,
                    "power": power,
                    "early_s": early,
                    "duration_s": duration_s,
                    "client_kwargs": client_kwargs,
                }
                for early in early_amounts_s
            ],
            labels=[{"early_s": early} for early in early_amounts_s],
        )
    )
    return list(zip(early_amounts_s, outcome.results))
