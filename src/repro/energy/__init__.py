"""Postmortem energy analysis.

Reproduces the paper's §3.1/§4.1 methodology: a simulator reads the
monitoring station's wireless capture after the experiment and
computes, per client, (1) time in high- and low-power mode, (2) bytes
transmitted and received, (3) packets lost or dropped, and (4) total
WNIC energy — compared against a *naive* client that keeps its card in
high-power mode throughout, and against the closed-form theoretical
optimum of §4.3.
"""

from repro.energy.analyzer import EnergyAnalyzer
from repro.energy.model import EnergyBreakdown, integrate_intervals
from repro.energy.optimal import optimal_energy_saved_pct
from repro.energy.report import ClientReport, ExperimentSummary, summarize

__all__ = [
    "ClientReport",
    "EnergyAnalyzer",
    "EnergyBreakdown",
    "ExperimentSummary",
    "integrate_intervals",
    "optimal_energy_saved_pct",
    "summarize",
]
