"""The postmortem trace simulator (paper §3.1, §4.1).

Reads the monitoring station's capture after a run and produces one
:class:`~repro.energy.report.ClientReport` per client:

* high-/low-power residency from the client's WNIC transition log,
* receive/transmit residency from frame airtime overlapped with the
  awake timeline,
* packets lost (UDP) / dropped (TCP) from the medium's miss records,
* energy under a :class:`~repro.wnic.power.PowerModel`, versus the
  naive always-on client over the identical traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.energy.model import (
    EnergyBreakdown,
    integrate_intervals,
    naive_breakdown,
)
from repro.energy.report import ClientReport
from repro.errors import TraceError
from repro.net.sniffer import FrameRecord
from repro.sim.trace import TraceRecorder
from repro.wnic.power import PowerModel
from repro.wnic.states import Wnic


class EnergyAnalyzer:
    """Postmortem per-client energy and loss accounting."""

    def __init__(
        self,
        frames: Sequence[FrameRecord],
        power: PowerModel,
        duration_s: float,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if duration_s <= 0:
            raise TraceError(f"duration must be positive: {duration_s!r}")
        self.frames = list(frames)
        self.power = power
        self.duration_s = duration_s
        self.trace = trace

    # -- frame selection ---------------------------------------------------

    def rx_intervals(self, ip: str) -> list[tuple[float, float]]:
        """Airtime of frames the client's radio would decode (unicast to
        it plus broadcasts)."""
        return [
            (frame.start, frame.end)
            for frame in self.frames
            if frame.dst_ip == ip or frame.broadcast
        ]

    def tx_intervals(self, ip: str) -> list[tuple[float, float]]:
        """Airtime of frames transmitted by the client."""
        return [
            (frame.start, frame.end)
            for frame in self.frames
            if frame.src_ip == ip
        ]

    def data_frames_to(self, ip: str) -> list[FrameRecord]:
        """Unicast data frames (payload > 0) addressed to ``ip``."""
        return [
            frame
            for frame in self.frames
            if frame.dst_ip == ip and not frame.broadcast and frame.payload_size > 0
        ]

    def missed_data_packets(self, ip: str) -> list:
        """Medium miss records for unicast data addressed to ``ip``."""
        if self.trace is None:
            return []
        return [
            row
            for row in self.trace.query("medium.miss")
            if row.fields["dst"] == ip
            and not row.fields["broadcast"]
            and row.fields["payload"] > 0
        ]

    # -- analysis ----------------------------------------------------------

    def analyze(
        self,
        name: str,
        ip: str,
        wnic: Wnic,
        kind: str = "video",
        optimal_saved_pct: Optional[float] = None,
        missed_schedules: int = 0,
        schedules_heard: int = 0,
        early_wait_s: float = 0.0,
        miss_recovery_s: float = 0.0,
        extra: Optional[dict] = None,
    ) -> ClientReport:
        """Produce the report for one client.

        ``missed_schedules`` / ``early_wait_s`` / ``miss_recovery_s``
        come from the client daemon's own counters — the trace cannot
        distinguish *why* a client was awake, only *that* it was.
        """
        awake = wnic.awake_intervals(self.duration_s)
        rx = self.rx_intervals(ip)
        tx = self.tx_intervals(ip)
        breakdown = integrate_intervals(
            awake=awake,
            rx_frames=rx,
            tx_frames=tx,
            duration_s=self.duration_s,
            wake_count=wnic.wake_count,
            power=self.power,
        )
        naive = naive_breakdown(
            rx_frames=rx,
            tx_frames=tx,
            duration_s=self.duration_s,
            power=self.power,
        )
        data_frames = self.data_frames_to(ip)
        missed = self.missed_data_packets(ip)
        delivered_bytes = sum(f.payload_size for f in data_frames) - sum(
            row.fields["payload"] for row in missed
        )
        return ClientReport(
            name=name,
            ip=ip,
            kind=kind,
            breakdown=breakdown,
            naive=naive,
            bytes_received=max(0, delivered_bytes),
            bytes_sent=sum(f.payload_size for f in self.frames if f.src_ip == ip),
            packets_expected=len(data_frames),
            packets_missed=len(missed),
            missed_schedules=missed_schedules,
            schedules_heard=schedules_heard,
            early_wait_s=early_wait_s,
            miss_recovery_s=miss_recovery_s,
            optimal_saved_pct=optimal_saved_pct,
            extra=dict(extra or {}),
        )

    def naive_report(self, name: str, ip: str, kind: str = "video") -> EnergyBreakdown:
        """Just the naive breakdown for ``ip`` (helper for tests)."""
        return naive_breakdown(
            rx_frames=self.rx_intervals(ip),
            tx_frames=self.tx_intervals(ip),
            duration_s=self.duration_s,
            power=self.power,
        )
