"""The postmortem trace simulator (paper §3.1, §4.1).

Reads the monitoring station's capture after a run and produces one
:class:`~repro.energy.report.ClientReport` per client:

* high-/low-power residency from the client's WNIC transition log,
* receive/transmit residency from frame airtime overlapped with the
  awake timeline,
* packets lost (UDP) / dropped (TCP) from the medium's miss records,
* energy under a :class:`~repro.wnic.power.PowerModel`, versus the
  naive always-on client over the identical traffic.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.energy.model import (
    EnergyBreakdown,
    integrate_intervals,
    naive_breakdown,
)
from repro.energy.report import ClientReport
from repro.errors import TraceError
from repro.net.sniffer import FrameRecord
from repro.sim.trace import TraceRecorder
from repro.wnic.power import PowerModel
from repro.wnic.states import Wnic

#: Per-client residency timeline: ip → ((time, cell_label), ...) steps,
#: each step holding from its time until the next step's time.
Residency = dict[str, tuple[tuple[float, str], ...]]


@dataclass
class _FrameIndex:
    """One-pass per-client index over the capture.

    Built lazily on first query; turns every per-client selector from an
    O(total frames) scan into a dict lookup. Positions are capture
    indices so unicast and broadcast interval lists can be re-merged in
    original capture order.
    """

    #: dst ip → [(position, start, end)] for unicast frames.
    unicast_rx: dict[str, list[tuple[int, float, float]]] = field(
        default_factory=dict
    )
    #: [(position, start, end, cell)] for broadcast frames.
    broadcasts: list[tuple[int, float, float, str]] = field(
        default_factory=list
    )
    #: src ip → [(start, end)].
    tx: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: dst ip → unicast data frames (payload > 0).
    data_frames: dict[str, list[FrameRecord]] = field(default_factory=dict)
    #: src ip → total payload bytes transmitted.
    sent_payload: dict[str, int] = field(default_factory=dict)
    #: dst ip → unicast data "medium.miss" trace rows.
    miss_rows: dict[str, list] = field(default_factory=dict)


class EnergyAnalyzer:
    """Postmortem per-client energy and loss accounting.

    ``residency`` (campus runs) maps each client to its roaming
    timeline; broadcast frames stamped with a cell label are then only
    charged to clients resident in that cell at the frame's start.
    Unlabeled frames (single-cell captures) are charged to everyone,
    which reproduces the paper's single-cell accounting.
    """

    def __init__(
        self,
        frames: Sequence[FrameRecord],
        power: PowerModel,
        duration_s: float,
        trace: Optional[TraceRecorder] = None,
        residency: Optional[Residency] = None,
    ) -> None:
        if duration_s <= 0:
            raise TraceError(f"duration must be positive: {duration_s!r}")
        self.frames = list(frames)
        self.power = power
        self.duration_s = duration_s
        self.trace = trace
        self.residency = residency
        self._index: Optional[_FrameIndex] = None

    def _ensure_index(self) -> _FrameIndex:
        if self._index is not None:
            return self._index
        index = _FrameIndex()
        for position, frame in enumerate(self.frames):
            if frame.broadcast:
                index.broadcasts.append(
                    (position, frame.start, frame.end, frame.cell)
                )
            else:
                index.unicast_rx.setdefault(frame.dst_ip, []).append(
                    (position, frame.start, frame.end)
                )
                if frame.payload_size > 0:
                    index.data_frames.setdefault(frame.dst_ip, []).append(
                        frame
                    )
            index.tx.setdefault(frame.src_ip, []).append(
                (frame.start, frame.end)
            )
            index.sent_payload[frame.src_ip] = (
                index.sent_payload.get(frame.src_ip, 0) + frame.payload_size
            )
        if self.trace is not None:
            for row in self.trace.query("medium.miss"):
                if not row.fields["broadcast"] and row.fields["payload"] > 0:
                    index.miss_rows.setdefault(row.fields["dst"], []).append(
                        row
                    )
        self._index = index
        return index

    def _broadcasts_heard(
        self, ip: str
    ) -> list[tuple[int, float, float, str]]:
        """Broadcast frames attributable to ``ip``'s radio."""
        broadcasts = self._ensure_index().broadcasts
        if self.residency is None:
            return broadcasts
        timeline = self.residency.get(ip)
        if timeline is None:
            return broadcasts
        times = [at for at, _ in timeline]
        heard = []
        for record in broadcasts:
            cell = record[3]
            if cell:
                step = max(0, bisect_right(times, record[1]) - 1)
                if timeline[step][1] != cell:
                    continue
            heard.append(record)
        return heard

    # -- frame selection ---------------------------------------------------

    def rx_intervals(self, ip: str) -> list[tuple[float, float]]:
        """Airtime of frames the client's radio would decode (unicast to
        it plus broadcasts), in capture order."""
        unicast = self._ensure_index().unicast_rx.get(ip, [])
        broadcasts = self._broadcasts_heard(ip)
        merged: list[tuple[float, float]] = []
        i = j = 0
        while i < len(unicast) and j < len(broadcasts):
            if unicast[i][0] < broadcasts[j][0]:
                merged.append((unicast[i][1], unicast[i][2]))
                i += 1
            else:
                merged.append((broadcasts[j][1], broadcasts[j][2]))
                j += 1
        merged.extend((start, end) for _, start, end in unicast[i:])
        merged.extend(
            (start, end) for _, start, end, _cell in broadcasts[j:]
        )
        return merged

    def tx_intervals(self, ip: str) -> list[tuple[float, float]]:
        """Airtime of frames transmitted by the client."""
        return list(self._ensure_index().tx.get(ip, ()))

    def data_frames_to(self, ip: str) -> list[FrameRecord]:
        """Unicast data frames (payload > 0) addressed to ``ip``."""
        return list(self._ensure_index().data_frames.get(ip, ()))

    def missed_data_packets(self, ip: str) -> list:
        """Medium miss records for unicast data addressed to ``ip``."""
        return list(self._ensure_index().miss_rows.get(ip, ()))

    # -- analysis ----------------------------------------------------------

    def analyze(
        self,
        name: str,
        ip: str,
        wnic: Wnic,
        kind: str = "video",
        optimal_saved_pct: Optional[float] = None,
        missed_schedules: int = 0,
        schedules_heard: int = 0,
        early_wait_s: float = 0.0,
        miss_recovery_s: float = 0.0,
        extra: Optional[dict] = None,
    ) -> ClientReport:
        """Produce the report for one client.

        ``missed_schedules`` / ``early_wait_s`` / ``miss_recovery_s``
        come from the client daemon's own counters — the trace cannot
        distinguish *why* a client was awake, only *that* it was.
        """
        awake = wnic.awake_intervals(self.duration_s)
        rx = self.rx_intervals(ip)
        tx = self.tx_intervals(ip)
        breakdown = integrate_intervals(
            awake=awake,
            rx_frames=rx,
            tx_frames=tx,
            duration_s=self.duration_s,
            wake_count=wnic.wake_count,
            power=self.power,
        )
        naive = naive_breakdown(
            rx_frames=rx,
            tx_frames=tx,
            duration_s=self.duration_s,
            power=self.power,
        )
        data_frames = self.data_frames_to(ip)
        missed = self.missed_data_packets(ip)
        delivered_bytes = sum(f.payload_size for f in data_frames) - sum(
            row.fields["payload"] for row in missed
        )
        return ClientReport(
            name=name,
            ip=ip,
            kind=kind,
            breakdown=breakdown,
            naive=naive,
            bytes_received=max(0, delivered_bytes),
            bytes_sent=self._ensure_index().sent_payload.get(ip, 0),
            packets_expected=len(data_frames),
            packets_missed=len(missed),
            missed_schedules=missed_schedules,
            schedules_heard=schedules_heard,
            early_wait_s=early_wait_s,
            miss_recovery_s=miss_recovery_s,
            optimal_saved_pct=optimal_saved_pct,
            extra=dict(extra or {}),
        )

    def naive_report(self, name: str, ip: str, kind: str = "video") -> EnergyBreakdown:
        """Just the naive breakdown for ``ip`` (helper for tests)."""
        return naive_breakdown(
            rx_frames=self.rx_intervals(ip),
            tx_frames=self.tx_intervals(ip),
            duration_s=self.duration_s,
            power=self.power,
        )
