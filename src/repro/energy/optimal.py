"""The paper's theoretical-optimal energy savings (§4.3).

The optimal client keeps its WNIC in high-power mode *only* while its
bytes are on the air — as if the whole stream were sent in one
contiguous burst — and sleeps the rest of the time, with no schedule
reception, no early wake-up and no misses. The naive client idles
whenever it is not receiving. In the paper's notation::

                T_recv * e_r + (T_p - T_recv) * e_s
    saved = 1 - -----------------------------------
                     T_np * e_i + B * e_b

where ``T_recv`` is the time to receive the stream back-to-back,
``e_r``/``e_s``/``e_i`` are the receive/sleep/idle powers, ``T_p`` and
``T_np`` are the stream durations with and without the proxy (equal
for rate-controlled streams), ``B`` the stream bytes and ``e_b`` the
*extra* energy per byte a receiving card pays above idle.

Beyond the paper's closed form, this module also hosts the offline
**finite-horizon dynamic-programming optimum** over the discrete
(queue, channel) model of :mod:`repro.core.policy`: for a small
instance with a known channel realization, :func:`dp_optimal` computes
the cost-minimal grant sequence by backward induction — the
clairvoyant ground-truth oracle the differential test harness measures
every online policy against. :func:`brute_force_value` re-derives the
same optimum by forward enumeration as an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.policy import PolicyInstance, PolicyOutcome, execute_grants
from repro.errors import ConfigurationError
from repro.wnic.power import PowerModel


def optimal_energy_j(
    stream_bytes: int,
    duration_s: float,
    effective_rate_bps: float,
    power: PowerModel,
) -> float:
    """Energy of the optimal client for a stream of ``stream_bytes``."""
    t_recv = receive_time_s(stream_bytes, effective_rate_bps)
    if t_recv > duration_s:
        raise ConfigurationError(
            "stream cannot fit its own duration at the given rate"
        )
    return t_recv * power.receive_w + (duration_s - t_recv) * power.sleep_w


def naive_energy_j(
    stream_bytes: int,
    duration_s: float,
    effective_rate_bps: float,
    power: PowerModel,
) -> float:
    """Energy of the naive client (idle whenever not receiving)."""
    extra_per_byte = (power.receive_w - power.idle_w) * 8.0 / effective_rate_bps
    return duration_s * power.idle_w + stream_bytes * extra_per_byte


def receive_time_s(stream_bytes: int, effective_rate_bps: float) -> float:
    """Time to receive ``stream_bytes`` back-to-back at the effective rate."""
    if effective_rate_bps <= 0:
        raise ConfigurationError(
            f"effective rate must be positive: {effective_rate_bps!r}"
        )
    if stream_bytes < 0:
        raise ConfigurationError(f"negative stream size: {stream_bytes!r}")
    return stream_bytes * 8.0 / effective_rate_bps


def optimal_energy_saved_pct(
    stream_bytes: int,
    duration_s: float,
    effective_rate_bps: float,
    power: PowerModel,
) -> float:
    """Percent energy the optimal client saves over the naive client."""
    optimal = optimal_energy_j(
        stream_bytes, duration_s, effective_rate_bps, power
    )
    naive = naive_energy_j(stream_bytes, duration_s, effective_rate_bps, power)
    return 100.0 * (1.0 - optimal / naive)


# ---------------------------------------------------------------------------
# Offline DP optimum over the discrete (queue, channel) model
# ---------------------------------------------------------------------------

#: Strict-improvement margin for action comparisons: keeps tie-breaking
#: (idle first, then lowest client index) deterministic under float
#: accumulation noise.
_EPS = 1e-12


@dataclass(frozen=True)
class DpSolution:
    """The DP optimum: its value and the executed grant sequence.

    ``value`` is the backward-induction optimum; ``outcome`` re-executes
    the extracted grants through the shared
    :func:`~repro.core.policy.execute_grants` accounting. The two must
    agree to float precision — the differential suite asserts it.
    """

    value: float
    outcome: PolicyOutcome


def dp_optimal(instance: PolicyInstance) -> DpSolution:
    """Cost-minimal grant sequence for a known channel realization.

    Finite-horizon backward induction over ``(slot, queue vector)``:
    per slot the controller may idle or serve one backlogged client,
    paying the state-dependent transmission cost plus holding cost on
    everything still queued; packets left at the horizon pay the
    unserved penalty. The channel realization is part of the instance,
    so this optimum is clairvoyant — a lower bound no online policy
    can beat on the same instance (the differential harness's anchor).

    The state space is ``O(horizon * prod(max_queue_i + 1))``; intended
    for the small instances of the test harness and the Pareto model
    rows, not for full simulations.
    """
    horizon = instance.horizon
    n = instance.n_clients
    hold = instance.hold_cost
    memo: dict[tuple[int, tuple[int, ...]], tuple[float, Optional[int]]] = {}

    def best(slot: int, queues: tuple[int, ...]) -> tuple[float, Optional[int]]:
        if slot == horizon:
            return instance.unserved_penalty * sum(queues), None
        key = (slot, queues)
        cached = memo.get(key)
        if cached is not None:
            return cached
        landed = tuple(
            backlog + arriving
            for backlog, arriving in zip(queues, instance.arrivals[slot])
        )
        # Idle is the baseline action; serving must strictly beat it.
        best_cost = hold * sum(landed) + best(slot + 1, landed)[0]
        best_action: Optional[int] = None
        for client in range(n):
            if landed[client] == 0:
                continue
            after = landed[:client] + (landed[client] - 1,) + landed[client + 1:]
            cost = (
                instance.tx_cost(slot, client)
                + hold * sum(after)
                + best(slot + 1, after)[0]
            )
            if cost < best_cost - _EPS:
                best_cost, best_action = cost, client
        memo[key] = (best_cost, best_action)
        return memo[key]

    value, _ = best(0, (0,) * n)
    grants: list[Optional[int]] = []
    queues = (0,) * n
    for slot in range(horizon):
        landed = tuple(
            backlog + arriving
            for backlog, arriving in zip(queues, instance.arrivals[slot])
        )
        _, action = best(slot, queues)
        if action is None:
            queues = landed
        else:
            queues = (
                landed[:action] + (landed[action] - 1,) + landed[action + 1:]
            )
        grants.append(action)
    return DpSolution(value=value, outcome=execute_grants(instance, grants))


def brute_force_value(instance: PolicyInstance) -> float:
    """The optimum by exhaustive forward enumeration (cross-check).

    Depth-first over every feasible grant sequence with
    branch-and-bound pruning. Independent of :func:`dp_optimal`'s
    backward recursion, so the differential suite can assert both land
    on the same value. Exponential — keep instances tiny.
    """
    horizon = instance.horizon
    n = instance.n_clients
    hold = instance.hold_cost
    best_total = float("inf")

    def descend(slot: int, queues: tuple[int, ...], acc: float) -> None:
        nonlocal best_total
        if acc >= best_total:
            return
        if slot == horizon:
            total = acc + instance.unserved_penalty * sum(queues)
            if total < best_total:
                best_total = total
            return
        landed = tuple(
            backlog + arriving
            for backlog, arriving in zip(queues, instance.arrivals[slot])
        )
        descend(slot + 1, landed, acc + hold * sum(landed))
        for client in range(n):
            if landed[client] == 0:
                continue
            after = landed[:client] + (landed[client] - 1,) + landed[client + 1:]
            descend(
                slot + 1,
                after,
                acc + instance.tx_cost(slot, client) + hold * sum(after),
            )

    descend(0, (0,) * n, 0.0)
    return best_total
