"""The paper's theoretical-optimal energy savings (§4.3).

The optimal client keeps its WNIC in high-power mode *only* while its
bytes are on the air — as if the whole stream were sent in one
contiguous burst — and sleeps the rest of the time, with no schedule
reception, no early wake-up and no misses. The naive client idles
whenever it is not receiving. In the paper's notation::

                T_recv * e_r + (T_p - T_recv) * e_s
    saved = 1 - -----------------------------------
                     T_np * e_i + B * e_b

where ``T_recv`` is the time to receive the stream back-to-back,
``e_r``/``e_s``/``e_i`` are the receive/sleep/idle powers, ``T_p`` and
``T_np`` are the stream durations with and without the proxy (equal
for rate-controlled streams), ``B`` the stream bytes and ``e_b`` the
*extra* energy per byte a receiving card pays above idle.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.wnic.power import PowerModel


def optimal_energy_j(
    stream_bytes: int,
    duration_s: float,
    effective_rate_bps: float,
    power: PowerModel,
) -> float:
    """Energy of the optimal client for a stream of ``stream_bytes``."""
    t_recv = receive_time_s(stream_bytes, effective_rate_bps)
    if t_recv > duration_s:
        raise ConfigurationError(
            "stream cannot fit its own duration at the given rate"
        )
    return t_recv * power.receive_w + (duration_s - t_recv) * power.sleep_w


def naive_energy_j(
    stream_bytes: int,
    duration_s: float,
    effective_rate_bps: float,
    power: PowerModel,
) -> float:
    """Energy of the naive client (idle whenever not receiving)."""
    extra_per_byte = (power.receive_w - power.idle_w) * 8.0 / effective_rate_bps
    return duration_s * power.idle_w + stream_bytes * extra_per_byte


def receive_time_s(stream_bytes: int, effective_rate_bps: float) -> float:
    """Time to receive ``stream_bytes`` back-to-back at the effective rate."""
    if effective_rate_bps <= 0:
        raise ConfigurationError(
            f"effective rate must be positive: {effective_rate_bps!r}"
        )
    if stream_bytes < 0:
        raise ConfigurationError(f"negative stream size: {stream_bytes!r}")
    return stream_bytes * 8.0 / effective_rate_bps


def optimal_energy_saved_pct(
    stream_bytes: int,
    duration_s: float,
    effective_rate_bps: float,
    power: PowerModel,
) -> float:
    """Percent energy the optimal client saves over the naive client."""
    optimal = optimal_energy_j(
        stream_bytes, duration_s, effective_rate_bps, power
    )
    naive = naive_energy_j(stream_bytes, duration_s, effective_rate_bps, power)
    return 100.0 * (1.0 - optimal / naive)
