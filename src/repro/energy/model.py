"""Energy integration over state timelines.

The core primitive is *interval overlap*: given the card's awake
intervals and the airtime intervals of frames addressed to (or sent by)
a client, how much awake time was spent receiving/transmitting versus
idling? Overlaps are computed with a piecewise-linear cumulative-time
function evaluated by ``numpy.interp`` — O((n+m) log(n+m)) and fully
vectorized, per the HPC guide's "vectorize the hot loop" advice (traces
contain tens of thousands of frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import TraceError
from repro.wnic.power import PowerModel

Interval = tuple[float, float]


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Per-mode residency (seconds) and the resulting energy (joules)."""

    sleep_s: float
    idle_s: float
    receive_s: float
    transmit_s: float
    wake_count: int
    energy_j: float

    @property
    def high_power_s(self) -> float:
        """Total time in any high-power mode."""
        return self.idle_s + self.receive_s + self.transmit_s

    @property
    def duration_s(self) -> float:
        """Total accounted time."""
        return self.high_power_s + self.sleep_s


def _validate_intervals(intervals: Sequence[Interval], label: str) -> np.ndarray:
    array = np.asarray(intervals, dtype=float).reshape(-1, 2)
    if array.size and ((array[:, 1] < array[:, 0]).any()):
        raise TraceError(f"{label} contains an interval with end < start")
    if array.size > 1 and (array[1:, 0] < array[:-1, 1] - 1e-12).any():
        raise TraceError(f"{label} intervals must be sorted and disjoint")
    return array


def cumulative_time_fn(
    intervals: Sequence[Interval],
) -> Callable[[object], np.ndarray]:
    """Return F where F(t) = total time covered by ``intervals`` before t.

    ``intervals`` must be sorted and disjoint (awake intervals from a
    WNIC log always are).
    """
    array = _validate_intervals(intervals, "base")
    if array.size == 0:
        return lambda t: np.zeros_like(np.asarray(t, dtype=float))
    edges = array.reshape(-1)  # start0, end0, start1, end1, ...
    durations = array[:, 1] - array[:, 0]
    cumulative = np.zeros(edges.size)
    cumulative[1::2] = np.cumsum(durations)
    cumulative[2::2] = np.cumsum(durations)[:-1]

    def fn(t):
        return np.interp(np.asarray(t, dtype=float), edges, cumulative)

    return fn


def overlap_total(
    base: Sequence[Interval], queries: Sequence[Interval]
) -> float:
    """Total overlap between ``base`` (sorted, disjoint) and ``queries``.

    ``queries`` may overlap each other; overlapping query intervals are
    merged first so shared airtime is not double counted.
    """
    query_array = np.asarray(queries, dtype=float).reshape(-1, 2)
    if query_array.size == 0:
        return 0.0
    merged = merge_intervals(query_array)
    fn = cumulative_time_fn(base)
    return float(np.sum(fn(merged[:, 1]) - fn(merged[:, 0])))


def intersect_intervals(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted, disjoint interval sets."""
    # The sweep runs through thousands of per-client intervals; plain
    # Python floats make the two-pointer walk several times faster than
    # per-element numpy scalar indexing (identical IEEE arithmetic).
    a_list = np.asarray(a, dtype=float).reshape(-1, 2).tolist()
    b_list = np.asarray(b, dtype=float).reshape(-1, 2).tolist()
    out = []
    i = j = 0
    n_a = len(a_list)
    n_b = len(b_list)
    while i < n_a and j < n_b:
        a_start, a_end = a_list[i]
        b_start, b_end = b_list[j]
        start = a_start if a_start > b_start else b_start
        end = a_end if a_end < b_end else b_end
        if start < end:
            out.append((start, end))
        if a_end <= b_end:
            i += 1
        else:
            j += 1
    return np.asarray(out, dtype=float).reshape(-1, 2)


def merge_intervals(intervals: np.ndarray) -> np.ndarray:
    """Merge possibly-overlapping intervals into a sorted disjoint set."""
    array = np.asarray(intervals, dtype=float).reshape(-1, 2)
    if array.size == 0:
        return array
    order = np.argsort(array[:, 0], kind="stable")
    rows = array[order].tolist()
    merged = [rows[0]]
    last = merged[0]
    for row in rows[1:]:
        start = row[0]
        if start <= last[1]:
            end = row[1]
            if end > last[1]:
                last[1] = end
        else:
            merged.append(row)
            last = row
    return np.asarray(merged)


def integrate_intervals(
    awake: Sequence[Interval],
    rx_frames: Sequence[Interval],
    tx_frames: Sequence[Interval],
    duration_s: float,
    wake_count: int,
    power: PowerModel,
) -> EnergyBreakdown:
    """Account one client's energy from its awake/rx/tx intervals.

    Receive residency only counts where it overlaps awake time (a
    sleeping card cannot hear the medium). Transmit residency counts in
    full: the card wakes itself to send (e.g. TCP ACKs or receiver
    reports fired while the daemon sleeps), so transmit time outside
    the daemon's awake windows is charged at transmit power and
    subtracted from sleep time.
    """
    if duration_s < 0:
        raise TraceError(f"negative duration: {duration_s}")
    awake_array = _validate_intervals(awake, "awake")
    awake_total = float(np.sum(awake_array[:, 1] - awake_array[:, 0])) if awake_array.size else 0.0
    receive_s = overlap_total(awake, rx_frames)
    tx_in_awake = overlap_total(awake, tx_frames)
    tx_array = np.asarray(tx_frames, dtype=float).reshape(-1, 2)
    transmit_s = (
        float(np.sum(merge_intervals(tx_array)[:, 1] - merge_intervals(tx_array)[:, 0]))
        if tx_array.size
        else 0.0
    )
    # Half-duplex: where rx and tx airtime coincide (adversarial or
    # replayed traces), transmit wins and receive is not charged —
    # otherwise the residencies sum past the run duration.
    rx_array = np.asarray(rx_frames, dtype=float).reshape(-1, 2)
    if rx_array.size and tx_array.size and awake_array.size:
        rx_in_awake = intersect_intervals(
            awake_array, merge_intervals(rx_array)
        )
        if rx_in_awake.size:
            receive_s = max(
                0.0, receive_s - overlap_total(rx_in_awake, tx_frames)
            )
    idle_s = max(0.0, awake_total - receive_s - tx_in_awake)
    sleep_s = max(0.0, duration_s - awake_total - (transmit_s - tx_in_awake))
    energy = power.energy(sleep_s, idle_s, receive_s, transmit_s, wake_count)
    return EnergyBreakdown(
        sleep_s=sleep_s,
        idle_s=idle_s,
        receive_s=receive_s,
        transmit_s=transmit_s,
        wake_count=wake_count,
        energy_j=energy,
    )


def naive_breakdown(
    rx_frames: Sequence[Interval],
    tx_frames: Sequence[Interval],
    duration_s: float,
    power: PowerModel,
) -> EnergyBreakdown:
    """The naive client: awake for the whole trace, hears every frame."""
    whole = [(0.0, duration_s)]
    return integrate_intervals(
        awake=whole,
        rx_frames=rx_frames,
        tx_frames=tx_frames,
        duration_s=duration_s,
        wake_count=0,
        power=power,
    )
