"""Incremental analysis: lint only files changed since a merge-base.

``repro analyze --changed [BASE]`` computes ``git merge-base HEAD
BASE`` and restricts the run to python files that differ from it (plus
untracked files), which turns the full-tree gate into a sub-second
pre-commit check. The *rules* are unchanged — a changed file is always
analyzed whole, so flow-aware rules see complete functions.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigurationError

#: Default comparison ref when ``--changed`` is given without a base.
DEFAULT_BASE = "main"


def _git(args: Sequence[str], cwd: Path) -> str:
    try:
        proc = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        )
    except FileNotFoundError as exc:
        raise ConfigurationError("--changed requires git on PATH") from exc
    except subprocess.CalledProcessError as exc:
        raise ConfigurationError(
            f"git {' '.join(args)} failed: {exc.stderr.strip()}"
        ) from exc
    return proc.stdout


def changed_python_files(
    base: str = DEFAULT_BASE, cwd: Path | None = None
) -> list[Path]:
    """Python files differing from ``merge-base(HEAD, base)``, plus
    untracked ones. Paths are repo-root-relative, deduplicated, sorted,
    and limited to files that still exist (deletions are skipped)."""
    cwd = cwd or Path.cwd()
    root = Path(_git(["rev-parse", "--show-toplevel"], cwd).strip())
    merge_base = _git(["merge-base", "HEAD", base], cwd).strip()
    listed = _git(
        ["diff", "--name-only", "-z", merge_base, "--"], cwd
    ).split("\0")
    listed += _git(
        ["ls-files", "--others", "--exclude-standard", "-z"], cwd
    ).split("\0")
    files = {
        root / name
        for name in listed
        if name.endswith(".py")
    }
    return sorted(p for p in files if p.is_file())


def restrict_to(
    files: Sequence[Path], scopes: Sequence[str | Path]
) -> list[Path]:
    """The subset of ``files`` living under any of the ``scopes``."""
    resolved = [Path(s).resolve() for s in scopes]
    kept: list[Path] = []
    for file in files:
        target = file.resolve()
        for scope in resolved:
            if target == scope or scope in target.parents:
                kept.append(file)
                break
    return kept
