"""Checked-in baseline of grandfathered findings.

The baseline lets CI fail only on *new* findings: existing debt is
recorded by fingerprint (rule + module path + message, independent of
line numbers) with an occurrence count. When the debt is paid down the
baseline should be regenerated with ``--write-baseline`` so the counts
shrink monotonically.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError

BASELINE_VERSION = 1

#: Rules a baseline can never grandfather: a file that does not parse
#: and a stale waiver are hygiene failures, not debt — letting them into
#: the baseline would silently disable the gates that keep the waiver
#: inventory honest.
NEVER_BASELINED = frozenset({"E000", "SUP001"})


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    findings = [f for f in findings if f.rule not in NEVER_BASELINED]
    counts = Counter(f.fingerprint() for f in findings)
    descriptions = {}
    for finding in findings:
        descriptions.setdefault(
            finding.fingerprint(),
            {
                "rule": finding.rule,
                "path": finding.module_path or finding.path,
                "message": finding.message,
                "count": 0,
            },
        )
    for fingerprint, count in counts.items():
        descriptions[fingerprint]["count"] = count
    payload = {
        "version": BASELINE_VERSION,
        "findings": dict(sorted(descriptions.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> dict[str, int]:
    """Fingerprint -> allowed count."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read baseline {path}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported version {payload.get('version')!r}"
        )
    return {
        fingerprint: int(entry.get("count", 0))
        for fingerprint, entry in payload.get("findings", {}).items()
    }


def filter_baselined(
    findings: Sequence[Finding], allowed: dict[str, int]
) -> list[Finding]:
    """Drop up to ``allowed[fp]`` findings per fingerprint; keep the rest.

    :data:`NEVER_BASELINED` rules always pass through, even when a
    hand-edited baseline lists their fingerprints.
    """
    budget = dict(allowed)
    fresh: list[Finding] = []
    for finding in findings:
        if finding.rule in NEVER_BASELINED:
            fresh.append(finding)
            continue
        fingerprint = finding.fingerprint()
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
            continue
        fresh.append(finding)
    return fresh
