"""Rule registry and the per-module context handed to each rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.errors import ConfigurationError

#: A rule check yields ``(line, col, message)`` triples.
RawFinding = tuple[int, int, str]


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one parsed module."""

    path: str
    module_path: str
    tree: ast.Module
    source: str
    config: AnalysisConfig
    lines: list[str] = field(default_factory=list)

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        """True when this module falls under any of the path prefixes."""
        return any(self.module_path.startswith(p) for p in prefixes)


@dataclass(frozen=True)
class Rule:
    """A registered analysis rule."""

    id: str
    title: str
    rationale: str
    default_severity: Severity
    check: Callable[[ModuleContext], Iterator[RawFinding]]

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        severity = ctx.config.severities.get(self.id, self.default_severity)
        for line, col, message in self.check(ctx):
            yield Finding(
                path=ctx.path,
                line=line,
                col=col,
                rule=self.id,
                severity=severity,
                message=message,
                module_path=ctx.module_path,
            )


RULES: dict[str, Rule] = {}


def rule(
    rule_id: str,
    title: str,
    rationale: str,
    severity: Severity = Severity.ERROR,
) -> Callable[[Callable[[ModuleContext], Iterator[RawFinding]]], Rule]:
    """Class-level decorator registering a check function as a rule."""

    def wrap(check: Callable[[ModuleContext], Iterator[RawFinding]]) -> Rule:
        if rule_id in RULES:
            raise ConfigurationError(f"duplicate rule id {rule_id!r}")
        registered = Rule(
            id=rule_id,
            title=title,
            rationale=rationale,
            default_severity=severity,
            check=check,
        )
        RULES[rule_id] = registered
        return registered

    return wrap
