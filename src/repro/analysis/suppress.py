"""In-source suppression comments.

Syntax (one per line, applies to findings reported on that line)::

    some_code()  # repro: noqa[DET001] -- reason the finding is intended
    other_code() # repro: noqa[ERR001,ERR002] -- multiple rules, one reason

The engine tracks which suppressions actually matched a finding and
reports the rest as ``SUP001`` (unused suppression) so stale waivers
cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass
class Suppression:
    """One ``# repro: noqa[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str | None
    used: set[str] = field(default_factory=set)

    def covers(self, rule_id: str) -> bool:
        return rule_id in self.rules

    def unused_rules(self) -> tuple[str, ...]:
        return tuple(r for r in self.rules if r not in self.used)


def _iter_comments(source: str) -> list[tuple[int, str]]:
    """(line, text) for every real comment token (not strings/docstrings)."""
    comments: list[tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        # Unparseable files are reported by the engine as E000; any
        # suppressions in them are moot.
        pass
    return comments


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> suppression for every noqa comment in ``source``."""
    found: dict[int, Suppression] = {}
    for lineno, text in _iter_comments(source):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",")
            if part.strip()
        )
        found[lineno] = Suppression(
            line=lineno, rules=rules, reason=match.group("reason")
        )
    return found
