"""The ``ASY`` async-safety rules, built on the CFG + dataflow engine.

The live runtime (:mod:`repro.runtime`) is a long-lived concurrent
asyncio service; the bug class that bites such proxies in production is
*interleaving*: state mutated across an ``await`` point, leaked
fire-and-forget tasks, unbounded awaits on the network, and swallowed
cancellation. These rules make that class visible to CI:

- ``ASY001`` — shared state (``self.*``/``cls.*``/parameter-rooted
  attributes) written from a value that was **read before an await**
  with no re-read or re-validation after it: the atomicity-violation
  shape behind the slot-vanish crash the runtime hardening fixed.
  Flow-aware: a forward taint dataflow over the function's CFG.
- ``ASY002`` — ``asyncio.create_task``/``ensure_future`` whose task
  object is dropped; unreferenced tasks are garbage-collected mid-run
  and their exceptions vanish. Route through
  ``TaskSupervisor.spawn``/``supervise`` or retain the handle.
- ``ASY003`` — a network/socket await (``open_connection``, ``read``,
  ``drain``, ``wait_closed``, ...) with no enclosing
  ``asyncio.wait_for``/``asyncio.timeout``: one unreachable peer then
  parks the coroutine forever.
- ``ASY004`` — blocking calls (``time.sleep``, sync socket/subprocess/
  file I/O) inside ``async def``: they stall the whole event loop.
- ``ASY005`` — an ``except`` that catches ``CancelledError`` without
  re-raising: the task becomes uncancellable and teardown hangs.

Suppress intentional exceptions in place with
``# repro: noqa[ASY00x] -- reason`` (the waiver policy is documented in
DESIGN.md §13).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.cfg import (
    BasicBlock,
    CFG,
    FunctionNode,
    build_cfg,
    iter_function_defs,
)
from repro.analysis.dataflow import ForwardAnalysis, run_forward
from repro.analysis.registry import ModuleContext, RawFinding, rule
from repro.analysis.rules import _dotted

# ---------------------------------------------------------------------------
# ASY001 — shared-state read-modify-write across an await
# ---------------------------------------------------------------------------

#: (attr key, stale?) — stale means "an await happened since the read".
Taint = frozenset[tuple[str, bool]]
#: Variable name -> taints its current value was derived from.
TaintState = dict[str, Taint]

_EMPTY: Taint = frozenset()


def _stale(taints: Taint) -> Taint:
    return frozenset((key, True) for key, _stale_flag in taints)


def _shared_key(node: ast.AST, roots: frozenset[str]) -> Optional[str]:
    """The shared-state key of an attribute/subscript chain, or None.

    ``self.x.y`` -> ``"self.x.y"``; ``state.queue[k]`` ->
    ``"state.queue[]"`` (all entries of a container collapse onto one
    key). Only chains rooted at ``self``/``cls``/a parameter denote
    state that another task can observe between suspensions.
    """
    suffix = ""
    while isinstance(node, ast.Subscript):
        node = node.value
        suffix = "[]"
    name = _dotted(node)
    if not name or "." not in name:
        return None
    if name.split(".", 1)[0] not in roots:
        return None
    return name + suffix


class _TaintContext:
    """Expression evaluation for the taint analysis.

    ``eval`` returns ``(taints, suspended)`` where *suspended* records
    whether evaluating the expression crossed an await; when it did,
    every taint already held by a variable (and every taint accumulated
    earlier in the same expression) is downgraded to stale.
    """

    def __init__(self, roots: frozenset[str], state: TaintState) -> None:
        self.roots = roots
        self.state = state

    def mark_all_stale(self) -> None:
        for name, taints in list(self.state.items()):
            self.state[name] = _stale(taints)

    def eval(self, node: Optional[ast.AST]) -> tuple[Taint, bool]:
        if node is None:
            return _EMPTY, False
        if isinstance(node, ast.Name):
            return self.state.get(node.id, _EMPTY), False
        if isinstance(node, ast.Await):
            _taints, _suspended = self.eval(node.value)
            self.mark_all_stale()
            # The awaited result is a *new* value: it carries no taint
            # from the pre-suspension reads that built the awaitable.
            return _EMPTY, True
        if isinstance(node, ast.Attribute):
            taints, suspended = self.eval(node.value)
            key = _shared_key(node, self.roots)
            if key is not None:
                taints = taints | {(key, False)}
            return taints, suspended
        if isinstance(node, ast.Subscript):
            taints, suspended = self._eval_seq([node.value, node.slice])
            key = _shared_key(node, self.roots)
            if key is not None:
                taints = taints | {(key, False)}
            return taints, suspended
        if isinstance(node, ast.Call):
            # A call result is a fresh value; its arguments are still
            # evaluated (they may suspend via nested awaits).
            _taints, suspended = self._eval_seq(
                [node.func, *node.args,
                 *(kw.value for kw in node.keywords)]
            )
            return _EMPTY, suspended
        if isinstance(node, ast.NamedExpr):
            taints, suspended = self.eval(node.value)
            self.state[node.target.id] = taints
            return taints, suspended
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            return _EMPTY, False  # opaque nested scope
        if isinstance(node, ast.Constant):
            return _EMPTY, False
        # Generic combiner: evaluate children left-to-right; a suspension
        # in a later child stales everything read by earlier children.
        return self._eval_seq(list(ast.iter_child_nodes(node)))

    def _eval_seq(self, nodes: list[ast.AST]) -> tuple[Taint, bool]:
        accumulated: Taint = _EMPTY
        suspended = False
        for node in nodes:
            taints, child_suspended = self.eval(node)
            if child_suspended:
                accumulated = _stale(accumulated)
                suspended = True
            accumulated = accumulated | taints
        return accumulated, suspended

    def direct_reads(self, node: Optional[ast.AST]) -> set[str]:
        """Shared keys read *directly* (not via locals) in ``node``."""
        found: set[str] = set()
        if node is None:
            return found
        for child in ast.walk(node):
            key = _shared_key(child, self.roots)
            if key is not None:
                found.add(key)
        return found

    def revalidate(self, keys: set[str]) -> None:
        """A guard re-read ``keys`` after the await: refresh their
        staleness (the code demonstrably re-checked the shared state)."""
        if not keys:
            return
        for name, taints in list(self.state.items()):
            self.state[name] = frozenset(
                (key, False if key in keys else stale)
                for key, stale in taints
            )


class _Asy001Analysis(ForwardAnalysis[TaintState]):
    """Forward may-analysis: which locals hold stale shared reads."""

    def __init__(self, roots: frozenset[str]) -> None:
        self.roots = roots
        #: (line, col, key) of confirmed stale writes, filled on the
        #: reporting pass after the fixpoint.
        self.findings: set[tuple[int, int, str]] = set()
        self._reporting = False

    # -- lattice -----------------------------------------------------------

    def initial(self, cfg: CFG) -> TaintState:
        return {}

    def join(self, left: TaintState, right: TaintState) -> TaintState:
        merged = dict(left)
        for name, taints in right.items():
            merged[name] = merged.get(name, _EMPTY) | taints
        return merged

    # -- transfer ----------------------------------------------------------

    def transfer(self, block: BasicBlock, state: TaintState) -> TaintState:
        ctx = _TaintContext(self.roots, dict(state))
        for stmt in block.stmts:
            self._exec(stmt, ctx)
        return ctx.state

    def _exec(self, stmt: ast.stmt, ctx: _TaintContext) -> None:
        if isinstance(stmt, ast.Assign):
            taints, _suspended = ctx.eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, taints, ctx)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                taints, _suspended = ctx.eval(stmt.value)
                self._assign(stmt.target, taints, ctx)
        elif isinstance(stmt, ast.AugAssign):
            taints, _suspended = ctx.eval(stmt.value)
            # ``x.a += v`` reads the target at the write point, so only
            # the value operand can smuggle in a stale read.
            self._write(stmt.target, taints, ctx)
            if isinstance(stmt.target, ast.Name):
                merged = ctx.state.get(stmt.target.id, _EMPTY) | taints
                ctx.state[stmt.target.id] = merged
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            ctx.eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            ctx.eval(stmt.test)
            ctx.revalidate(ctx.direct_reads(stmt.test))
        elif isinstance(stmt, ast.Assert):
            ctx.eval(stmt.test)
            ctx.revalidate(ctx.direct_reads(stmt.test))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            ctx.eval(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                ctx.mark_all_stale()  # __anext__ awaits every iteration
            self._assign(stmt.target, _EMPTY, ctx)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, _EMPTY, ctx)
            if isinstance(stmt, ast.AsyncWith):
                ctx.mark_all_stale()  # __aenter__ awaits
        elif isinstance(stmt, ast.Raise):
            ctx.eval(stmt.exc)
            ctx.eval(stmt.cause)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    ctx.state.pop(target.id, None)
        elif isinstance(stmt, ast.Match):
            ctx.eval(stmt.subject)
        # Try/Pass/Break/Continue/Import/Global/Nonlocal and nested
        # definitions have no expression step of their own.

    def _assign(
        self, target: ast.AST, taints: Taint, ctx: _TaintContext
    ) -> None:
        if isinstance(target, ast.Name):
            ctx.state[target.id] = taints
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taints, ctx)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taints, ctx)
        else:
            self._write(target, taints, ctx)

    def _write(
        self, target: ast.AST, taints: Taint, ctx: _TaintContext
    ) -> None:
        """A store into shared state: flag if the value being written
        derives from a stale read of the *same* location."""
        key = _shared_key(target, self.roots)
        if key is None:
            return
        if self._reporting and (key, True) in taints:
            self.findings.add(
                (target.lineno, target.col_offset, key)
            )


def _function_params(func: FunctionNode) -> frozenset[str]:
    arguments = func.args
    names = [a.arg for a in arguments.posonlyargs + arguments.args
             + arguments.kwonlyargs]
    if arguments.vararg is not None:
        names.append(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.append(arguments.kwarg.arg)
    return frozenset(names) | {"self", "cls"}


@rule(
    "ASY001",
    "no stale read-modify-write across await",
    "Between a read of shared state and the await-separated write built "
    "from it, any other task may run and change that state; the write "
    "then resurrects the stale value (the slot-vanish bug shape). "
    "Re-read or re-validate after the await.",
)
def asy001_stale_rmw(ctx: ModuleContext) -> Iterator[RawFinding]:
    for qualname, func in iter_function_defs(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        cfg = build_cfg(func)
        analysis = _Asy001Analysis(_function_params(func))
        result = run_forward(analysis, cfg)
        # Reporting pass: re-run each block's transfer from its stable
        # input so every finding is collected exactly once.
        analysis._reporting = True
        for block in cfg.blocks:
            analysis.transfer(block, result.state_in(block.id))
        for line, col, key in sorted(analysis.findings):
            yield (
                line, col,
                f"{qualname}: {key} is written from a value read before "
                "an await; another task may have changed it — re-read or "
                "re-validate after the await",
            )


# ---------------------------------------------------------------------------
# ASY002 — fire-and-forget tasks
# ---------------------------------------------------------------------------

_TASK_SPAWNERS = {"create_task", "ensure_future"}


def _spawner_name(call: ast.Call) -> Optional[str]:
    name = _dotted(call.func)
    if name.split(".")[-1] in _TASK_SPAWNERS:
        return name
    return None


@rule(
    "ASY002",
    "no dropped task handles",
    "A task whose handle is dropped can be garbage-collected mid-flight "
    "and its exception is never retrieved; retain the handle (and await "
    "or cancel it on teardown) or spawn through TaskSupervisor so "
    "shutdown can account for it.",
)
def asy002_dropped_task(ctx: ModuleContext) -> Iterator[RawFinding]:
    for node in ast.walk(ctx.tree):
        call: Optional[ast.Call] = None
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
        elif (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and all(
                isinstance(t, ast.Name) and t.id == "_"
                for t in node.targets
            )
        ):
            call = node.value
        if call is None:
            continue
        name = _spawner_name(call)
        if name is not None:
            yield (
                node.lineno, node.col_offset,
                f"result of {name}() is dropped; keep the task handle "
                "(await/cancel it on teardown) or route it through "
                "TaskSupervisor.spawn so it cannot leak",
            )


# ---------------------------------------------------------------------------
# ASY003 — network awaits without a timeout
# ---------------------------------------------------------------------------

#: Awaitable call tails that block on a remote peer.
_NETWORK_AWAIT_TAILS = {
    "open_connection", "open_unix_connection", "connect", "accept",
    "read", "readline", "readexactly", "readuntil", "drain",
    "wait_closed", "recv", "recvfrom", "recvmsg", "sendall",
    "sock_recv", "sock_recv_into", "sock_sendall", "sock_connect",
    "sock_accept", "getaddrinfo", "getnameinfo",
}

#: Context managers that bound everything awaited inside them.
_TIMEOUT_CONTEXTS = {"timeout", "timeout_at", "move_on_after", "fail_after"}

#: Call wrappers that bound the awaitable passed to them.
_TIMEOUT_WRAPPERS = {"wait_for"}


@rule(
    "ASY003",
    "network awaits need a timeout",
    "An await on a peer (dial, read, drain, close) with no enclosing "
    "wait_for/timeout parks the coroutine forever when the peer wedges; "
    "on the proxy's burst path one stuck client then stalls scheduling "
    "for every other client.",
)
def asy003_unbounded_network_await(
    ctx: ModuleContext,
) -> Iterator[RawFinding]:
    for _qualname, func in iter_function_defs(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        yield from _scan_unbounded_awaits(func)


def _scan_unbounded_awaits(func: FunctionNode) -> Iterator[RawFinding]:
    def walk(node: ast.AST, bounded: bool) -> Iterator[RawFinding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)) and node is not func:
            return  # nested scopes are scanned as their own functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(
                isinstance(item.context_expr, ast.Call)
                and _dotted(item.context_expr.func).split(".")[-1]
                in _TIMEOUT_CONTEXTS
                for item in node.items
            ):
                bounded = True
        if isinstance(node, ast.Await):
            value = node.value
            if isinstance(value, ast.Call):
                name = _dotted(value.func)
                tail = name.split(".")[-1]
                if tail in _TIMEOUT_WRAPPERS:
                    return  # the wrapped awaitable is bounded
                if tail in _NETWORK_AWAIT_TAILS and not bounded:
                    yield (
                        node.lineno, node.col_offset,
                        f"await {name or tail}() has no enclosing "
                        "asyncio.wait_for/timeout; a wedged peer parks "
                        "this coroutine forever",
                    )
        for child in ast.iter_child_nodes(node):
            yield from walk(child, bounded)

    yield from walk(func, False)


# ---------------------------------------------------------------------------
# ASY004 — blocking calls inside async def
# ---------------------------------------------------------------------------

_BLOCKING_DOTTED = {
    "time.sleep",
    "socket.socket", "socket.create_connection", "socket.getaddrinfo",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.waitpid",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.request", "urllib.request.urlopen",
}
_BLOCKING_BARE = {"open", "input"}


@rule(
    "ASY004",
    "no blocking calls in async code",
    "A synchronous sleep/socket/subprocess/file call inside async def "
    "blocks the entire event loop: every client served by the loop "
    "stalls, not just the offender. Use the asyncio equivalent or "
    "run_in_executor.",
)
def asy004_blocking_in_async(ctx: ModuleContext) -> Iterator[RawFinding]:
    for _qualname, func in iter_function_defs(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        yield from _scan_blocking_calls(func)


def _scan_blocking_calls(func: FunctionNode) -> Iterator[RawFinding]:
    def walk(node: ast.AST) -> Iterator[RawFinding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)) and node is not func:
            return
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in _BLOCKING_DOTTED:
                yield (
                    node.lineno, node.col_offset,
                    f"blocking call {name}() inside async def "
                    f"{func.name!r} stalls the whole event loop; use the "
                    "asyncio equivalent (e.g. asyncio.sleep, "
                    "open_connection) or run_in_executor",
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _BLOCKING_BARE
            ):
                yield (
                    node.lineno, node.col_offset,
                    f"blocking builtin {node.func.id}() inside async def "
                    f"{func.name!r}; do file/console I/O off the event "
                    "loop (run_in_executor) or before entering it",
                )
        for child in ast.iter_child_nodes(node):
            yield from walk(child)

    yield from walk(func)


# ---------------------------------------------------------------------------
# ASY005 — swallowed cancellation
# ---------------------------------------------------------------------------


def _catches_cancelled(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return False  # bare except is ERR002's beat
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        _dotted(t).split(".")[-1] == "CancelledError" for t in types
    )


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@rule(
    "ASY005",
    "never swallow CancelledError",
    "Catching CancelledError without re-raising makes the task "
    "uncancellable: supervisor stop() then hangs awaiting it, and "
    "teardown leaks the task. Clean up and re-raise; only a reaper "
    "that just cancelled the task itself may absorb it (waiver).",
)
def asy005_swallowed_cancellation(
    ctx: ModuleContext,
) -> Iterator[RawFinding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if _catches_cancelled(handler) and not _reraises(handler):
                yield (
                    handler.lineno, handler.col_offset,
                    "except catches CancelledError without re-raising; "
                    "the task becomes uncancellable — clean up and "
                    "re-raise (waive only at await-after-cancel "
                    "teardown sites)",
                )
