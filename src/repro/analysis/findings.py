"""Finding and severity types for the static-analysis engine."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum


class Severity(str, Enum):
    """How serious a finding is; both levels fail the gate by default."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str
    module_path: str = ""

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file.

        Line numbers churn on unrelated edits, so the fingerprint hashes
        only the rule, the package-relative path, and the message.
        """
        key = f"{self.rule}:{self.module_path or self.path}:{self.message}"
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"
