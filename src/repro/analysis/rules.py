"""The domain rules enforcing the repo's simulation invariants.

Each rule is an AST check registered under a stable ID. Rule IDs are
grouped by invariant family:

- ``DET``: determinism (entropy, wall clock, iteration order)
- ``UNI``: unit hygiene (time/size literals through ``repro.units``)
- ``ERR``: error taxonomy (``repro.errors`` classes, narrow excepts)
- ``SIM``: simulated-time purity (no blocking I/O in sim processes)
- ``API``: typed public surface (annotations on public functions)
- ``OBS``: observability (telemetry flows through the Recorder facade)
- ``SWP``: sweep orchestration (artifact drivers fan out through the
  sweep engine, never the raw simulation runner)
- ``CAM``: campus sharding (cross-shard client state moves only
  through the HandoffCoordinator)

Suppress a finding in place with ``# repro: noqa[RULE] -- reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.registry import ModuleContext, RawFinding, rule
from repro.analysis.findings import Severity

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``a.b.c`` or ``''``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_annotation(annotation: ast.AST | None) -> bool:
    """True if an annotation expression denotes a set-like type."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = _dotted(target)
    return name.split(".")[-1] in {
        "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
    }


def _is_set_expr(value: ast.AST | None) -> bool:
    """True if an expression syntactically constructs a set."""
    if isinstance(value, ast.Set):
        return True
    if isinstance(value, ast.SetComp):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in {"set", "frozenset"}
    return False


# ---------------------------------------------------------------------------
# DET001 — ambient entropy
# ---------------------------------------------------------------------------

_ENTROPY_MODULES = {"random", "secrets"}
_ENTROPY_UUID = {"uuid1", "uuid4"}
_ENTROPY_NUMPY_CALLS = {
    "default_rng", "seed", "random", "randint", "choice", "shuffle",
    "permutation", "normal", "uniform",
}


@rule(
    "DET001",
    "no ambient entropy",
    "All randomness must flow through named RngStreams seeded from the "
    "experiment seed; module-level entropy breaks (plan, seed) replay.",
)
def det001_no_ambient_entropy(ctx: ModuleContext) -> Iterator[RawFinding]:
    if ctx.module_path in ctx.config.entropy_allowed:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _ENTROPY_MODULES:
                    yield (
                        node.lineno, node.col_offset,
                        f"import of entropy module {alias.name!r}; draw from "
                        "a named RngStreams stream (repro.sim.random) instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = (node.module or "").split(".")[0]
            if module in _ENTROPY_MODULES:
                yield (
                    node.lineno, node.col_offset,
                    f"import from entropy module {node.module!r}; use "
                    "RngStreams (repro.sim.random) instead",
                )
            elif module == "uuid":
                for alias in node.names:
                    if alias.name in _ENTROPY_UUID:
                        yield (
                            node.lineno, node.col_offset,
                            f"import of non-deterministic uuid.{alias.name}; "
                            "derive ids from the experiment seed instead",
                        )
        elif isinstance(node, ast.Call):
            name = _dotted(node.func)
            tail = name.split(".")[-1]
            if name.startswith("uuid.") and tail in _ENTROPY_UUID:
                yield (
                    node.lineno, node.col_offset,
                    f"call to non-deterministic {name}(); derive ids from "
                    "the experiment seed instead",
                )
            elif ".random." in f".{name}" and tail in _ENTROPY_NUMPY_CALLS:
                yield (
                    node.lineno, node.col_offset,
                    f"direct numpy entropy call {name}(); request a stream "
                    "from RngStreams so draws replay from the seed",
                )


# ---------------------------------------------------------------------------
# DET002 — wall-clock reads in simulated-time code
# ---------------------------------------------------------------------------

_WALLCLOCK_ATTRS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.date.today",
}
_WALLCLOCK_FROM_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time",
}


@rule(
    "DET002",
    "no wall clock in sim code",
    "Simulation components must read time from the simulator clock; "
    "wall-clock reads make traces depend on host speed.",
)
def det002_no_wall_clock(ctx: ModuleContext) -> Iterator[RawFinding]:
    if not ctx.in_scope(ctx.config.sim_scope):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and (node.module or "") == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_FROM_TIME:
                    yield (
                        node.lineno, node.col_offset,
                        f"import of wall-clock time.{alias.name} in sim "
                        "code; use the simulator clock (env.now) instead",
                    )
        elif isinstance(node, ast.Attribute):
            name = _dotted(node)
            if name in _WALLCLOCK_ATTRS:
                yield (
                    node.lineno, node.col_offset,
                    f"wall-clock read {name} in sim code; use the "
                    "simulator clock (env.now) instead",
                )


# ---------------------------------------------------------------------------
# DET003 — iteration over unordered sets
# ---------------------------------------------------------------------------


class _SetNames(ast.NodeVisitor):
    """Collects names/attributes that syntactically hold set objects."""

    def __init__(self) -> None:
        self.names: set[str] = set()
        self.attrs: set[str] = set()

    def _record_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                self._record_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _is_set_annotation(node.annotation):
            self._record_target(node.target)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if _is_set_annotation(node.annotation):
            self.names.add(node.arg)
        self.generic_visit(node)


@rule(
    "DET003",
    "no ordered iteration over sets",
    "Set iteration order depends on insertion history and hash seeds; "
    "when it reaches scheduling decisions the schedule stops replaying.",
)
def det003_set_iteration(ctx: ModuleContext) -> Iterator[RawFinding]:
    if not ctx.in_scope(ctx.config.order_scope):
        return
    declared = _SetNames()
    declared.visit(ctx.tree)

    def is_set_like(expr: ast.AST) -> bool:
        if _is_set_expr(expr):
            return True
        if isinstance(expr, ast.Name) and expr.id in declared.names:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in declared.attrs:
            return True
        return False

    def flag(expr: ast.AST) -> Iterator[RawFinding]:
        if is_set_like(expr):
            yield (
                expr.lineno, expr.col_offset,
                f"iteration over set {_dotted(expr) or 'literal'!s}; wrap "
                "in sorted(...) so order is deterministic",
            )

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield from flag(gen.iter)


# ---------------------------------------------------------------------------
# UNI001 — magic time/size literals
# ---------------------------------------------------------------------------

_TIME_SUFFIXES = ("_s",)
_SIZE_SUFFIXES = ("_bytes",)


def _suggest_time(value: float) -> str:
    # Prefer us() below one millisecond, but only when the round trip
    # is bit-exact so adopting the suggestion cannot perturb traces.
    if value < 1e-3 and (value * 1e6) * 1e-6 == value:
        return f"us({value * 1e6:g})"
    return f"ms({value * 1e3:g})"


def _suggest_size(value: int) -> str:
    if value % (1024 * 1024) == 0:
        return f"mib({value // (1024 * 1024)})"
    return f"kib({value / 1024:g})"


def _literal_issue(name: str, value: ast.AST) -> str | None:
    lowered = name.lower()
    if not isinstance(value, ast.Constant):
        return None
    const = value.value
    if lowered.endswith(_TIME_SUFFIXES):
        if isinstance(const, float) and 0.0 < const < 1.0:
            return (
                f"magic sub-second literal {const!r} for {name!r}; write "
                f"units.{_suggest_time(const)} so the unit is explicit"
            )
    if lowered.endswith(_SIZE_SUFFIXES):
        if (
            isinstance(const, int)
            and not isinstance(const, bool)
            and const >= 1024
            and const % 1024 == 0
        ):
            return (
                f"magic size literal {const!r} for {name!r}; write "
                f"units.{_suggest_size(const)} so the unit is explicit"
            )
    return None


@rule(
    "UNI001",
    "time/size literals through repro.units",
    "Bare sub-second floats and byte counts hide their unit; ms()/us()/"
    "kib() make unit mistakes grep-able and reviewable.",
    severity=Severity.WARNING,
)
def uni001_magic_literals(ctx: ModuleContext) -> Iterator[RawFinding]:
    if not ctx.in_scope(ctx.config.units_scope):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = _dotted(target)
                if not name:
                    continue
                message = _literal_issue(name.split(".")[-1], node.value)
                if message:
                    yield (node.value.lineno, node.value.col_offset, message)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            name = _dotted(node.target)
            message = _literal_issue(name.split(".")[-1], node.value)
            if message:
                yield (node.value.lineno, node.value.col_offset, message)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = node.args
            positional = arguments.posonlyargs + arguments.args
            for arg, default in zip(
                reversed(positional), reversed(arguments.defaults)
            ):
                message = _literal_issue(arg.arg, default)
                if message:
                    yield (default.lineno, default.col_offset, message)
            for arg, kw_default in zip(arguments.kwonlyargs, arguments.kw_defaults):
                if kw_default is None:
                    continue
                message = _literal_issue(arg.arg, kw_default)
                if message:
                    yield (kw_default.lineno, kw_default.col_offset, message)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                message = _literal_issue(keyword.arg, keyword.value)
                if message:
                    yield (
                        keyword.value.lineno, keyword.value.col_offset, message
                    )


# ---------------------------------------------------------------------------
# ERR001 — raises outside the taxonomy
# ---------------------------------------------------------------------------

_GENERIC_RAISES = {"Exception", "ValueError", "RuntimeError"}


@rule(
    "ERR001",
    "raise taxonomy errors",
    "Library failures must derive from ReproError so callers can catch "
    "them without masking programming errors.",
)
def err001_taxonomy_raises(ctx: ModuleContext) -> Iterator[RawFinding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = _dotted(exc)
        if name in _GENERIC_RAISES:
            yield (
                node.lineno, node.col_offset,
                f"raise of generic {name}; raise a repro.errors class "
                "(e.g. ConfigurationError) so callers can catch precisely",
            )


# ---------------------------------------------------------------------------
# ERR002 — over-broad or mistargeted excepts
# ---------------------------------------------------------------------------

_BROAD_EXCEPTS = {"Exception", "BaseException"}
_VISIBLE_HANDLER_CALLS = (
    "log", "warn", "error", "debug", "info", "exception", "print", "fail",
)


def _handler_is_visible(handler: ast.ExceptHandler) -> bool:
    """True if the handler re-raises or visibly records the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            tail = _dotted(node.func).split(".")[-1].lower()
            if tail.startswith(_VISIBLE_HANDLER_CALLS):
                return True
    return False


def _exception_names(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return [""]
    if isinstance(handler.type, ast.Tuple):
        return [_dotted(elt) for elt in handler.type.elts]
    return [_dotted(handler.type)]


@rule(
    "ERR002",
    "no silent broad excepts",
    "except Exception (or broader) that neither re-raises nor logs "
    "swallows taxonomy errors and hides broken invariants.",
)
def err002_broad_excepts(ctx: ModuleContext) -> Iterator[RawFinding]:
    sim_scoped = ctx.in_scope(ctx.config.sim_scope)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            names = _exception_names(handler)
            for name in names:
                if name == "" or name.split(".")[-1] in _BROAD_EXCEPTS:
                    if not _handler_is_visible(handler):
                        shown = name or "bare except"
                        yield (
                            handler.lineno, handler.col_offset,
                            f"broad {shown!s} swallows errors silently; "
                            "catch ReproError (or narrower) or re-raise/log",
                        )
                    break
                if name == "ConnectionError" and sim_scoped:
                    yield (
                        handler.lineno, handler.col_offset,
                        "catch of builtin ConnectionError in sim code; the "
                        "simulated stack raises repro.errors.ConnectionError_",
                    )


# ---------------------------------------------------------------------------
# SIM001 — blocking I/O inside simulated time
# ---------------------------------------------------------------------------

_BLOCKING_MODULES = {"socket", "subprocess", "requests", "urllib"}
_BLOCKING_BARE_CALLS = {"open", "input"}
_BLOCKING_ATTRS = {"time.sleep", "socket.socket", "subprocess.run"}


@rule(
    "SIM001",
    "no blocking I/O in sim processes",
    "Sim processes advance virtual time by yielding events; real "
    "sockets, files, and sleeps stall the event loop and leak host state.",
)
def sim001_blocking_io(ctx: ModuleContext) -> Iterator[RawFinding]:
    if not ctx.in_scope(ctx.config.sim_scope):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BLOCKING_MODULES:
                    yield (
                        node.lineno, node.col_offset,
                        f"import of blocking module {alias.name!r} in sim "
                        "code; use sim primitives (net sockets, timeouts)",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _BLOCKING_MODULES:
                yield (
                    node.lineno, node.col_offset,
                    f"import from blocking module {node.module!r} in sim "
                    "code; use sim primitives (net sockets, timeouts)",
                )
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _BLOCKING_BARE_CALLS
            ):
                yield (
                    node.lineno, node.col_offset,
                    f"blocking builtin {node.func.id}() in sim code; do "
                    "file/console I/O outside the simulation loop",
                )
            else:
                name = _dotted(node.func)
                if name in _BLOCKING_ATTRS:
                    yield (
                        node.lineno, node.col_offset,
                        f"blocking call {name}() in sim code; yield a sim "
                        "timeout/event instead",
                    )


# ---------------------------------------------------------------------------
# API001 — typed public surface
# ---------------------------------------------------------------------------


def _missing_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[str]:
    missing: list[str] = []
    arguments = node.args
    positional = arguments.posonlyargs + arguments.args
    for index, arg in enumerate(positional):
        if is_method and index == 0 and arg.arg in {"self", "cls"}:
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in arguments.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if arguments.vararg is not None and arguments.vararg.annotation is None:
        missing.append("*" + arguments.vararg.arg)
    if arguments.kwarg is not None and arguments.kwarg.annotation is None:
        missing.append("**" + arguments.kwarg.arg)
    if node.returns is None and node.name != "__init__":
        missing.append("return")
    return missing


@rule(
    "API001",
    "annotate public API",
    "The mypy --strict gate on core/energy only holds if public "
    "functions declare parameter and return types.",
)
def api001_public_annotations(ctx: ModuleContext) -> Iterator[RawFinding]:
    if not ctx.in_scope(ctx.config.api_scope):
        return

    def walk_body(
        body: list[ast.stmt], inside_class: bool
    ) -> Iterator[RawFinding]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = statement.name
                public = not name.startswith("_") or name == "__init__"
                if public:
                    missing = _missing_annotations(statement, inside_class)
                    if missing:
                        yield (
                            statement.lineno, statement.col_offset,
                            f"public function {name!r} missing type "
                            f"annotations: {', '.join(missing)}",
                        )
            elif isinstance(statement, ast.ClassDef):
                if not statement.name.startswith("_"):
                    yield from walk_body(statement.body, inside_class=True)

    yield from walk_body(ctx.tree.body, inside_class=False)


# ---------------------------------------------------------------------------
# OBS001 — one instrumentation path
# ---------------------------------------------------------------------------


@rule(
    "OBS001",
    "telemetry through the Recorder facade",
    "Components must emit telemetry via repro.obs.Recorder "
    "(event/span/inc/observe); direct TraceRecorder.record calls "
    "bypass metrics and spans and fork the observability stream.",
)
def obs001_recorder_facade(ctx: ModuleContext) -> Iterator[RawFinding]:
    for prefix in ctx.config.obs_allowed:
        if ctx.module_path.startswith(prefix):
            return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "record"):
            continue
        base = _dotted(func.value)
        last = base.split(".")[-1] if base else ""
        if last in {"trace", "_trace"}:
            yield (
                node.lineno, node.col_offset,
                f"direct {base}.record(...) bypasses the obs facade; use "
                "Recorder.event() (repro.obs) so metrics and spans stay "
                "in one stream",
            )


# ---------------------------------------------------------------------------
# SWP001 — artifact drivers go through the sweep engine
# ---------------------------------------------------------------------------


@rule(
    "SWP001",
    "artifact drivers use the sweep engine",
    "Figure/table/baseline/report drivers must expand their runs into a "
    "SweepSpec and execute it via SweepEngine.run; a direct "
    "run_experiment call forfeits result caching, parallel fan-out, and "
    "per-run failure isolation for that artifact.",
)
def swp001_sweep_engine_only(ctx: ModuleContext) -> Iterator[RawFinding]:
    if not ctx.in_scope(ctx.config.sweep_scope):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "run_experiment":
                    yield (
                        node.lineno, node.col_offset,
                        "driver module imports run_experiment; build a "
                        "SweepSpec and execute it through SweepEngine.run "
                        "(repro.sweep) instead",
                    )
        elif isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name.split(".")[-1] == "run_experiment":
                yield (
                    node.lineno, node.col_offset,
                    f"direct {name or 'run_experiment'}() call bypasses the "
                    "sweep engine; drivers must go through "
                    "SweepEngine.run(SweepSpec...) so caching and fan-out "
                    "apply uniformly",
                )


# ---------------------------------------------------------------------------
# CAM: campus sharding
# ---------------------------------------------------------------------------

#: The shard-migration primitives; calling any of them outside the
#: coordinator can split a client across two shards (double slots) or
#: strand it in none.
_HANDOFF_PRIMITIVES = frozenset(
    {"release_client", "adopt_client", "forget_client"}
)


@rule(
    "CAM001",
    "cross-shard state moves only through HandoffCoordinator",
    "release_client/adopt_client/forget_client re-partition a client "
    "between proxy shards; invoked anywhere but the HandoffCoordinator "
    "they can leave a client in two shards at once (double-granted "
    "slots) or in none (stranded backlog). Route the migration through "
    "HandoffCoordinator.handoff instead.",
)
def cam001_handoff_coordinator_only(ctx: ModuleContext) -> Iterator[RawFinding]:
    if ctx.in_scope(ctx.config.campus_handoff_allowed):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        tail = name.split(".")[-1]
        if tail in _HANDOFF_PRIMITIVES:
            yield (
                node.lineno, node.col_offset,
                f"{name or tail}() migrates shard state outside the "
                "HandoffCoordinator; cross-shard moves must go through "
                "HandoffCoordinator.handoff so the one-shard-per-client "
                "invariant holds",
            )
