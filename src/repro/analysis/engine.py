"""File walking, rule dispatch, and suppression accounting."""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import async_rules as _async_rules  # noqa: F401
from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RULES, ModuleContext
from repro.analysis.suppress import parse_suppressions

#: Engine-level pseudo-rules (not in the registry; never scope-limited).
PARSE_RULE = "E000"
UNUSED_SUPPRESSION_RULE = "SUP001"

#: Pragma letting a file declare the package location it should be
#: analyzed as (used by the self-test corpus to exercise scoped rules):
#: ``# repro: module-path=core/fake.py`` within the first lines.
_MODULE_PATH_PRAGMA = re.compile(r"#\s*repro:\s*module-path=(\S+)")
_PRAGMA_SCAN_LINES = 5


def module_path_for(path: Path) -> str:
    """Package-relative path used for rule scoping.

    ``src/repro/core/scheduler.py`` -> ``core/scheduler.py``. Files that
    do not live under a ``repro`` package keep their name, which leaves
    them out of every directory-scoped rule.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return path.name


def analyze_source(
    source: str,
    path: str,
    module_path: str,
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Run every enabled rule over one module's source text."""
    config = config or AnalysisConfig()
    for text in source.splitlines()[:_PRAGMA_SCAN_LINES]:
        pragma = _MODULE_PATH_PRAGMA.search(text)
        if pragma is not None:
            module_path = pragma.group(1)
            break
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_RULE,
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
                module_path=module_path,
            )
        ]

    ctx = ModuleContext(
        path=path,
        module_path=module_path,
        tree=tree,
        source=source,
        config=config,
        lines=source.splitlines(),
    )
    suppressions = parse_suppressions(source)

    active: list[Finding] = []
    for rule_id in sorted(RULES):
        if not config.rule_enabled(rule_id):
            continue
        for finding in RULES[rule_id].run(ctx):
            suppression = suppressions.get(finding.line)
            if suppression is not None and suppression.covers(finding.rule):
                suppression.used.add(finding.rule)
                continue
            active.append(finding)

    if config.rule_enabled(UNUSED_SUPPRESSION_RULE):
        for suppression in suppressions.values():
            for rule_id in suppression.unused_rules():
                if not config.rule_enabled(rule_id):
                    continue  # a disabled rule cannot mark its waiver used
                active.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=0,
                        rule=UNUSED_SUPPRESSION_RULE,
                        severity=Severity.WARNING,
                        message=(
                            f"unused suppression for {rule_id}; remove the "
                            "noqa or re-trigger the rule"
                        ),
                        module_path=module_path,
                    )
                )

    active.sort()
    return active


def analyze_file(
    path: Path, config: AnalysisConfig | None = None
) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    return analyze_source(
        source, str(path), module_path_for(path), config
    )


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Yield .py files under ``paths`` in a deterministic order."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def analyze_paths(
    paths: Sequence[str | Path], config: AnalysisConfig | None = None
) -> list[Finding]:
    """Analyze every python file under ``paths``; findings are sorted."""
    findings: list[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        findings.extend(analyze_file(path, config))
    findings.sort()
    return findings
