"""A small forward-dataflow framework over :mod:`repro.analysis.cfg`.

Clients subclass :class:`ForwardAnalysis`, provide the lattice
operations (:meth:`~ForwardAnalysis.initial` entry state,
:meth:`~ForwardAnalysis.join`, and a per-block
:meth:`~ForwardAnalysis.transfer` function), and :func:`run_forward`
iterates a worklist to the fixpoint. States are compared with ``==``
and must never be mutated in place by ``transfer`` — return a new
state instead, or the convergence check breaks silently.

The framework is deliberately tiny: it exists so flow-aware rules
(the ``ASY`` family) can phrase "what may have happened before this
statement" questions without each rule reinventing a traversal. The
iteration count is bounded; a non-converging (non-monotone) client is
a bug in the client, reported as :class:`~repro.errors.AnalysisError`
rather than a hang.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.analysis.cfg import CFG, BasicBlock
from repro.errors import AnalysisError

S = TypeVar("S")

#: Worklist re-visits per block before the framework declares the
#: client non-monotone. Real lattices here are tiny maps; honest
#: clients converge in a handful of passes.
MAX_VISITS_PER_BLOCK = 64


class ForwardAnalysis(Generic[S]):
    """The operations a forward dataflow client must provide."""

    def initial(self, cfg: CFG) -> S:
        """The state on entry to the function."""
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        """Merge states where control-flow paths meet."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, state: S) -> S:
        """The state after executing ``block`` from ``state``."""
        raise NotImplementedError


class DataflowResult(Generic[S]):
    """Per-block input/output states at the fixpoint."""

    def __init__(
        self, cfg: CFG, in_states: dict[int, S], out_states: dict[int, S]
    ) -> None:
        self.cfg = cfg
        self._in = in_states
        self._out = out_states

    def state_in(self, block_id: int) -> S:
        return self._in[block_id]

    def state_out(self, block_id: int) -> S:
        return self._out[block_id]


def run_forward(analysis: ForwardAnalysis[S], cfg: CFG) -> DataflowResult[S]:
    """Iterate ``analysis`` over ``cfg`` to a fixpoint.

    Blocks unreachable from the entry still get states (seeded from the
    entry state), so rules report on dead code the same way they report
    on live code — dead code gets deleted, not special-cased.
    """
    order = cfg.reverse_postorder()
    in_states: dict[int, S] = {}
    out_states: dict[int, S] = {}
    visits: dict[int, int] = {}

    worklist: deque[int] = deque(order)
    queued = set(order)

    while worklist:
        block_id = worklist.popleft()
        queued.discard(block_id)
        block = cfg.block(block_id)

        visits[block_id] = visits.get(block_id, 0) + 1
        if visits[block_id] > MAX_VISITS_PER_BLOCK:
            raise AnalysisError(
                f"dataflow did not converge at block {block_id} of "
                f"{cfg.func.name!r}; non-monotone transfer/join?"
            )

        state: S | None = None
        for pred in block.preds:
            pred_out = out_states.get(pred)
            if pred_out is None:
                continue
            state = (
                pred_out if state is None else analysis.join(state, pred_out)
            )
        if block_id == cfg.entry or state is None:
            entry_state = analysis.initial(cfg)
            state = (
                entry_state if state is None
                else analysis.join(state, entry_state)
            )

        new_out = analysis.transfer(block, state)
        in_states[block_id] = state
        if out_states.get(block_id) == new_out and block_id in out_states:
            continue
        out_states[block_id] = new_out
        for succ in block.succs:
            if succ not in queued:
                queued.add(succ)
                worklist.append(succ)

    # Deterministic ordering of any remaining gaps (empty CFGs).
    for block_id in order:
        if block_id not in in_states:
            in_states[block_id] = analysis.initial(cfg)
            out_states[block_id] = analysis.transfer(
                cfg.block(block_id), in_states[block_id]
            )
    return DataflowResult(cfg, in_states, out_states)
