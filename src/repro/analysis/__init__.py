"""Simulation-invariant static analysis (``python -m repro analyze``).

An AST-based lint engine enforcing the conventions that make the
reproduction replay byte-identically from ``(plan, seed)``: all
randomness through named :class:`~repro.sim.random.RngStreams`, no
wall-clock or ambient entropy in sim code, time/size literals through
:mod:`repro.units`, and failures through the :mod:`repro.errors`
taxonomy. See DESIGN.md "Determinism invariants" for the rule list.
"""

from repro.analysis.baseline import (
    NEVER_BASELINED,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from repro.analysis.cfg import (
    CFG,
    BasicBlock,
    build_cfg,
    iter_function_defs,
)
from repro.analysis.config import EVERYWHERE, AnalysisConfig
from repro.analysis.dataflow import (
    DataflowResult,
    ForwardAnalysis,
    run_forward,
)
from repro.analysis.engine import (
    PARSE_RULE,
    UNUSED_SUPPRESSION_RULE,
    analyze_file,
    analyze_paths,
    analyze_source,
    module_path_for,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.incremental import changed_python_files, restrict_to
from repro.analysis.output import (
    RENDERERS,
    render_sarif,
    render_statistics,
)
from repro.analysis.registry import RULES, ModuleContext, Rule

__all__ = [
    "AnalysisConfig",
    "BasicBlock",
    "CFG",
    "DataflowResult",
    "EVERYWHERE",
    "Finding",
    "ForwardAnalysis",
    "ModuleContext",
    "NEVER_BASELINED",
    "PARSE_RULE",
    "RENDERERS",
    "RULES",
    "Rule",
    "Severity",
    "UNUSED_SUPPRESSION_RULE",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "build_cfg",
    "changed_python_files",
    "filter_baselined",
    "iter_function_defs",
    "load_baseline",
    "module_path_for",
    "render_sarif",
    "render_statistics",
    "restrict_to",
    "run_forward",
    "write_baseline",
]
