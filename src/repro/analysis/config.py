"""Per-rule configuration for the analysis engine.

Scopes are prefixes of the *package-relative* path of a module (e.g.
``core/scheduler.py`` has module path ``core/scheduler.py``); an empty
prefix matches everything. Rules consult the config so tests can widen
or narrow scopes without monkey-patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.findings import Severity

#: Directories whose code runs under simulated time. Wall-clock reads,
#: blocking I/O, and ambient entropy are forbidden here.
SIM_SCOPE: tuple[str, ...] = (
    "sim/", "core/", "net/", "faults/", "obs/", "campus/",
)

#: Directories whose iteration order can reach scheduling decisions.
ORDER_SCOPE: tuple[str, ...] = ("core/", "net/", "faults/", "campus/")

#: Directories where bare time/size literals must use ``repro.units``.
UNITS_SCOPE: tuple[str, ...] = ("core/", "net/", "campus/")

#: Directories whose public API must be fully type-annotated.
API_SCOPE: tuple[str, ...] = ("core/", "energy/")

#: Modules allowed to touch entropy sources (the blessed RNG factory).
ENTROPY_ALLOWED: tuple[str, ...] = ("sim/random.py",)

#: Modules allowed to call ``TraceRecorder.record`` directly — the
#: Recorder facade itself and the trace module it wraps.
OBS_ALLOWED: tuple[str, ...] = ("obs/", "sim/trace.py")

#: Artifact driver modules that must execute runs through the sweep
#: engine (SweepSpec + SweepEngine) rather than calling the simulation
#: runner directly — that is what makes caching and parallel fan-out
#: apply to every figure/table/baseline/report uniformly.
SWEEP_SCOPE: tuple[str, ...] = (
    "experiments/figures.py",
    "experiments/tables.py",
    "experiments/baselines.py",
    "experiments/report_gen.py",
)

#: Modules allowed to call the shard-migration primitives
#: (``release_client`` / ``adopt_client`` / ``forget_client``) — the
#: HandoffCoordinator is the single place cross-shard state may move.
CAMPUS_HANDOFF_ALLOWED: tuple[str, ...] = ("campus/handoff.py",)


@dataclass(frozen=True)
class AnalysisConfig:
    """Engine-wide settings; the defaults encode the repo's invariants."""

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    severities: Mapping[str, Severity] = field(default_factory=dict)

    entropy_allowed: tuple[str, ...] = ENTROPY_ALLOWED
    obs_allowed: tuple[str, ...] = OBS_ALLOWED
    sim_scope: tuple[str, ...] = SIM_SCOPE
    order_scope: tuple[str, ...] = ORDER_SCOPE
    units_scope: tuple[str, ...] = UNITS_SCOPE
    api_scope: tuple[str, ...] = API_SCOPE
    sweep_scope: tuple[str, ...] = SWEEP_SCOPE
    campus_handoff_allowed: tuple[str, ...] = CAMPUS_HANDOFF_ALLOWED

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True


#: Config used by tests to run every rule on a snippet regardless of
#: where the snippet file lives.
EVERYWHERE = AnalysisConfig(
    entropy_allowed=(),
    obs_allowed=(),
    sim_scope=("",),
    order_scope=("",),
    units_scope=("",),
    api_scope=("",),
    sweep_scope=("",),
    campus_handoff_allowed=(),
)
