"""Per-function control-flow graphs for the flow-aware rules.

The AST rules of :mod:`repro.analysis.rules` are per-node pattern
matches; the ``ASY`` async-safety family needs to reason about *order*
— "a read happened, then the coroutine suspended, then a write landed".
:func:`build_cfg` lowers one function body into basic blocks:

* every statement of the function body lands in **exactly one** block
  (compound statements land where their header is evaluated; their
  nested bodies land in inner blocks) — a property the hypothesis suite
  in ``tests/analysis/test_cfg.py`` checks by construction;
* branches (``if``/``match``), loops (``for``/``while`` with their
  ``orelse``, ``break``/``continue``), and ``try``/``except``/
  ``finally`` produce the usual edges, with conservative exception
  edges from every block of a ``try`` region to its handlers and
  ``finally``;
* a statement that contains an ``await`` (or an implicitly awaiting
  header: ``async for``, ``async with``) **terminates its block** and
  marks it :attr:`BasicBlock.suspends` — await points are basic-block
  boundaries, which is what lets a dataflow client say "state read
  before this block's end may be stale afterwards".

Nested ``def``/``async def``/``class``/``lambda`` bodies are *not*
inlined: the definition statement itself is placed like any other
statement and the nested body belongs to the nested function's own CFG
(see :func:`iter_function_defs`).

The graph is an over-approximation of real control flow (e.g. a
``return`` inside ``try``/``finally`` is modelled by the region's
conservative edge into ``finally`` plus a direct edge to the exit
block). That is the right trade-off for the may-analyses built on top:
extra edges can only make them warn more, never miss an interleaving.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: AST node types whose bodies belong to a *different* scope and are
#: therefore never descended into while building a CFG.
_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)


@dataclass
class BasicBlock:
    """A straight-line run of statements with one entry point."""

    id: int
    stmts: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)
    #: True when the block ends at an await boundary: its last statement
    #: contains an ``await`` (or is an implicitly awaiting header).
    suspends: bool = False

    def add_succ(self, other: int) -> None:
        if other not in self.succs:
            self.succs.append(other)


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    func: FunctionNode
    blocks: list[BasicBlock]
    entry: int
    exit: int

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def successors(self, block_id: int) -> list[BasicBlock]:
        return [self.blocks[s] for s in self.blocks[block_id].succs]

    def reverse_postorder(self) -> list[int]:
        """Block ids in reverse postorder from the entry (unreachable
        blocks appended afterwards in id order, so every block — even a
        dead one after ``return`` — is visited by dataflow clients)."""
        seen: set[int] = set()
        order: list[int] = []

        stack: list[tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, index = stack[-1]
            succs = self.blocks[node].succs
            if index < len(succs):
                stack[-1] = (node, index + 1)
                child = succs[index]
                if child not in seen:
                    seen.add(child)
                    stack.append((child, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        for block in self.blocks:
            if block.id not in seen:
                order.append(block.id)
        return order

    def statement_blocks(self) -> dict[int, int]:
        """Map ``id(stmt) -> block id`` for every placed statement."""
        placed: dict[int, int] = {}
        for block in self.blocks:
            for stmt in block.stmts:
                placed[id(stmt)] = block.id
        return placed


def expr_contains_await(node: ast.AST) -> bool:
    """True if ``node`` contains an ``await`` in *this* scope (nested
    function/lambda/class bodies are opaque)."""
    if isinstance(node, ast.Await):
        return True
    if isinstance(node, _SCOPE_BARRIERS):
        return False
    return any(
        expr_contains_await(child) for child in ast.iter_child_nodes(node)
    )


def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a compound statement evaluates *at its header*
    (nested statement bodies excluded)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
        return []
    # Simple statements: the whole node is expression-bearing.
    return [stmt]


def stmt_suspends(stmt: ast.stmt) -> bool:
    """True when executing ``stmt``'s own step can suspend the coroutine
    (contains an await, or is an ``async for``/``async with`` header)."""
    if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
        return True
    return any(expr_contains_await(expr) for expr in _header_exprs(stmt))


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[tuple[str, FunctionNode]]:
    """Yield ``(qualname, node)`` for every function defined in ``tree``,
    including functions nested inside functions and classes."""

    def walk(node: ast.AST, prefix: str) -> Iterator[tuple[str, FunctionNode]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                yield from walk(child, f"{name}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")


class _Builder:
    """One-shot CFG construction for a single function body."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: list[BasicBlock] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        #: (continue target, break target) per enclosing loop.
        self._loops: list[tuple[int, int]] = []
        #: Exception targets (handler/finally entry ids) of enclosing
        #: ``try`` regions, outermost first.
        self._except_targets: list[list[int]] = []

    # -- low-level graph ops ----------------------------------------------

    def _new_block(self) -> int:
        block = BasicBlock(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def _edge(self, src: int, dst: int) -> None:
        self.blocks[src].add_succ(dst)

    def _place(self, block_id: int, stmt: ast.stmt) -> None:
        self.blocks[block_id].stmts.append(stmt)
        # Every block holding a statement inside a try region may raise
        # into the region's handlers: add the conservative edges at
        # placement time so nested regions compose automatically.
        for targets in self._except_targets:
            for target in targets:
                self._edge(block_id, target)

    def _seal_suspension(self, block_id: int) -> int:
        """End ``block_id`` at an await boundary; return the successor."""
        self.blocks[block_id].suspends = True
        after = self._new_block()
        self._edge(block_id, after)
        return after

    # -- statement dispatch -------------------------------------------------

    def build(self) -> CFG:
        end = self._visit_body(self.func.body, self.entry)
        self._edge(end, self.exit)
        for block in self.blocks:
            for succ in block.succs:
                if block.id not in self.blocks[succ].preds:
                    self.blocks[succ].preds.append(block.id)
        return CFG(
            func=self.func, blocks=self.blocks,
            entry=self.entry, exit=self.exit,
        )

    def _visit_body(self, body: list[ast.stmt], current: int) -> int:
        for stmt in body:
            current = self._visit(stmt, current)
        return current

    def _visit(self, stmt: ast.stmt, current: int) -> int:
        handler = getattr(self, f"_visit_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, current)
        # Simple statement: place it; split the block if it awaits.
        self._place(current, stmt)
        if stmt_suspends(stmt):
            return self._seal_suspension(current)
        return current

    # -- terminators --------------------------------------------------------

    def _visit_Return(self, stmt: ast.Return, current: int) -> int:
        self._place(current, stmt)
        if stmt_suspends(stmt):
            self.blocks[current].suspends = True
        self._edge(current, self.exit)
        return self._new_block()  # unreachable continuation

    def _visit_Raise(self, stmt: ast.Raise, current: int) -> int:
        self._place(current, stmt)
        # Region edges to handlers were added at placement; an uncaught
        # raise leaves the function.
        self._edge(current, self.exit)
        return self._new_block()

    def _visit_Break(self, stmt: ast.Break, current: int) -> int:
        self._place(current, stmt)
        if self._loops:
            self._edge(current, self._loops[-1][1])
        return self._new_block()

    def _visit_Continue(self, stmt: ast.Continue, current: int) -> int:
        self._place(current, stmt)
        if self._loops:
            self._edge(current, self._loops[-1][0])
        return self._new_block()

    # -- branches -----------------------------------------------------------

    def _visit_If(self, stmt: ast.If, current: int) -> int:
        self._place(current, stmt)
        if stmt_suspends(stmt):
            current = self._seal_suspension(current)
        join = self._new_block()
        then_entry = self._new_block()
        self._edge(current, then_entry)
        then_end = self._visit_body(stmt.body, then_entry)
        self._edge(then_end, join)
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(current, else_entry)
            else_end = self._visit_body(stmt.orelse, else_entry)
            self._edge(else_end, join)
        else:
            self._edge(current, join)
        return join

    def _visit_Match(self, stmt: ast.Match, current: int) -> int:
        self._place(current, stmt)
        if stmt_suspends(stmt):
            current = self._seal_suspension(current)
        join = self._new_block()
        has_wildcard = False
        for case in stmt.cases:
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                has_wildcard = True
            case_entry = self._new_block()
            self._edge(current, case_entry)
            case_end = self._visit_body(case.body, case_entry)
            self._edge(case_end, join)
        if not has_wildcard or not stmt.cases:
            self._edge(current, join)
        return join

    # -- loops --------------------------------------------------------------

    def _loop(
        self,
        stmt: ast.stmt,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        current: int,
        *,
        exits_normally: bool,
        suspends_each_iteration: bool,
    ) -> int:
        header = self._new_block()
        self._edge(current, header)
        self._place(header, stmt)
        if suspends_each_iteration:
            self.blocks[header].suspends = True
        after = self._new_block()
        body_entry = self._new_block()
        self._edge(header, body_entry)
        if exits_normally:
            if orelse:
                orelse_entry = self._new_block()
                self._edge(header, orelse_entry)
                orelse_end = self._visit_body(orelse, orelse_entry)
                self._edge(orelse_end, after)
            else:
                self._edge(header, after)
        elif orelse:
            # ``while True: ... else:`` — the else is unreachable but its
            # statements still need a home.
            orelse_entry = self._new_block()
            orelse_end = self._visit_body(orelse, orelse_entry)
            self._edge(orelse_end, after)
        self._loops.append((header, after))
        body_end = self._visit_body(body, body_entry)
        self._loops.pop()
        self._edge(body_end, header)
        return after

    def _visit_While(self, stmt: ast.While, current: int) -> int:
        test_const_true = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        return self._loop(
            stmt, stmt.body, stmt.orelse, current,
            exits_normally=not test_const_true,
            suspends_each_iteration=stmt_suspends(stmt),
        )

    def _visit_For(self, stmt: ast.For, current: int) -> int:
        return self._loop(
            stmt, stmt.body, stmt.orelse, current,
            exits_normally=True,
            suspends_each_iteration=stmt_suspends(stmt),
        )

    def _visit_AsyncFor(self, stmt: ast.AsyncFor, current: int) -> int:
        return self._loop(
            stmt, stmt.body, stmt.orelse, current,
            exits_normally=True,
            suspends_each_iteration=True,  # __anext__ awaits
        )

    # -- context managers ----------------------------------------------------

    def _with(self, stmt: ast.stmt, body: list[ast.stmt],
              current: int, *, is_async: bool) -> int:
        self._place(current, stmt)
        if is_async or stmt_suspends(stmt):
            # ``__aenter__`` awaits: entry is a suspension boundary.
            current = self._seal_suspension(current)
        body_entry = self._new_block()
        self._edge(current, body_entry)
        body_end = self._visit_body(body, body_entry)
        if is_async:
            # ``__aexit__`` awaits: exit is a suspension boundary too.
            self.blocks[body_end].suspends = True
        after = self._new_block()
        self._edge(body_end, after)
        return after

    def _visit_With(self, stmt: ast.With, current: int) -> int:
        return self._with(stmt, stmt.body, current, is_async=False)

    def _visit_AsyncWith(self, stmt: ast.AsyncWith, current: int) -> int:
        return self._with(stmt, stmt.body, current, is_async=True)

    # -- try/except/finally ---------------------------------------------------

    def _visit_Try(self, stmt: ast.Try, current: int) -> int:
        return self._try(stmt, current)

    def _visit_TryStar(self, stmt: ast.stmt, current: int) -> int:
        return self._try(stmt, current)

    def _try(self, stmt: ast.stmt, current: int) -> int:
        handlers = getattr(stmt, "handlers", [])
        body = stmt.body
        orelse = getattr(stmt, "orelse", [])
        finalbody = getattr(stmt, "finalbody", [])

        self._place(current, stmt)
        after = self._new_block()

        finally_entry: int | None = None
        if finalbody:
            finally_entry = self._new_block()

        handler_entries = [self._new_block() for _ in handlers]

        # Every block placed while the region is active raises into the
        # handlers (and, failing those, the finally).
        targets = list(handler_entries)
        if finally_entry is not None:
            targets.append(finally_entry)

        body_entry = self._new_block()
        self._edge(current, body_entry)
        self._except_targets.append(targets)
        body_end = self._visit_body(body, body_entry)
        self._except_targets.pop()

        # Handlers themselves may raise into the finally.
        handler_targets = [finally_entry] if finally_entry is not None else []
        handler_ends = []
        for handler, entry in zip(handlers, handler_entries):
            if handler_targets:
                self._except_targets.append(handler_targets)
            end = self._visit_body(handler.body, entry)
            if handler_targets:
                self._except_targets.pop()
            handler_ends.append(end)

        if orelse:
            orelse_entry = self._new_block()
            self._edge(body_end, orelse_entry)
            if handler_targets:
                self._except_targets.append(handler_targets)
            normal_end = self._visit_body(orelse, orelse_entry)
            if handler_targets:
                self._except_targets.pop()
        else:
            normal_end = body_end

        if finally_entry is not None:
            finally_end = self._visit_body(finalbody, finally_entry)
            self._edge(normal_end, finally_entry)
            for end in handler_ends:
                self._edge(end, finally_entry)
            self._edge(finally_end, after)
            # The re-raise path: an exception that traversed finally
            # leaves the function.
            self._edge(finally_end, self.exit)
        else:
            self._edge(normal_end, after)
            for end in handler_ends:
                self._edge(end, after)
        return after


def build_cfg(func: FunctionNode) -> CFG:
    """Lower one function body into a :class:`CFG`."""
    return _Builder(func).build()
