"""Rendering findings as text, JSON, or GitHub workflow annotations."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding, Severity


def render_text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{f.location()}: {f.rule} [{f.severity.value}] {f.message}"
        for f in findings
    ]
    return "\n".join(lines)


def render_statistics(findings: Sequence[Finding]) -> str:
    counts = Counter(f.rule for f in findings)
    lines = [f"{rule}  {count}" for rule, count in sorted(counts.items())]
    lines.append(f"total  {len(findings)}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    rows = [
        {
            "path": f.path,
            "module_path": f.module_path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "severity": f.severity.value,
            "message": f.message,
            "fingerprint": f.fingerprint(),
        }
        for f in findings
    ]
    return json.dumps(rows, indent=2)


def render_github(findings: Sequence[Finding]) -> str:
    """``::error``/``::warning`` workflow commands for GitHub Actions."""
    lines = []
    for f in findings:
        level = "error" if f.severity is Severity.ERROR else "warning"
        message = f"{f.rule}: {f.message}".replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule}::{message}"
        )
    return "\n".join(lines)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
}
