"""Rendering findings as text, JSON, GitHub annotations, or SARIF."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RULES

#: SARIF version emitted by :func:`render_sarif` (what GitHub code
#: scanning ingests).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{f.location()}: {f.rule} [{f.severity.value}] {f.message}"
        for f in findings
    ]
    return "\n".join(lines)


def render_statistics(findings: Sequence[Finding]) -> str:
    counts = Counter(f.rule for f in findings)
    lines = [f"{rule}  {count}" for rule, count in sorted(counts.items())]
    lines.append(f"total  {len(findings)}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    rows = [
        {
            "path": f.path,
            "module_path": f.module_path,
            "line": f.line,
            "col": f.col,
            "rule": f.rule,
            "severity": f.severity.value,
            "message": f.message,
            "fingerprint": f.fingerprint(),
        }
        for f in findings
    ]
    return json.dumps(rows, indent=2)


def render_github(findings: Sequence[Finding]) -> str:
    """``::error``/``::warning`` workflow commands for GitHub Actions."""
    lines = []
    for f in findings:
        level = "error" if f.severity is Severity.ERROR else "warning"
        message = f"{f.rule}: {f.message}".replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule}::{message}"
        )
    return "\n".join(lines)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 log for GitHub code scanning.

    Every registered rule is described in ``tool.driver.rules`` (so the
    code-scanning UI shows titles and rationales even for rules with no
    current findings); results reference rules by id and carry the
    engine's line-independent fingerprint so alerts track across edits.
    """
    rules = [
        {
            "id": rule.id,
            "name": rule.id,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": (
                    "error"
                    if rule.default_severity is Severity.ERROR
                    else "warning"
                ),
            },
        }
        for _rule_id, rule in sorted(RULES.items())
    ]
    # Engine pseudo-rules can appear in results; describe them too.
    rules += [
        {
            "id": "E000",
            "name": "E000",
            "shortDescription": {"text": "file does not parse"},
            "defaultConfiguration": {"level": "error"},
        },
        {
            "id": "SUP001",
            "name": "SUP001",
            "shortDescription": {"text": "unused suppression"},
            "defaultConfiguration": {"level": "warning"},
        },
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error" if f.severity is Severity.ERROR else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; Finding.col is 0-based.
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproAnalyze/v1": f.fingerprint()},
        }
        for f in findings
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": (
                            "https://example.invalid/repro/DESIGN.md"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "github": render_github,
    "sarif": render_sarif,
}
