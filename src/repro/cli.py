"""Command-line interface.

Examples::

    python -m repro run --clients video:56,video:56,web --interval 500ms
    python -m repro figure 4 --quick
    python -m repro table optimal
    python -m repro demo

Every command accepts ``--json`` to emit machine-readable rows instead
of the formatted table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

from repro._version import __version__
from repro.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, dict):
        return " ".join(f"{k}:{_fmt(v)}" for k, v in value.items())
    return str(value)


def print_rows(rows: list[dict], as_json: bool) -> None:
    """Print result rows as a table or JSON."""
    if as_json:
        json.dump(rows, sys.stdout, indent=2, default=str)
        print()
        return
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        col: max(len(col), *(len(_fmt(r.get(col))) for r in rows))
        for col in columns
    }
    print("  ".join(col.ljust(widths[col]) for col in columns))
    for row in rows:
        print("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))


# ---------------------------------------------------------------------------
# Argument parsing helpers
# ---------------------------------------------------------------------------


def parse_interval(text: str):
    """'100ms' / '0.5' / '500ms' / 'variable' -> seconds or None."""
    text = text.strip().lower()
    if text in ("variable", "var", "auto"):
        return None
    if text.endswith("ms"):
        return float(text[:-2]) / 1000.0
    if text.endswith("s"):
        return float(text[:-1])
    return float(text)


def parse_clients(text: str):
    """'video:56,video:512,web,ftp:2097152' -> list of ClientSpec."""
    from repro.experiments.runner import ClientSpec

    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, arg = chunk.partition(":")
        if kind == "video":
            specs.append(ClientSpec("video", video_kbps=int(arg or 56)))
        elif kind == "web":
            specs.append(ClientSpec("web", web_pages=int(arg or 40)))
        elif kind == "ftp":
            specs.append(ClientSpec("ftp", ftp_bytes=int(arg or 2 * 1024**2)))
        else:
            raise ConfigurationError(f"unknown client spec: {chunk!r}")
    if not specs:
        raise ConfigurationError("no clients given")
    return specs


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_run(args) -> int:
    from repro.experiments.runner import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        clients=parse_clients(args.clients),
        burst_interval_s=parse_interval(args.interval),
        scheduler=args.scheduler,
        static_tcp_weight=args.tcp_weight,
        duration_s=args.duration,
        seed=args.seed,
        early_s=args.early_ms / 1000.0,
        reuse_schedules=args.reuse,
    )
    result = run_experiment(config)
    rows = [
        {
            "client": report.name,
            "kind": report.kind,
            "saved_pct": report.energy_saved_pct,
            "optimal_pct": report.optimal_saved_pct,
            "loss_pct": report.loss_pct,
            "energy_j": report.energy_j,
            "missed_schedules": report.missed_schedules,
        }
        for report in result.reports
    ]
    print_rows(rows, args.json)
    if not args.json:
        summary = result.summary
        print(
            f"\navg saved {summary.avg_saved_pct:.1f}% "
            f"[{summary.min_saved_pct:.1f}, {summary.max_saved_pct:.1f}]  "
            f"loss {summary.avg_loss_pct:.2f}%  "
            f"peak proxy buffer {result.peak_proxy_buffer_bytes/1024:.0f} KiB"
        )
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import figures

    driver: Callable = {
        "4": figures.figure4,
        "5": figures.figure5,
        "6": figures.figure6,
        "7": figures.figure7,
    }[args.number]
    rows = driver(seed=args.seed, quick=args.quick)
    print_rows(rows, args.json)
    return 0


TABLE_DRIVERS = {
    "tcp-only": "tcp_only",
    "optimal": "optimal_comparison",
    "static-dynamic": "static_vs_dynamic",
    "drops-netfilter": "drop_effect_netfilter",
    "drops-dummynet": "drop_effect_dummynet",
    "memory": "memory_footprint",
    "reuse": "schedule_reuse",
    "ablation": "split_connection_ablation",
    "psm": "psm_comparison",
}


def cmd_table(args) -> int:
    from repro.experiments import baselines, tables

    name = TABLE_DRIVERS[args.name]
    module = baselines if args.name == "psm" else tables
    driver = getattr(module, name)
    kwargs = {"seed": args.seed}
    if args.name != "drops-dummynet":
        kwargs["quick"] = args.quick
    rows = driver(**kwargs)
    if isinstance(rows, dict):
        rows = [rows]
    print_rows(rows, args.json)
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report_gen import write_report

    path = write_report(results_dir=args.results, output=args.output)
    print(f"wrote {path}")
    return 0


def cmd_demo(args) -> int:
    import asyncio

    from repro.runtime.demo import run_demo

    results = asyncio.run(
        run_demo(
            n_clients=args.clients,
            file_size=args.bytes,
            burst_interval_s=parse_interval(args.interval),
        )
    )
    rows = [
        {
            "client": r.client_id,
            "bytes": r.bytes_received,
            "schedules": r.schedules_heard,
            "marks": r.marks_heard,
            "awake_pct": r.awake_fraction * 100.0,
            "est_saved_pct": r.estimated_savings_pct,
        }
        for r in results
    ]
    print_rows(rows, args.json)
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dynamic, Power-Aware Scheduling for Mobile "
            "Clients Using a Transparent Proxy' (ICPP 2004)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument(
        "--clients", default="video:56," * 9 + "video:56",
        help="comma list: video:<kbps> | web[:pages] | ftp[:bytes]",
    )
    run.add_argument("--interval", default="500ms",
                     help="burst interval (e.g. 100ms, 0.5, variable)")
    run.add_argument("--scheduler", choices=("dynamic", "static"),
                     default="dynamic")
    run.add_argument("--tcp-weight", type=float, default=0.0,
                     help="static TCP slot fraction (Figure 7)")
    run.add_argument("--duration", type=float, default=119.0)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--early-ms", type=float, default=6.0)
    run.add_argument("--reuse", action="store_true",
                     help="enable §5 schedule reuse")
    run.add_argument("--json", action="store_true")
    run.set_defaults(func=cmd_run)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=("4", "5", "6", "7"))
    figure.add_argument("--quick", action="store_true")
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument("--json", action="store_true")
    figure.set_defaults(func=cmd_figure)

    table = sub.add_parser("table", help="regenerate a paper table/ablation")
    table.add_argument("name", choices=sorted(TABLE_DRIVERS))
    table.add_argument("--quick", action="store_true")
    table.add_argument("--seed", type=int, default=1)
    table.add_argument("--json", action="store_true")
    table.set_defaults(func=cmd_table)

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from benchmarks/results"
    )
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.set_defaults(func=cmd_report)

    demo = sub.add_parser("demo", help="live asyncio proxy demo")
    demo.add_argument("--clients", type=int, default=2)
    demo.add_argument("--bytes", type=int, default=300_000)
    demo.add_argument("--interval", default="100ms")
    demo.add_argument("--json", action="store_true")
    demo.set_defaults(func=cmd_demo)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
