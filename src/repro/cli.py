"""Command-line interface.

Examples::

    python -m repro run --clients video:56,video:56,web --interval 500ms
    python -m repro figure 4 --quick
    python -m repro table optimal
    python -m repro sweep --intervals 100ms,500ms --seeds 0:3 --jobs 2
    python -m repro demo

Every command accepts ``--json`` to emit machine-readable rows instead
of the formatted table. The multi-run commands (``figure``, ``table``,
``sweep``, ``report --refresh``) share the sweep engine's executor
options: ``--jobs`` fans runs out over worker processes and
``--cache-dir``/``--no-cache`` control the content-addressed result
cache (warm reruns skip simulation entirely).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable

from repro._version import __version__
from repro.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, dict):
        return " ".join(f"{k}:{_fmt(v)}" for k, v in value.items())
    return str(value)


def print_rows(rows: list[dict], as_json: bool) -> None:
    """Print result rows as a table or JSON."""
    if as_json:
        json.dump(rows, sys.stdout, indent=2, default=str)
        print()
        return
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        col: max(len(col), *(len(_fmt(r.get(col))) for r in rows))
        for col in columns
    }
    print("  ".join(col.ljust(widths[col]) for col in columns))
    for row in rows:
        print("  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))


# ---------------------------------------------------------------------------
# Argument parsing helpers
# ---------------------------------------------------------------------------


def parse_interval(text: str):
    """'100ms' / '0.5' / '500ms' / 'variable' -> seconds or None."""
    text = text.strip().lower()
    if text in ("variable", "var", "auto"):
        return None
    try:
        if text.endswith("ms"):
            return float(text[:-2]) / 1000.0
        if text.endswith("s"):
            return float(text[:-1])
        return float(text)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad interval {text!r}: use seconds, '<n>ms', or 'variable'"
        ) from exc


def parse_window(text: str):
    """'3.0:4.5' -> Window(3.0, 4.5)."""
    from repro.faults import Window

    try:
        start, _, end = text.partition(":")
        return Window(float(start), float(end))
    except ValueError as exc:
        raise ConfigurationError(f"bad window {text!r}: {exc}") from exc


def parse_churn(text: str):
    """'2:10' or '2:10:25' -> ChurnEvent(index, leave_at[, rejoin_at])."""
    from repro.faults import ChurnEvent

    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(
            f"bad churn spec {text!r}: expected index:leave[:rejoin]"
        )
    try:
        index, leave = int(parts[0]), float(parts[1])
        rejoin = float(parts[2]) if len(parts) == 3 else None
        return ChurnEvent(index, leave, rejoin)
    except ValueError as exc:
        raise ConfigurationError(f"bad churn spec {text!r}: {exc}") from exc


def parse_burst_loss(text: str):
    """'p_gb:p_bg[:loss_bad[:loss_good]]' -> GilbertElliottSpec."""
    from repro.faults import GilbertElliottSpec

    try:
        parts = [float(p) for p in text.split(":")]
    except ValueError as exc:
        raise ConfigurationError(f"bad burst-loss spec {text!r}: {exc}") from exc
    if len(parts) not in (2, 3, 4):
        raise ConfigurationError(
            f"bad burst-loss spec {text!r}: expected "
            "p_gb:p_bg[:loss_bad[:loss_good]]"
        )
    kwargs = dict(zip(("p_good_bad", "p_bad_good", "loss_bad", "loss_good"), parts))
    return GilbertElliottSpec(**kwargs)


def parse_channel(text: str, epoch_s: float = 0.1):
    """'p_gb:p_bg[:loss_bad[:loss_good]]' -> ChannelPlan."""
    from repro.net.channel import ChannelPlan

    try:
        parts = [float(p) for p in text.split(":")]
    except ValueError as exc:
        raise ConfigurationError(f"bad channel spec {text!r}: {exc}") from exc
    if len(parts) not in (2, 3, 4):
        raise ConfigurationError(
            f"bad channel spec {text!r}: expected "
            "p_gb:p_bg[:loss_bad[:loss_good]]"
        )
    kwargs = dict(
        zip(("p_good_bad", "p_bad_good", "loss_bad", "loss_good"), parts)
    )
    return ChannelPlan(epoch_s=epoch_s, **kwargs)


def build_fault_plan(args):
    """Assemble a FaultPlan from the ``--fault-*`` options (or None)."""
    from repro.faults import ClockFaultSpec, FaultPlan

    clock = None
    if args.fault_clock_skew_ppm or args.fault_clock_jitter_ms:
        clock = ClockFaultSpec(
            skew_ppm=args.fault_clock_skew_ppm,
            jitter_s=args.fault_clock_jitter_ms / 1000.0,
        )
    plan = FaultPlan(
        loss_rate=args.fault_loss,
        burst_loss=(
            parse_burst_loss(args.fault_burst_loss)
            if args.fault_burst_loss
            else None
        ),
        duplicate_rate=args.fault_dup,
        reorder_rate=args.fault_reorder,
        corrupt_rate=args.fault_corrupt,
        outages=tuple(parse_window(w) for w in args.fault_outage),
        schedule_blackouts=tuple(
            parse_window(w) for w in args.fault_blackout
        ),
        clock=clock,
        churn=tuple(parse_churn(c) for c in args.fault_churn),
        fallback_after_misses=args.fault_fallback_misses,
        silence_timeout_s=args.fault_silence_timeout,
    )
    if not plan.touches_medium and clock is None and plan.silence_timeout_s is None:
        return None
    return plan


def parse_seeds(text: str) -> list[int]:
    """'0,1,2' or '0:3' (half-open range) -> [0, 1, 2]."""
    seeds: list[int] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            if ":" in chunk:
                start, _, stop = chunk.partition(":")
                seeds.extend(range(int(start), int(stop)))
            else:
                seeds.append(int(chunk))
        except ValueError as exc:
            raise ConfigurationError(
                f"bad seed spec {chunk!r}: use '<n>' or '<start>:<stop>'"
            ) from exc
    if not seeds:
        raise ConfigurationError(f"no seeds in {text!r}")
    return seeds


def parse_clients(text: str):
    """'video:56,video:512,web,ftp:2097152' -> list of ClientSpec.

    A bare integer chunk is shorthand for that many 56 kbps video
    clients ('1000' == 'video:56' a thousand times) — the campus-scale
    smoke runs need populations, not rosters.
    """
    from repro.experiments.runner import ClientSpec

    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, arg = chunk.partition(":")
        if kind.isdigit() and not arg:
            specs.extend([ClientSpec("video", video_kbps=56)] * int(kind))
        elif kind == "video":
            specs.append(ClientSpec("video", video_kbps=int(arg or 56)))
        elif kind == "web":
            specs.append(ClientSpec("web", web_pages=int(arg or 40)))
        elif kind == "ftp":
            specs.append(ClientSpec("ftp", ftp_bytes=int(arg or 2 * 1024**2)))
        else:
            raise ConfigurationError(f"unknown client spec: {chunk!r}")
    if not specs:
        raise ConfigurationError("no clients given")
    return specs


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def build_engine(args):
    """A SweepEngine from the shared ``--jobs/--cache-dir/...`` options."""
    from repro.sweep import ResultCache, SweepEngine

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SweepEngine(jobs=args.jobs, cache=cache, retries=args.retries)


def _print_engine_summary(engine, as_json: bool) -> None:
    """One accounting line per sweep the command ran (table mode only)."""
    if not as_json:
        for report in engine.reports:
            print(report.summary(), file=sys.stderr)


def build_campus(args):
    """Assemble a CampusTopology from the ``--cells/--roam-*`` options
    (or None for the classic single-cell testbed)."""
    from repro.campus import CampusTopology, HandoffSpec, MobilityPlan

    if args.cells < 1:
        raise ConfigurationError(f"need at least one cell, got {args.cells}")
    if args.roam_rate < 0:
        raise ConfigurationError(f"negative roam rate: {args.roam_rate}")
    if args.cells == 1 and args.roam_rate == 0:
        return None
    return CampusTopology(
        n_cells=args.cells,
        mobility=(
            MobilityPlan(roam_rate=args.roam_rate, epoch_s=args.roam_epoch_s)
            if args.roam_rate > 0
            else None
        ),
        handoff=HandoffSpec(
            policy=args.handoff_policy,
            latency_s=args.handoff_latency_ms / 1000.0,
        ),
    )


def build_experiment_config(args):
    """Assemble an ExperimentConfig from the shared run/trace options."""
    from repro.experiments.runner import ExperimentConfig

    quick = getattr(args, "quick", False)
    return ExperimentConfig(
        clients=parse_clients(args.clients),
        burst_interval_s=parse_interval(args.interval),
        scheduler=args.scheduler,
        static_tcp_weight=args.tcp_weight,
        duration_s=min(args.duration, 6.0) if quick else args.duration,
        start_stagger_s=0.003 if quick else 1.0,
        seed=args.seed,
        early_s=args.early_ms / 1000.0,
        reuse_schedules=args.reuse,
        faults=build_fault_plan(args),
        policy=args.policy,
        policy_threshold_bytes=args.policy_threshold,
        policy_max_defer=args.policy_max_defer,
        channel=(
            parse_channel(args.channel, epoch_s=args.channel_epoch_s)
            if args.channel
            else None
        ),
        campus=build_campus(args),
        obs_mode=args.obs,
    )


def _export_observability(result, args) -> None:
    """Write whichever observability artifacts were requested."""
    from pathlib import Path

    from repro.obs import chrome_trace_json, events_jsonl, metrics_json

    if getattr(args, "metrics_out", None):
        Path(args.metrics_out).write_text(metrics_json(result.obs))
        print(f"wrote {args.metrics_out}")
    if getattr(args, "events_out", None):
        Path(args.events_out).write_text(events_jsonl(result.obs))
        print(f"wrote {args.events_out}")
    if getattr(args, "trace_out", None):
        Path(args.trace_out).write_text(chrome_trace_json(result.obs))
        print(f"wrote {args.trace_out}")


def cmd_run(args) -> int:
    from repro.experiments.runner import run_experiment

    result = run_experiment(build_experiment_config(args))
    _export_observability(result, args)
    rows = [
        {
            "client": report.name,
            "kind": report.kind,
            "saved_pct": report.energy_saved_pct,
            "optimal_pct": report.optimal_saved_pct,
            "loss_pct": report.loss_pct,
            "energy_j": report.energy_j,
            "missed_schedules": report.missed_schedules,
        }
        for report in result.reports
    ]
    print_rows(rows, args.json)
    if not args.json:
        summary = result.summary
        print(
            f"\navg saved {summary.avg_saved_pct:.1f}% "
            f"[{summary.min_saved_pct:.1f}, {summary.max_saved_pct:.1f}]  "
            f"loss {summary.avg_loss_pct:.2f}%  "
            f"peak proxy buffer {result.peak_proxy_buffer_bytes/1024:.0f} KiB"
        )
        if result.fault_counters:
            drops = "  ".join(
                f"{key}:{count}"
                for key, count in result.fault_counters.items()
            )
            print(f"drops {drops}")
        if result.slots_reclaimed or result.slots_restored:
            print(
                f"slots reclaimed {result.slots_reclaimed} "
                f"restored {result.slots_restored}"
            )
        if result.cells > 1:
            print(
                f"cells {result.cells}  handoffs {result.handoffs}  "
                f"handoff bytes moved {result.handoff_bytes_transferred} "
                f"dropped {result.handoff_bytes_dropped}"
            )
    return 0


def cmd_trace(args) -> int:
    """Run one experiment purely to export its timeline artifacts."""
    from repro.experiments.runner import run_experiment

    if not args.trace_out:
        args.trace_out = "trace.json"
    result = run_experiment(build_experiment_config(args))
    _export_observability(result, args)
    events = len(result.obs.trace.all()) if result.obs.trace else 0
    print(
        f"simulated {result.duration_s:.1f}s: {events} events, "
        f"{len(result.obs.spans)} spans "
        f"(open the trace file in chrome://tracing or ui.perfetto.dev)"
    )
    return 0


def cmd_figure(args) -> int:
    from repro.experiments import figures

    engine = build_engine(args)
    if args.number == "pareto":
        from repro.core.policy import POLICY_NAMES

        policies = (
            POLICY_NAMES if args.policy == "all" else (args.policy,)
        )
        rows = figures.pareto(
            seed=args.seed, quick=args.quick, policies=policies,
            engine=engine,
        )
    else:
        driver: Callable = {
            "4": figures.figure4,
            "5": figures.figure5,
            "6": figures.figure6,
            "7": figures.figure7,
            "campus": figures.campus_grid,
        }[args.number]
        rows = driver(seed=args.seed, quick=args.quick, engine=engine)
    print_rows(rows, args.json)
    _print_engine_summary(engine, args.json)
    return 0


TABLE_DRIVERS = {
    "tcp-only": "tcp_only",
    "optimal": "optimal_comparison",
    "static-dynamic": "static_vs_dynamic",
    "drops-netfilter": "drop_effect_netfilter",
    "drops-dummynet": "drop_effect_dummynet",
    "memory": "memory_footprint",
    "reuse": "schedule_reuse",
    "ablation": "split_connection_ablation",
    "psm": "psm_comparison",
}


def cmd_table(args) -> int:
    from repro.experiments import baselines, tables

    name = TABLE_DRIVERS[args.name]
    module = baselines if args.name == "psm" else tables
    driver = getattr(module, name)
    engine = build_engine(args)
    rows = driver(seed=args.seed, quick=args.quick, engine=engine)
    if isinstance(rows, dict):
        rows = [rows]
    print_rows(rows, args.json)
    _print_engine_summary(engine, args.json)
    return 0


def cmd_sweep(args) -> int:
    """Expand a grid of intervals × seeds and run it through the engine."""
    from repro.experiments.runner import ExperimentConfig
    from repro.sweep import SweepSpec

    base = ExperimentConfig(
        clients=parse_clients(args.clients),
        burst_interval_s=0.5,
        scheduler=args.scheduler,
        static_tcp_weight=args.tcp_weight,
        duration_s=args.duration,
        early_s=args.early_ms / 1000.0,
        reuse_schedules=args.reuse,
    )
    intervals = [parse_interval(text) for text in args.intervals.split(",")]
    spec = SweepSpec.grid(
        args.name,
        base,
        axes={"burst_interval_s": intervals},
        seeds=parse_seeds(args.seeds),
    )
    engine = build_engine(args)
    outcome = engine.run(spec)
    rows = []
    for run, result in zip(spec.runs, outcome.results):
        interval = run.label["burst_interval_s"]
        rows.append(
            {
                "interval": "variable" if interval is None else interval,
                "seed": run.label["seed"],
                "avg_saved_pct": result.summary.avg_saved_pct,
                "min_saved_pct": result.summary.min_saved_pct,
                "max_saved_pct": result.summary.max_saved_pct,
                "avg_loss_pct": result.summary.avg_loss_pct,
            }
        )
    if args.json:
        json.dump(
            {"rows": rows, "report": outcome.report.as_dict()},
            sys.stdout, indent=2, default=str,
        )
        print()
    else:
        print_rows(rows, False)
        print(outcome.report.summary(), file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report_gen import write_report

    if args.refresh:
        from repro.experiments.report_gen import refresh_results

        engine = build_engine(args)
        written = refresh_results(
            results_dir=args.results, quick=args.quick, engine=engine,
        )
        _print_engine_summary(engine, as_json=False)
        print(f"refreshed {len(written)} result file(s) in {args.results}")
    path = write_report(results_dir=args.results, output=args.output)
    print(f"wrote {path}")
    return 0


def cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        RENDERERS,
        AnalysisConfig,
        analyze_paths,
        filter_baselined,
        load_baseline,
        render_statistics,
        write_baseline,
    )

    config = AnalysisConfig(
        select=(
            frozenset(args.select.split(",")) if args.select else None
        ),
        ignore=(
            frozenset(args.ignore.split(",")) if args.ignore else frozenset()
        ),
    )
    paths = list(args.paths)
    if args.changed is not None:
        from repro.analysis.incremental import (
            changed_python_files,
            restrict_to,
        )

        paths = restrict_to(changed_python_files(args.changed), paths)
        if not paths:
            if args.format == "text":
                print("no changed python files")
            return 0
    findings = analyze_paths(paths, config)

    baseline_path = Path(args.baseline) if args.baseline else None
    if args.write_baseline:
        if baseline_path is None:
            raise ConfigurationError("--write-baseline requires --baseline")
        write_baseline(baseline_path, findings)
        print(f"wrote baseline with {len(findings)} finding(s) to {baseline_path}")
        return 0
    if baseline_path is not None and baseline_path.exists():
        findings = filter_baselined(findings, load_baseline(baseline_path))

    rendered = RENDERERS[args.format](findings)
    if rendered:
        print(rendered)
    if args.statistics:
        print(render_statistics(findings))
    elif not findings and args.format == "text":
        print("no findings")
    return 1 if findings else 0


def cmd_demo(args) -> int:
    import asyncio

    from repro.runtime.demo import run_demo

    results = asyncio.run(
        run_demo(
            n_clients=args.clients,
            file_size=args.bytes,
            burst_interval_s=parse_interval(args.interval),
        )
    )
    rows = [
        {
            "client": r.client_id,
            "bytes": r.bytes_received,
            "schedules": r.schedules_heard,
            "marks": r.marks_heard,
            "awake_pct": r.awake_fraction * 100.0,
            "est_saved_pct": r.estimated_savings_pct,
        }
        for r in results
    ]
    print_rows(rows, args.json)
    return 0


def cmd_loadtest(args) -> int:
    import asyncio

    from repro.faults import FaultPlan
    from repro.runtime import LoadTestConfig, run_loadtest
    from repro.runtime.proxy import AsyncProxyConfig

    plan = None
    if (
        args.fault_loss
        or args.fault_outage
        or args.fault_blackout
        or args.fault_churn
    ):
        plan = FaultPlan(
            loss_rate=args.fault_loss,
            outages=tuple(parse_window(w) for w in args.fault_outage),
            schedule_blackouts=tuple(
                parse_window(w) for w in args.fault_blackout
            ),
            churn=tuple(parse_churn(c) for c in args.fault_churn),
        )
    config = LoadTestConfig(
        clients=args.clients,
        requests_per_client=args.requests,
        bytes_per_request=args.bytes,
        burst_interval_s=parse_interval(args.interval),
        origin_pace_s=args.pace_ms / 1000.0,
        timeout_s=args.timeout,
        plan=plan,
        seed=args.seed,
        proxy=AsyncProxyConfig(
            queue_high_bytes=args.queue_high,
            queue_low_bytes=min(args.queue_high, args.queue_low),
            silence_timeout_s=args.silence_timeout,
            evict_timeout_s=max(args.evict_timeout, args.silence_timeout),
        ),
    )
    report = asyncio.run(run_loadtest(config))
    print_rows(report.summary_rows(), args.json)
    if not args.json:
        print(
            f"\n{report.bytes_received / 1024:.0f} KiB in "
            f"{report.duration_s:.2f}s  "
            f"peak buffer {report.peak_buffered_bytes / 1024:.0f} KiB  "
            f"schedules {report.schedules_sent}  "
            f"slots reclaimed {report.slots_reclaimed}  "
            f"chaos dropped {report.chaos_dropped}"
        )
        if report.watermark_exceeded:
            print(
                "WATERMARK EXCEEDED: peak per-client queue "
                f"{report.peak_queue_bytes} B > high watermark "
                f"{report.queue_high_bytes} B + one chunk"
            )
    return 1 if report.watermark_exceeded else 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dynamic, Power-Aware Scheduling for Mobile "
            "Clients Using a Transparent Proxy' (ICPP 2004)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(command) -> None:
        """Experiment options shared by ``run`` and ``trace``."""
        command.add_argument(
            "--clients", default="video:56," * 9 + "video:56",
            help="comma list: video:<kbps> | web[:pages] | ftp[:bytes]",
        )
        command.add_argument("--interval", default="500ms",
                             help="burst interval (e.g. 100ms, 0.5, variable)")
        command.add_argument("--scheduler", choices=("dynamic", "static"),
                             default="dynamic")
        command.add_argument("--tcp-weight", type=float, default=0.0,
                             help="static TCP slot fraction (Figure 7)")
        command.add_argument("--duration", type=float, default=119.0)
        command.add_argument("--seed", type=int, default=0)
        command.add_argument("--early-ms", type=float, default=6.0)
        command.add_argument("--reuse", action="store_true",
                             help="enable §5 schedule reuse")
        command.add_argument("--quick", action="store_true",
                             help="smoke sizing: cap duration at 6s and "
                                  "collapse the start stagger")
        command.add_argument(
            "--obs", choices=("full", "trace", "metrics", "off"),
            default="full",
            help="observability mode ('metrics' keeps counters but no "
                 "per-event rows — the 1k-client smoke mode)",
        )
        campus = command.add_argument_group(
            "campus topology (multi-cell roaming; see repro.campus and "
            "DESIGN.md §15)"
        )
        campus.add_argument("--cells", type=int, default=1,
                            help="number of campus cells (1 = classic "
                                 "single-cell testbed)")
        campus.add_argument("--roam-rate", type=float, default=0.0,
                            metavar="P",
                            help="per-client per-epoch roam probability")
        campus.add_argument("--roam-epoch-s", type=float, default=1.0,
                            metavar="SECONDS",
                            help="mobility decision grid (default 1.0)")
        campus.add_argument("--handoff-policy",
                            choices=("transfer", "drain"),
                            default="transfer",
                            help="migrate the backlog or start clean")
        campus.add_argument("--handoff-latency-ms", type=float, default=20.0,
                            help="radio re-association gap (default 20ms)")
        policy = command.add_argument_group(
            "slot-admission policy (see repro.core.policy; 'dynamic' "
            "reproduces the paper byte-for-byte)"
        )
        policy.add_argument("--policy",
                            choices=("dynamic", "channel", "joint"),
                            default="dynamic")
        policy.add_argument("--policy-threshold", type=int, default=1,
                            metavar="BYTES",
                            help="joint policy: backlog that overrides a "
                                 "bad channel")
        policy.add_argument("--policy-max-defer", type=int, default=2,
                            metavar="N",
                            help="channel policy: max consecutive deferrals")
        policy.add_argument("--channel", default="",
                            metavar="PGB:PBG[:LBAD[:LGOOD]]",
                            help="per-client Gilbert-Elliott channel model "
                                 "(exclusive RNG streams; never perturbs "
                                 "fault replays)")
        policy.add_argument("--channel-epoch-s", type=float, default=0.1,
                            metavar="SECONDS",
                            help="channel transition grid (default 0.1)")
        faults = command.add_argument_group(
            "fault injection (deterministic under --seed; see repro.faults)"
        )
        faults.add_argument("--fault-loss", type=float, default=0.0,
                            metavar="RATE", help="iid wireless frame loss rate")
        faults.add_argument("--fault-burst-loss", default="",
                            metavar="PGB:PBG[:LBAD[:LGOOD]]",
                            help="Gilbert-Elliott bursty loss parameters")
        faults.add_argument("--fault-dup", type=float, default=0.0,
                            metavar="RATE", help="frame duplication rate")
        faults.add_argument("--fault-reorder", type=float, default=0.0,
                            metavar="RATE", help="frame reordering rate")
        faults.add_argument("--fault-corrupt", type=float, default=0.0,
                            metavar="RATE",
                            help="frame corruption (CRC-fail) rate")
        faults.add_argument("--fault-outage", action="append", default=[],
                            metavar="START:END",
                            help="AP outage window (repeatable)")
        faults.add_argument("--fault-blackout", action="append", default=[],
                            metavar="START:END",
                            help="schedule-broadcast blackout window "
                                 "(repeatable)")
        faults.add_argument("--fault-churn", action="append", default=[],
                            metavar="CLIENT:LEAVE[:REJOIN]",
                            help="client churn event (repeatable)")
        faults.add_argument("--fault-clock-skew-ppm", type=float, default=0.0,
                            help="client clock rate error in ppm")
        faults.add_argument("--fault-clock-jitter-ms", type=float, default=0.0,
                            help="client wake-up timer jitter stddev (ms)")
        faults.add_argument("--fault-fallback-misses", type=int, default=3,
                            metavar="N",
                            help="missed broadcasts before always-listen "
                                 "fallback")
        faults.add_argument("--fault-silence-timeout", type=float,
                            default=None, metavar="SECONDS",
                            help="reclaim slots of clients silent this long")
        obs = command.add_argument_group(
            "observability export (deterministic: same seed, same bytes)"
        )
        obs.add_argument("--metrics-out", default=None, metavar="FILE",
                         help="write the canonical metrics JSON snapshot")
        obs.add_argument("--events-out", default=None, metavar="FILE",
                         help="write the event-stream JSONL")
        obs.add_argument("--trace-out", default=None, metavar="FILE",
                         help="write a chrome://tracing / Perfetto timeline")

    def add_executor_options(command) -> None:
        """Sweep-engine options shared by every multi-run command."""
        executor = command.add_argument_group(
            "sweep execution (cache + parallel fan-out; see DESIGN.md §10)"
        )
        executor.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes (1 = serial; results are identical)",
        )
        executor.add_argument(
            "--cache-dir", default=".sweep-cache", metavar="DIR",
            help="content-addressed result cache (default: .sweep-cache)",
        )
        executor.add_argument(
            "--no-cache", action="store_true",
            help="always re-run; neither read nor write the cache",
        )
        executor.add_argument(
            "--retries", type=int, default=1, metavar="N",
            help="extra attempts per failing run before giving up",
        )

    run = sub.add_parser("run", help="run one experiment")
    add_run_options(run)
    run.add_argument("--json", action="store_true")
    run.set_defaults(func=cmd_run)

    trace = sub.add_parser(
        "trace",
        help="run one experiment and export its observability timeline",
    )
    add_run_options(trace)
    trace.set_defaults(func=cmd_trace)

    figure = sub.add_parser(
        "figure",
        help="regenerate a paper figure (or the policy 'pareto' extension)",
    )
    figure.add_argument(
        "number", choices=("4", "5", "6", "7", "pareto", "campus")
    )
    figure.add_argument("--quick", action="store_true")
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument(
        "--policy", choices=("dynamic", "channel", "joint", "all"),
        default="all",
        help="pareto only: which policies to sweep (default: all)",
    )
    figure.add_argument("--json", action="store_true")
    add_executor_options(figure)
    figure.set_defaults(func=cmd_figure)

    table = sub.add_parser("table", help="regenerate a paper table/ablation")
    table.add_argument("name", choices=sorted(TABLE_DRIVERS))
    table.add_argument("--quick", action="store_true")
    table.add_argument("--seed", type=int, default=1)
    table.add_argument("--json", action="store_true")
    add_executor_options(table)
    table.set_defaults(func=cmd_table)

    sweep = sub.add_parser(
        "sweep",
        help="run an interval × seed grid through the sweep engine",
    )
    sweep.add_argument("--name", default="cli_sweep",
                       help="sweep name (reporting only)")
    sweep.add_argument(
        "--clients", default="video:56,video:56,video:56,video:56",
        help="comma list: video:<kbps> | web[:pages] | ftp[:bytes]",
    )
    sweep.add_argument("--intervals", default="100ms,500ms",
                       metavar="LIST",
                       help="comma list of burst intervals to sweep")
    sweep.add_argument("--seeds", default="0", metavar="LIST",
                       help="comma list and/or '<start>:<stop>' ranges")
    sweep.add_argument("--scheduler", choices=("dynamic", "static"),
                       default="dynamic")
    sweep.add_argument("--tcp-weight", type=float, default=0.0)
    sweep.add_argument("--duration", type=float, default=119.0)
    sweep.add_argument("--early-ms", type=float, default=6.0)
    sweep.add_argument("--reuse", action="store_true",
                       help="enable §5 schedule reuse")
    sweep.add_argument("--json", action="store_true",
                       help="emit {rows, report} as JSON")
    add_executor_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from benchmarks/results"
    )
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--refresh", action="store_true",
                        help="re-run every driver (through the sweep "
                             "engine) before rendering")
    report.add_argument("--quick", action="store_true",
                        help="with --refresh: CI-sized runs")
    add_executor_options(report)
    report.set_defaults(func=cmd_report)

    analyze = sub.add_parser(
        "analyze",
        help="run the simulation-invariant static analysis (lint) engine",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    analyze.add_argument("--format",
                         choices=("text", "json", "github", "sarif"),
                         default="text")
    analyze.add_argument(
        "--changed", nargs="?", const="main", default=None, metavar="BASE",
        help="only analyze files changed since merge-base(HEAD, BASE) "
             "plus untracked files (default BASE: main)",
    )
    analyze.add_argument("--select", default="",
                         help="comma list of rule ids to run exclusively")
    analyze.add_argument("--ignore", default="",
                         help="comma list of rule ids to skip")
    analyze.add_argument("--baseline", default=None, metavar="FILE",
                         help="JSON baseline of grandfathered findings")
    analyze.add_argument("--write-baseline", action="store_true",
                         help="record current findings into --baseline")
    analyze.add_argument("--statistics", action="store_true",
                         help="append per-rule finding counts")
    analyze.set_defaults(func=cmd_analyze)

    loadtest = sub.add_parser(
        "loadtest",
        help="load-test the live proxy on loopback (optionally under chaos)",
    )
    loadtest.add_argument("--clients", type=int, default=8)
    loadtest.add_argument("--requests", type=int, default=4,
                          help="requests per client")
    loadtest.add_argument("--bytes", type=int, default=64_000,
                          help="bytes per request")
    loadtest.add_argument("--interval", default="50ms",
                          help="burst interval (e.g. 50ms, 0.1)")
    loadtest.add_argument("--pace-ms", type=float, default=0.0,
                          help="origin pacing per chunk (0 = blast)")
    loadtest.add_argument("--timeout", type=float, default=30.0,
                          help="per-request client timeout (seconds)")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="chaos decision seed")
    loadtest.add_argument("--queue-high", type=int, default=2 * 1024 * 1024,
                          metavar="BYTES",
                          help="per-client queue high watermark")
    loadtest.add_argument("--queue-low", type=int, default=512 * 1024,
                          metavar="BYTES",
                          help="per-client queue low watermark")
    loadtest.add_argument("--silence-timeout", type=float, default=2.0,
                          help="uplink silence before slot reclaim (s)")
    loadtest.add_argument("--evict-timeout", type=float, default=6.0,
                          help="uplink silence before eviction (s)")
    chaos = loadtest.add_argument_group(
        "chaos (FaultPlan semantics on the wall clock; see "
        "repro.runtime.chaos)"
    )
    chaos.add_argument("--fault-loss", type=float, default=0.0,
                       metavar="RATE", help="iid control-datagram loss rate")
    chaos.add_argument("--fault-outage", action="append", default=[],
                       metavar="START:END",
                       help="origin-kill + control-blackout window "
                            "(repeatable)")
    chaos.add_argument("--fault-blackout", action="append", default=[],
                       metavar="START:END",
                       help="schedule-only blackout window (repeatable)")
    chaos.add_argument("--fault-churn", action="append", default=[],
                       metavar="CLIENT:LEAVE[:REJOIN]",
                       help="client vanish/rejoin event (repeatable)")
    loadtest.add_argument("--json", action="store_true")
    loadtest.set_defaults(func=cmd_loadtest)

    demo = sub.add_parser("demo", help="live asyncio proxy demo")
    demo.add_argument("--clients", type=int, default=2)
    demo.add_argument("--bytes", type=int, default=300_000)
    demo.add_argument("--interval", default="100ms")
    demo.add_argument("--json", action="store_true")
    demo.set_defaults(func=cmd_demo)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
