"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.core.Event`
objects. When a yielded event fires, the process resumes with the event's
value (or the event's exception is thrown into the generator, so failures
propagate naturally and can be handled with ``try/except``).

A :class:`Process` is itself an event: it fires with the generator's
return value when the generator finishes, so processes can be joined by
yielding them, composed with ``any_of``/``all_of``, and interrupted.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ProcessError
from repro.sim.core import Event, Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running simulation process wrapping a generator."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current instant.
        bootstrap = sim.event()
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a
        process twice before it resumes is also an error.
        """
        if self.triggered:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.add_callback(self._resume)
        self.sim._enqueue(interrupt_event, delay=0.0, priority=0)

    # -- internal ----------------------------------------------------------

    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            return  # process already finished (e.g. interrupt raced completion)
        if self._waiting_on is not None and trigger is not self._waiting_on:
            # A stale wakeup: after an interrupt the process may have moved
            # on to waiting on another event, but the original one still
            # fires. Only genuine interrupts may preempt the current wait.
            is_interrupt = (not trigger.ok) and isinstance(trigger._value, Interrupt)
            if not is_interrupt:
                return
        self._waiting_on = None
        try:
            if trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            self.fail(ProcessError(f"process {self.name!r} died on interrupt: {exc}"))
            return
        except BaseException as exc:  # propagate real errors loudly
            self.fail(exc)
            raise
        if not isinstance(target, Event):
            raise ProcessError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        self._waiting_on = target
        target.add_callback(self._resume)
