"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.core.Event`
objects. When a yielded event fires, the process resumes with the event's
value (or the event's exception is thrown into the generator, so failures
propagate naturally and can be handled with ``try/except``).

A :class:`Process` is itself an event: it fires with the generator's
return value when the generator finishes, so processes can be joined by
yielding them, composed with ``any_of``/``all_of``, and interrupted.

Hot-path note: process startup and resumption dominate sweep profiles
(hundreds of thousands of spawns/resumes per cold figure-4 run), so the
bootstrap is a single lightweight timer cell instead of a full Event,
the generator's ``send``/``throw`` and the ``_resume`` bound method are
cached once per process, and ``_resume`` reads Event slots directly
instead of going through property descriptors. The enqueue order is
identical to the pre-optimization kernel (one push at spawn, one per
completion), so traces stay byte-for-byte the same.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import ProcessError
from repro.sim.core import Event, Simulator

_PENDING = Event._PENDING


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _StartTrigger:
    """Shared ok/None trigger the bootstrap hands to ``_resume``."""

    __slots__ = ()
    _ok = True
    _value = None


_START = _StartTrigger()


class Process(Event):
    """A running simulation process wrapping a generator."""

    __slots__ = ("_generator", "_waiting_on", "name", "_send", "_throw", "_resume_cb")

    def __init__(self, sim: Simulator, generator: Generator, name: str = "") -> None:
        try:
            send = generator.send
            throw = generator.throw
        except AttributeError:
            raise ProcessError(
                f"Process needs a generator, got {type(generator).__name__}"
            ) from None
        super().__init__(sim)
        self._generator = generator
        self._send = send
        self._throw = throw
        self._waiting_on: Event | None = None
        self._resume_cb = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process at the current instant (one heap push,
        # exactly like the bootstrap Event it replaces).
        sim.call_later(0.0, self._bootstrap)

    def _bootstrap(self) -> None:
        self._resume(_START)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        Interrupting a finished process is an error; interrupting a
        process twice before it resumes is also an error.
        """
        if self._value is not _PENDING:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.add_callback(self._resume_cb)
        self.sim._enqueue(interrupt_event, delay=0.0, priority=0)

    # -- internal ----------------------------------------------------------

    def _resume(self, trigger) -> None:
        if self._value is not _PENDING:
            return  # process already finished (e.g. interrupt raced completion)
        waiting = self._waiting_on
        if waiting is not None and trigger is not waiting:
            # A stale wakeup: after an interrupt the process may have moved
            # on to waiting on another event, but the original one still
            # fires. Only genuine interrupts may preempt the current wait.
            if trigger._ok or not isinstance(trigger._value, Interrupt):
                return
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                target = self._throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            self.fail(ProcessError(f"process {self.name!r} died on interrupt: {exc}"))
            return
        except BaseException as exc:  # propagate real errors loudly
            self.fail(exc)
            raise
        if not isinstance(target, Event):
            raise ProcessError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        self._waiting_on = target
        callbacks = target.callbacks
        if callbacks is None:  # already processed: resume immediately
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)
