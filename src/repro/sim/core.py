"""Simulator event loop and primitive events.

The kernel is intentionally small: a binary heap of ``(time, priority,
seq, entry)`` tuples and an :class:`Event` type with success/failure
semantics. Processes (see :mod:`repro.sim.process`) are built on top of
these primitives.

Determinism: two events scheduled for the same instant fire in the order
they were scheduled (the monotonically increasing ``seq`` breaks ties),
so a simulation with fixed RNG seeds is exactly reproducible.

Performance: this is the hottest code in the repository — a cold
figure-4 sweep pops over a million heap entries — so the hot paths are
deliberately flat:

* :meth:`Simulator.run` inlines the pop/advance/dispatch loop instead
  of calling :meth:`Simulator.step` per event;
* timer callbacks (:meth:`Simulator.call_later` / ``call_at``) enqueue
  a tiny :class:`_Callback` cell instead of a full :class:`Event` plus
  a callback list;
* :class:`Timeout` initializes its slots and pushes onto the heap
  directly rather than chaining through ``Event.__init__`` and
  ``_enqueue``.

Every shortcut preserves the enqueue *order* (one heap push per
scheduling action, in the same program order), which is what keeps
same-seed runs byte-identical with the pre-optimization kernel — the
contract pinned by ``tests/sim/test_kernel_equivalence.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

#: Priority for ordinary events.
NORMAL = 1
#: Priority for urgent events (fire before NORMAL events at the same time).
URGENT = 0


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value, and is *processed* after its callbacks have run. Callbacks are
    plain callables receiving the event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    #: Sentinel for "no value yet".
    _PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._scheduled = False
        self._processed = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is Event._PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event._PENDING:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        if self._scheduled:
            raise SimulationError("event is already scheduled")
        self._scheduled = True
        sim._seq += 1
        heappush(sim._heap, (sim._now, NORMAL, sim._seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not Event._PENDING:
            raise SimulationError("event has already been triggered")
        self._ok = False
        self._value = exception
        sim = self.sim
        if self._scheduled:
            raise SimulationError("event is already scheduled")
        self._scheduled = True
        sim._seq += 1
        heappush(sim._heap, (sim._now, NORMAL, sim._seq, self))
        return self

    def _run_callbacks(self) -> None:
        callbacks = self.callbacks
        self.callbacks = None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Flattened Event.__init__ + _enqueue: a Timeout is born
        # triggered and scheduled, so the generic machinery is pure
        # overhead on the hottest allocation in the simulator.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._processed = False
        self.delay = delay
        sim._seq += 1
        heappush(sim._heap, (sim._now + delay, NORMAL, sim._seq, self))


class _Callback:
    """A bare timer cell: fires ``fn()`` and vanishes.

    Used by :meth:`Simulator.call_later`/``call_at`` for the hundreds of
    thousands of fire-and-forget timers (link delivery, TCP timer
    generations, delayed ACKs) that never need Event semantics — no
    value, no joiners, no callback list.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn

    def _run_callbacks(self) -> None:
        self.fn()


class _Call1:
    """Like :class:`_Callback` but carries one argument for ``fn``.

    Saves the lambda/closure allocation at per-packet call sites such
    as link delivery (``deliver(packet)`` a few hundred thousand times
    per sweep).
    """

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Callable[[Any], None], arg: Any) -> None:
        self.fn = fn
        self.arg = arg

    def _run_callbacks(self) -> None:
        self.fn(self.arg)


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    Value is a dict mapping the fired event(s) to their values (events
    that fired at the same instant are all included).
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._value is not Event._PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        fired = {e: e._value for e in self._events if e._processed and e._ok}
        self.succeed(fired)


class AllOf(Event):
    """Fires when all of ``events`` have fired successfully."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._value is not Event._PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self._events})


class Simulator:
    """Discrete-event simulator with a heap-based event loop."""

    #: Lazily resolved ``repro.sim.process.Process`` (import cycle:
    #: process.py imports this module at import time).
    _process_cls: Optional[type] = None

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise SimulationError("event is already scheduled")
        event._scheduled = True
        self._seq += 1
        heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every one of ``events`` has fired."""
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new process from a generator (see :class:`Process`)."""
        cls = Simulator._process_cls
        if cls is None:
            from repro.sim.process import Process

            Simulator._process_cls = cls = Process
        return cls(self, generator)

    def call_later(self, delay: float, func: Callable[[], None]) -> None:
        """Run ``func()`` ``delay`` seconds from now (fire-and-forget).

        The cheap sibling of :meth:`call_at`: one heap push, no Event.
        """
        if delay < 0:
            raise SimulationError(f"negative call_later delay: {delay!r}")
        self._seq += 1
        heappush(self._heap, (self._now + delay, NORMAL, self._seq, _Callback(func)))

    def call_later1(
        self, delay: float, func: Callable[[Any], None], arg: Any
    ) -> None:
        """Run ``func(arg)`` ``delay`` seconds from now (fire-and-forget)."""
        if delay < 0:
            raise SimulationError(f"negative call_later delay: {delay!r}")
        self._seq += 1
        heappush(
            self._heap, (self._now + delay, NORMAL, self._seq, _Call1(func, arg))
        )

    def call_at(self, when: float, func: Callable[[], None]) -> None:
        """Run ``func()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self._now}"
            )
        self._seq += 1
        heappush(self._heap, (when, NORMAL, self._seq, _Callback(func)))

    def call_at1(
        self, when: float, func: Callable[[Any], None], arg: Any
    ) -> None:
        """Run ``func(arg)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self._now}"
            )
        self._seq += 1
        heappush(self._heap, (when, NORMAL, self._seq, _Call1(func, arg)))

    # -- running --------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none is pending."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            SimulationError: if no events are pending, or a process died
                with an unhandled exception.
        """
        if not self._heap:
            raise SimulationError("no scheduled events to step")
        when, _priority, _seq, entry = heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap corrupted: time went backwards")
        self._now = when
        entry._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or ``until`` (exclusive of later events).

        When ``until`` is given, simulated time is advanced to exactly
        ``until`` even if no event falls on that instant.
        """
        # The loop body is step() inlined: at >1M events per sweep the
        # method dispatch and repeated attribute loads are measurable.
        heap = self._heap
        if until is None:
            while heap:
                entry = heappop(heap)
                self._now = entry[0]
                entry[3]._run_callbacks()
            return
        if until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while heap and heap[0][0] <= until:
            entry = heappop(heap)
            self._now = entry[0]
            entry[3]._run_callbacks()
        self._now = until
