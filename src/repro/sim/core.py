"""Simulator event loop and primitive events.

The kernel is intentionally small: a binary heap of ``(time, priority,
seq, event)`` tuples and an :class:`Event` type with success/failure
semantics. Processes (see :mod:`repro.sim.process`) are built on top of
these primitives.

Determinism: two events scheduled for the same instant fire in the order
they were scheduled (the monotonically increasing ``seq`` breaks ties),
so a simulation with fixed RNG seeds is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

#: Priority for ordinary events.
NORMAL = 1
#: Priority for urgent events (fire before NORMAL events at the same time).
URGENT = 0


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* once scheduled with a
    value, and is *processed* after its callbacks have run. Callbacks are
    plain callables receiving the event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_processed")

    #: Sentinel for "no value yet".
    _PENDING = object()

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        self._scheduled = False
        self._processed = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is Event._PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay=0.0, priority=NORMAL)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._enqueue(self, delay=delay, priority=NORMAL)


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    Value is a dict mapping the fired event(s) to their values (events
    that fired at the same instant are all included).
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        fired = {e: e.value for e in self._events if e.processed and e.ok}
        self.succeed(fired)


class AllOf(Event):
    """Fires when all of ``events`` have fired successfully."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})


class Simulator:
    """Discrete-event simulator with a heap-based event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise SimulationError("event is already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every one of ``events`` has fired."""
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new process from a generator (see :class:`Process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    def call_at(self, when: float, func: Callable[[], None]) -> Event:
        """Run ``func()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now={self._now}"
            )
        event = self.timeout(when - self._now)
        event.add_callback(lambda _e: func())
        return event

    # -- running --------------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none is pending."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises:
            SimulationError: if no events are pending, or a process died
                with an unhandled exception.
        """
        if not self._heap:
            raise SimulationError("no scheduled events to step")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event heap corrupted: time went backwards")
        self._now = when
        event._run_callbacks()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or ``until`` (exclusive of later events).

        When ``until`` is given, simulated time is advanced to exactly
        ``until`` even if no event falls on that instant.
        """
        if until is None:
            while self._heap:
                self.step()
            return
        if until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= until:
            self.step()
        self._now = until
