"""Waitable resources for simulation processes.

:class:`Store` is an unbounded (or capacity-bounded) FIFO of items with
event-returning ``put``/``get``; :class:`Resource` is a counting
semaphore. Both hand out items/slots in strict request order, which keeps
simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Event, Simulator


class Store:
    """FIFO item store with waitable get/put.

    Args:
        sim: owning simulator.
        capacity: maximum number of buffered items (``None`` = unbounded).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the returned event fires once it is stored."""
        event = self.sim.event()
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
            self._service_getters()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-waiting put; returns False if the store is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._service_getters()
        return True

    def get(self) -> Event:
        """Request the oldest item; the returned event fires with it."""
        event = self.sim.event()
        self._getters.append(event)
        self._service_getters()
        return event

    def try_get(self) -> Any:
        """Non-waiting get; returns None when empty.

        Only valid when no getters are queued (otherwise it would jump
        the FIFO line).
        """
        if self._getters:
            raise SimulationError("try_get would bypass waiting getters")
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putters()
        return item

    # -- internal ----------------------------------------------------------

    def _service_getters(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            item = self._items.popleft()
            getter.succeed(item)
            self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed(None)


class Resource:
    """Counting semaphore granting slots in request order."""

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity!r}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    def acquire(self) -> Event:
        """Request a slot; the returned event fires once granted."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot, waking the longest-waiting requester if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1
