"""Named, seeded random-number streams.

Every stochastic component in the library draws from its own named
stream derived deterministically from a single experiment seed. This
keeps experiments exactly reproducible *and* decoupled: adding draws to
one component (say, AP jitter) does not perturb another (say, the web
browsing script), because each stream has an independent generator.
"""

from __future__ import annotations

import zlib

import numpy as np


def _stable_key(name: str) -> int:
    """A stable 32-bit integer derived from ``name`` (not Python's hash)."""
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """Factory of independent, deterministic ``numpy`` generators.

    Example:
        >>> streams = RngStreams(seed=7)
        >>> jitter = streams.get("ap-jitter")
        >>> video = streams.get("video:client-3")
        >>> streams.get("ap-jitter") is jitter   # cached per name
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            sequence = np.random.SeedSequence([self.seed, _stable_key(name)])
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def fork(self, salt: str) -> "RngStreams":
        """Derive a child family of streams (e.g. per experiment trial)."""
        return RngStreams(seed=(self.seed * 1_000_003 + _stable_key(salt)) % 2**63)
