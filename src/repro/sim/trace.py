"""Structured tracing of simulation activity.

Components record :class:`TraceRecord` rows into a shared
:class:`TraceRecorder`; the energy analyzer and tests query those rows
postmortem — the same "sniff now, analyze later" structure the paper's
monitoring station used.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional


class TraceRecord:
    """A single trace row (treat as immutable once recorded).

    A plain ``__slots__`` class rather than a frozen dataclass: rows
    are allocated once per instrumented event (hundreds of thousands
    per run) and the frozen-dataclass ``__setattr__`` detour showed up
    in sweep profiles.

    Attributes:
        time: simulated timestamp in seconds.
        category: dotted event category, e.g. ``"wnic.transition"``.
        fields: arbitrary structured payload.
    """

    __slots__ = ("time", "category", "fields")

    def __init__(
        self,
        time: float,
        category: str,
        fields: Optional[dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.category = category
        self.fields = {} if fields is None else fields

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceRecord(time={self.time!r}, category={self.category!r}, "
            f"fields={self.fields!r})"
        )


class TraceRecorder:
    """Append-only container of trace records with simple querying."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record(self, time: float, category: str, **fields: Any) -> TraceRecord:
        """Append a record and return it."""
        row = TraceRecord(time, category, fields)
        self._records.append(row)
        return row

    def record_fields(
        self, time: float, category: str, fields: dict[str, Any]
    ) -> None:
        """Append a record taking ownership of an existing ``fields`` dict.

        The hot-path sibling of :meth:`record`: the recorder already
        collected the event's fields as a kwargs dict, so re-splatting
        them through ``**fields`` would build the same dict twice per
        event. The caller must not mutate ``fields`` afterwards.
        """
        self._records.append(TraceRecord(time, category, fields))

    def all(self) -> tuple[TraceRecord, ...]:
        """Every record in insertion (and therefore time) order."""
        return tuple(self._records)

    def query(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given filters.

        Args:
            category: exact category, or a prefix ending in ``"."`` to
                match a whole namespace, or None for all categories.
            predicate: optional extra row filter.
            since: inclusive lower time bound.
            until: exclusive upper time bound.
        """
        for row in self._records:
            if not since <= row.time < until:
                continue
            if category is not None:
                if category.endswith("."):
                    if not row.category.startswith(category):
                        continue
                elif row.category != category:
                    continue
            if predicate is not None and not predicate(row):
                continue
            yield row

    def count(self, category: Optional[str] = None) -> int:
        """Number of records matching ``category`` (same rules as query)."""
        return sum(1 for _ in self.query(category=category))
