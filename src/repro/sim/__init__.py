"""Discrete-event simulation kernel.

A small, deterministic, generator-based kernel in the style of SimPy:
processes are Python generators that ``yield`` events; the
:class:`~repro.sim.core.Simulator` advances virtual time along a binary
heap of pending events. Determinism is guaranteed by a total event order
``(time, priority, sequence-number)`` and by drawing all randomness from
named, seeded streams (:class:`~repro.sim.random.RngStreams`).
"""

from repro.sim.core import Event, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.random import RngStreams
from repro.sim.resources import Resource, Store
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "Process",
    "Resource",
    "RngStreams",
    "Simulator",
    "Store",
    "Timeout",
    "TraceRecord",
    "TraceRecorder",
]
