"""Exporters: metrics JSON, event-stream JSONL, Chrome-trace timeline.

All three outputs are canonical (sorted keys, fixed separators) and
derived only from simulated time, so same-seed runs export
byte-identical files — the property the golden-trace harness under
``tests/obs`` pins with SHA-256 digests.

The Chrome-trace output opens directly in ``chrome://tracing`` or
https://ui.perfetto.dev: spans become complete (``"X"``) slices,
point events become instants, and ``medium.frame`` rows — which carry
their own airtime ``start``/``end`` — are promoted to slices on the
``medium`` track so a Figure-4-style burst timeline is visible at a
glance.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.errors import TraceError
from repro.obs.recorder import Recorder, SpanRecord
from repro.sim.trace import TraceRecord

#: Simulated seconds -> Chrome trace microseconds.
_US = 1e6


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def metrics_json(recorder: Recorder) -> str:
    """Canonical metrics snapshot text for ``recorder``."""
    if recorder.metrics is None:
        raise TraceError("recorder has no metrics registry to export")
    return recorder.metrics.to_json()


def _merged(
    recorder: Recorder,
) -> list[tuple[float, int, int, Union[TraceRecord, SpanRecord]]]:
    """Events and spans merged on (time, kind, emission index).

    Point events sort before spans starting at the same instant; within
    a kind, emission order breaks ties. The key is a pure function of
    the run, so the merge is reproducible.
    """
    rows = recorder.trace.all() if recorder.trace is not None else ()
    merged: list[tuple[float, int, int, Union[TraceRecord, SpanRecord]]] = [
        (row.time, 0, index, row) for index, row in enumerate(rows)
    ]
    merged.extend(
        (span.start, 1, index, span)
        for index, span in enumerate(recorder.spans)
    )
    merged.sort(key=lambda item: item[:3])
    return merged


def events_jsonl(recorder: Recorder) -> str:
    """The event stream: one canonical JSON object per line."""
    lines: list[str] = []
    for ts, kind, _index, record in _merged(recorder):
        if kind == 0:
            assert isinstance(record, TraceRecord)
            lines.append(
                _canonical(
                    {
                        "type": "event",
                        "ts": ts,
                        "name": record.category,
                        "fields": record.fields,
                    }
                )
            )
        else:
            assert isinstance(record, SpanRecord)
            lines.append(
                _canonical(
                    {
                        "type": "span",
                        "ts": ts,
                        "end": record.end,
                        "name": record.name,
                        "track": record.track,
                        "fields": record.fields,
                    }
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Chrome trace (chrome://tracing / Perfetto)
# ---------------------------------------------------------------------------


def _event_track(record: TraceRecord) -> str:
    """Deterministic track (thread) assignment for a point event."""
    fields = record.fields
    prefix = record.category.split(".", 1)[0]
    if prefix == "client" and "client" in fields:
        return f"client {fields['client']}"
    if prefix == "wnic" and "owner" in fields:
        return str(fields["owner"])
    if prefix in ("medium", "faults"):
        return "medium"
    if prefix in ("proxy", "scheduler"):
        return "proxy"
    if prefix == "node" and "node" in fields:
        return str(fields["node"])
    return prefix


def chrome_trace_json(recorder: Recorder) -> str:
    """A ``chrome://tracing`` / Perfetto JSON document for the run."""
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
        return tid

    trace_events: list[dict] = []
    for ts, kind, _index, record in _merged(recorder):
        if kind == 1:
            assert isinstance(record, SpanRecord)
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": tid_for(record.track),
                    "ts": record.start * _US,
                    "dur": (record.end - record.start) * _US,
                    "name": record.name,
                    "cat": "span",
                    "args": record.fields,
                }
            )
            continue
        assert isinstance(record, TraceRecord)
        fields = record.fields
        if record.category == "medium.frame":
            # Airtime is a slice, not an instant: the frame row carries
            # its own start/end bounds.
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": tid_for("medium"),
                    "ts": fields["start"] * _US,
                    "dur": (fields["end"] - fields["start"]) * _US,
                    "name": (
                        f"{fields.get('proto', 'frame')} "
                        f"{fields.get('src', '?')}->{fields.get('dst', '?')}"
                    ),
                    "cat": "frame",
                    "args": fields,
                }
            )
            continue
        trace_events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": tid_for(_event_track(record)),
                "ts": ts * _US,
                "name": record.category,
                "cat": "event",
                "args": fields,
            }
        )

    metadata = [
        {
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": metadata + trace_events,
    }
    return json.dumps(document, sort_keys=True, default=str) + "\n"


def digest(text: str) -> str:
    """SHA-256 hex digest of exported text (the golden-trace key)."""
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).hexdigest()
