"""Deterministic metrics instruments (counters, gauges, histograms).

Everything here is keyed to **simulated** time and plain arithmetic:
there is no wall clock, no thread, no sampling. Two runs with the same
``(plan, seed)`` produce byte-identical snapshots, which is what lets
the metrics output itself serve as a regression oracle (the golden
traces under ``tests/obs/goldens``).

Instruments are identified by ``(name, labels)``; labels are stored as
a canonically sorted tuple so snapshot order never depends on call
order or dict iteration.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Mapping, Optional, Union

from repro.errors import ConfigurationError

Number = Union[int, float]

#: Label values are stringified; a label set is a sorted tuple of pairs.
LabelKey = tuple[tuple[str, str], ...]

# Standard bucket ladders (upper bounds; +inf is implicit).
RATIO_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)
SECONDS_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005,
    0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0,
)
BYTES_BUCKETS: tuple[float, ...] = (
    256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)
DEPTH_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)


def label_key(labels: Mapping[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label mapping.

    The 0/1-label cases — the overwhelming majority of hot-path
    instrument lookups — skip the sort entirely (a 1-tuple is already
    sorted).
    """
    if not labels:
        return ()
    if len(labels) == 1:
        [(key, value)] = labels.items()
        return ((key, str(value)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {n!r})"
            )
        self.value += n


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Replace the gauge value."""
        self.value = value

    def add(self, delta: Number) -> None:
        """Shift the gauge by ``delta``."""
        self.value += delta


class Histogram:
    """A fixed-bucket histogram (cumulative-free, per-bucket counts).

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "count")

    def __init__(
        self, name: str, labels: LabelKey, buckets: tuple[float, ...]
    ) -> None:
        if not buckets or any(
            b >= buckets[i + 1] for i, b in enumerate(buckets[:-1])
        ):
            raise ConfigurationError(
                f"histogram {name!r} needs strictly increasing buckets, "
                f"got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # +1 overflow bucket
        self.total = 0.0
        self.count = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        # bisect_left finds the first bound with value <= bound, i.e.
        # exactly the bucket a linear <= scan would pick; past-the-end
        # is the implicit overflow bucket.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """The process-wide (per scenario) collection of instruments."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter(name, key[1])
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge(name, key[1])
            self._gauges[key] = instrument
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``buckets`` is only consulted at creation; later calls may omit
        it. Re-creating with *different* buckets is a configuration
        error (the snapshot would silently stop lining up).
        """
        key = (name, label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = Histogram(name, key[1], buckets or SECONDS_BUCKETS)
            self._histograms[key] = instrument
        # Tuple equality compares by value, so the stored float bounds
        # match an int-typed declaration of the same ladder directly —
        # no per-call float() round trip.
        elif buckets is not None and instrument.buckets != tuple(buckets):
            raise ConfigurationError(
                f"histogram {name!r} re-declared with different buckets"
            )
        return instrument

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready, deterministically ordered dump of every
        instrument (sorted by name then labels)."""

        def order(item: tuple[tuple[str, LabelKey], Any]):
            return item[0]

        return {
            "counters": [
                {
                    "name": c.name,
                    "labels": dict(c.labels),
                    "value": c.value,
                }
                for _, c in sorted(self._counters.items(), key=order)
            ],
            "gauges": [
                {
                    "name": g.name,
                    "labels": dict(g.labels),
                    "value": g.value,
                }
                for _, g in sorted(self._gauges.items(), key=order)
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for _, h in sorted(self._histograms.items(), key=order)
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON text of :meth:`snapshot` (byte-stable)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"
