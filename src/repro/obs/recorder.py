"""The single instrumentation write path.

Every component records through a :class:`Recorder`:

* :meth:`Recorder.event` — a point event on the simulated timeline,
  stored as a :class:`~repro.sim.trace.TraceRecord` (so the energy
  analyzer's postmortem queries keep working unchanged);
* :meth:`Recorder.span` — a ``[start, end)`` interval (burst slots,
  schedule intervals, WNIC awake stretches) feeding the Chrome-trace /
  Perfetto exporter;
* :meth:`Recorder.inc` / :meth:`Recorder.gauge_set` /
  :meth:`Recorder.observe` — metrics instruments.

The ``OBS001`` analysis rule forbids calling ``TraceRecorder.record``
directly anywhere outside this package, so the recorder is the one
funnel all observability flows through. :class:`NullRecorder` keeps the
hooks nearly free when observability is off (the overhead bench in
``benchmarks/test_bench_obs_overhead.py`` holds it under 5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed ``[start, end)`` interval on a named track."""

    start: float
    end: float
    name: str
    track: str
    fields: dict[str, Any]


class _NullInstrument:
    """Write-only stand-in for a metrics instrument; discards updates."""

    __slots__ = ()

    def inc(self, n: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instrument returned by handle resolution when metrics
#: are off; callers can cache and update it unconditionally.
NULL_INSTRUMENT = _NullInstrument()


class Recorder:
    """Interface (and no-op base) for instrumentation sinks."""

    #: The wrapped raw trace log, if any (postmortem queries read it).
    trace: Optional[TraceRecorder] = None
    #: The metrics registry, if metrics are being collected.
    metrics: Optional[MetricsRegistry] = None

    def event(self, time: float, category: str, **fields: Any) -> None:
        """Record a point event at simulated ``time``."""

    def span(
        self, start: float, end: float, name: str, track: str,
        **fields: Any,
    ) -> None:
        """Record a completed interval on ``track``."""

    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        """Bump a counter."""

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge."""

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        """Record one histogram observation."""

    # -- resolved handles --------------------------------------------------
    #
    # Per-packet call sites (the medium's frame accounting, the AP's
    # queue-depth gauge) resolve their instrument once and update the
    # returned handle directly, skipping the per-call label
    # canonicalization and registry lookup. The handles still come from
    # the recorder, so observability stays funneled through this class
    # and turning metrics off yields free no-op handles.

    def resolve_counter(self, name: str, **labels: Any) -> Any:
        """A cacheable counter handle (no-op when metrics are off)."""
        return NULL_INSTRUMENT

    def resolve_gauge(self, name: str, **labels: Any) -> Any:
        """A cacheable gauge handle (no-op when metrics are off)."""
        return NULL_INSTRUMENT

    def resolve_histogram(
        self,
        name: str,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: Any,
    ) -> Any:
        """A cacheable histogram handle (no-op when metrics are off)."""
        return NULL_INSTRUMENT

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Completed spans in emission order."""
        return ()

    @staticmethod
    def wrap(trace: Optional[TraceRecorder]) -> "Recorder":
        """Adapt a bare trace argument to a recorder.

        Components accept either a full recorder or (for backward
        compatibility) a plain :class:`TraceRecorder`; ``wrap`` turns
        the latter into a :class:`SimRecorder` and ``None`` into the
        shared no-op recorder.
        """
        if trace is None:
            return NULL_RECORDER
        return SimRecorder(trace=trace)


class NullRecorder(Recorder):
    """Discards everything; all hooks are no-ops."""


#: Shared stateless no-op instance (safe to reuse everywhere).
NULL_RECORDER = NullRecorder()


class SimRecorder(Recorder):
    """The real sink: trace rows + spans + metrics.

    Args:
        trace: raw event log to append to (created when omitted).
        metrics: shared registry (created when omitted).
        record_metrics: when False, ``inc``/``gauge_set``/``observe``
            become no-ops (trace-only mode, the pre-obs baseline).
        record_spans: when False, ``span`` becomes a no-op.
        record_events: when False, ``event`` becomes a no-op
            (metrics-only mode — large campus runs keep counters
            without accumulating per-event trace rows).
    """

    def __init__(
        self,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        record_metrics: bool = True,
        record_spans: bool = True,
        record_events: bool = True,
    ) -> None:
        self.trace = trace if trace is not None else TraceRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.record_metrics = record_metrics
        self.record_spans = record_spans
        self.record_events = record_events
        self._spans: list[SpanRecord] = []

    # -- events ------------------------------------------------------------

    def event(self, time: float, category: str, **fields: Any) -> None:
        if self.record_events:
            self.trace.record_fields(time, category, fields)

    def span(
        self, start: float, end: float, name: str, track: str,
        **fields: Any,
    ) -> None:
        if not self.record_spans:
            return
        self._spans.append(
            SpanRecord(
                start=start, end=end, name=name, track=track, fields=fields
            )
        )

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        return tuple(self._spans)

    # -- metrics -----------------------------------------------------------

    def inc(self, name: str, n: float = 1, **labels: Any) -> None:
        if self.record_metrics:
            self.metrics.counter(name, **labels).inc(n)

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        if self.record_metrics:
            self.metrics.gauge(name, **labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        if self.record_metrics:
            self.metrics.histogram(name, buckets=buckets, **labels).observe(
                value
            )

    def resolve_counter(self, name: str, **labels: Any) -> Any:
        if not self.record_metrics:
            return NULL_INSTRUMENT
        return self.metrics.counter(name, **labels)

    def resolve_gauge(self, name: str, **labels: Any) -> Any:
        if not self.record_metrics:
            return NULL_INSTRUMENT
        return self.metrics.gauge(name, **labels)

    def resolve_histogram(
        self,
        name: str,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: Any,
    ) -> Any:
        if not self.record_metrics:
            return NULL_INSTRUMENT
        return self.metrics.histogram(name, buckets=buckets, **labels)
