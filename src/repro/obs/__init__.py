"""Deterministic observability: metrics, spans, timeline export.

The one instrumentation funnel for the simulator. Components write
through a :class:`Recorder` (events + spans + metrics); exporters turn
a finished run into canonical metrics JSON, an event-stream JSONL, and
a Chrome-trace / Perfetto timeline. Everything is keyed to simulated
time, so same-seed runs export byte-identical artifacts.
"""

from repro.obs.export import (
    chrome_trace_json,
    digest,
    events_jsonl,
    metrics_json,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    DEPTH_BUCKETS,
    RATIO_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    label_key,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    SimRecorder,
    SpanRecord,
)

__all__ = [
    "BYTES_BUCKETS",
    "DEPTH_BUCKETS",
    "NULL_RECORDER",
    "RATIO_BUCKETS",
    "SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "SimRecorder",
    "SpanRecord",
    "chrome_trace_json",
    "digest",
    "events_jsonl",
    "label_key",
    "metrics_json",
]
