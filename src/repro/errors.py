"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation kernel."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (e.g. yielded a non-event)."""


class NetworkError(ReproError):
    """Errors raised by the network substrate."""


class AddressError(NetworkError):
    """Invalid address, port, or flow specification."""


class ConnectionError_(NetworkError):
    """TCP connection lifecycle violation (named to avoid shadowing builtins)."""


class SocketError(NetworkError):
    """Socket misuse (double bind, send on closed socket, ...)."""


class OverloadError(NetworkError):
    """The live proxy refused admission (connection/byte limits hit)."""


class ProxyProtocolError(NetworkError):
    """The live proxy rejected a CONNECT handshake or status line."""


class SchedulingError(ReproError):
    """Errors raised by the proxy scheduling policies."""


class ConfigurationError(ReproError):
    """An experiment or component was configured inconsistently."""


class TraceError(ReproError):
    """Errors raised while capturing or analyzing packet traces."""


class AnalysisError(ReproError):
    """The static-analysis engine hit an internal inconsistency
    (e.g. a non-converging dataflow client)."""


class SweepError(ReproError):
    """Errors raised by the sweep orchestration subsystem."""


class SweepExecutionError(SweepError):
    """One or more sweep runs failed after exhausting their retries."""
