"""WNIC power-state machine with a logged transition history."""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder
from repro.sim.core import Simulator
from repro.sim.trace import TraceRecorder


class WnicState(Enum):
    """Card power states.

    The client daemon switches between SLEEP and IDLE; RECEIVE and
    TRANSMIT are *attributed* states the energy analyzer assigns to
    awake time that overlaps frame airtime (paper §3.1: the trace
    simulator computes time in each mode postmortem).
    """

    SLEEP = "sleep"
    IDLE = "idle"
    RECEIVE = "receive"
    TRANSMIT = "transmit"


class Wnic:
    """A wireless card owned by one client.

    Tracks the sleep/awake timeline and counts sleep→idle wake-ups,
    whose energy cost the paper models as 2 ms of idle time each.
    """

    def __init__(
        self,
        sim: Simulator,
        owner: str,
        trace: Optional[TraceRecorder] = None,
        start_asleep: bool = False,
        obs: Optional[Recorder] = None,
    ) -> None:
        self.sim = sim
        self.owner = owner
        self.obs = obs if obs is not None else Recorder.wrap(trace)
        self.trace = self.obs.trace if trace is None else trace
        self._state = WnicState.SLEEP if start_asleep else WnicState.IDLE
        #: (time, new_state) history; starts with the initial state at t=0.
        self.transitions: list[tuple[float, WnicState]] = [
            (sim.now, self._state)
        ]
        self.wake_count = 0

    @property
    def state(self) -> WnicState:
        """Current macro state (SLEEP or IDLE)."""
        return self._state

    @property
    def is_awake(self) -> bool:
        """True when the card can hear the medium."""
        return self._state != WnicState.SLEEP

    def can_receive(self, _packet=None) -> bool:
        """Receive gate wired into the client's wireless interface."""
        return self.is_awake

    def wake(self) -> bool:
        """Transition to high-power mode; returns True if a wake happened."""
        if self.is_awake:
            return False
        self.wake_count += 1
        self._set_state(WnicState.IDLE)
        return True

    def sleep(self) -> bool:
        """Transition to low-power mode; returns True on an actual change."""
        if not self.is_awake:
            return False
        self._set_state(WnicState.SLEEP)
        return True

    def _set_state(self, state: WnicState) -> None:
        previous = self.transitions[-1] if self.transitions else None
        self._state = state
        self.transitions.append((self.sim.now, state))
        self.obs.event(
            self.sim.now, "wnic.transition", owner=self.owner,
            state=state.value,
        )
        self.obs.inc(
            "wnic.transitions", owner=self.owner, to_state=state.value
        )
        if (
            state == WnicState.SLEEP
            and previous is not None
            and previous[1] != WnicState.SLEEP
            and self.sim.now > previous[0]
        ):
            # One completed awake stretch: render it on the timeline.
            self.obs.span(
                previous[0], self.sim.now, "awake", self.owner,
            )

    # -- timeline ----------------------------------------------------------

    def awake_intervals(self, end_time: float) -> list[tuple[float, float]]:
        """Maximal [start, end) intervals the card was awake before ``end_time``.

        Raises:
            ConfigurationError: if ``end_time`` precedes the last transition.
        """
        if self.transitions and end_time < self.transitions[-1][0]:
            raise ConfigurationError(
                f"end_time={end_time} precedes last transition at "
                f"{self.transitions[-1][0]}"
            )
        intervals: list[tuple[float, float]] = []
        awake_since: Optional[float] = None
        for when, state in self.transitions:
            if state != WnicState.SLEEP and awake_since is None:
                awake_since = when
            elif state == WnicState.SLEEP and awake_since is not None:
                if when > awake_since:
                    intervals.append((awake_since, when))
                awake_since = None
        if awake_since is not None and end_time > awake_since:
            intervals.append((awake_since, end_time))
        return intervals

    def awake_time(self, end_time: float) -> float:
        """Total awake seconds before ``end_time``."""
        return sum(end - start for start, end in self.awake_intervals(end_time))
