"""Wireless NIC power behaviour.

The paper's client daemon transitions an Orinoco WNIC between a
low-power *sleep* mode and the high-power *idle/receive/transmit* modes.
:class:`~repro.wnic.states.Wnic` is that card: a two-macro-state machine
(asleep / awake) with a logged transition history; receive/transmit
residency is attributed postmortem by the energy analyzer from the
monitoring station's capture, exactly as the paper's trace simulator
does. :mod:`~repro.wnic.power` holds the WaveLAN power constants, and
:mod:`~repro.wnic.psm` provides an 802.11b power-save-mode baseline.
"""

from repro.wnic.power import WAVELAN_2_4GHZ, PowerModel
from repro.wnic.states import Wnic, WnicState

__all__ = ["PowerModel", "WAVELAN_2_4GHZ", "Wnic", "WnicState"]
