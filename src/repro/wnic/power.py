"""WNIC power constants.

The paper simulates a 2.4 GHz WaveLAN DSSS card: 1319 mJ/s idle,
1425 mJ/s receiving, 1675 mJ/s transmitting, 177 mJ/s sleeping
(Stemm et al. 1996; Havinga 2000), and charges each sleep→idle
transition 2 ms of idle time (Krashinsky & Balakrishnan 2002).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Card power draw in watts (J/s) per mode, plus the wake penalty."""

    idle_w: float
    receive_w: float
    transmit_w: float
    sleep_w: float
    wake_penalty_s: float = 0.002  # charged at idle power per wake

    def __post_init__(self) -> None:
        if min(self.idle_w, self.receive_w, self.transmit_w, self.sleep_w) <= 0:
            raise ConfigurationError("power draws must be positive")
        if self.sleep_w >= self.idle_w:
            raise ConfigurationError("sleep power must be below idle power")
        if self.wake_penalty_s < 0:
            raise ConfigurationError("wake penalty cannot be negative")

    @property
    def wake_penalty_j(self) -> float:
        """Energy charged per sleep→idle transition."""
        return self.wake_penalty_s * self.idle_w

    def energy(
        self,
        sleep_s: float,
        idle_s: float,
        receive_s: float,
        transmit_s: float,
        wake_count: int = 0,
    ) -> float:
        """Total energy in joules for the given mode residencies."""
        return (
            sleep_s * self.sleep_w
            + idle_s * self.idle_w
            + receive_s * self.receive_w
            + transmit_s * self.transmit_w
            + wake_count * self.wake_penalty_j
        )


#: The card the paper simulates (values quoted in mJ/s → watts).
WAVELAN_2_4GHZ = PowerModel(
    idle_w=1.319,
    receive_w=1.425,
    transmit_w=1.675,
    sleep_w=0.177,
    wake_penalty_s=0.002,
)
