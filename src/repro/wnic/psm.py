"""Simplified 802.11b power-save mode (PSM) — a related-work baseline.

The paper argues (§2, citing Chandra & Vahdat) that 802.11b PSM "is not
a good match for multimedia": the AP buffers frames for dozing stations
and announces them in a beacon's traffic-indication map (TIM) every
~100 ms, so a station streaming media ends up awake almost continuously
while still paying the beacon wake-ups. This module implements enough
of PSM to reproduce that comparison:

* :class:`PsmAccessPoint` — buffers downlink frames for registered
  dozing stations and flushes them right after each beacon, flagging
  the last frame per station with ``psm_more=False``;
* :class:`PsmClient` — wakes for every beacon, stays awake while the
  TIM lists it, sleeps otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.net.access_point import AccessPoint
from repro.net.addr import Endpoint
from repro.net.node import Interface, Node
from repro.net.packet import Packet
from repro.net.udp import UdpSocket
from repro.sim.core import Simulator
from repro.wnic.states import Wnic

#: UDP port beacons are broadcast on.
BEACON_PORT = 1000
#: Default beacon interval (~100 ms, the 802.11 default of 102.4 ms).
DEFAULT_BEACON_INTERVAL_S = 0.1
#: Beacon frame payload bytes.
BEACON_SIZE = 60


class PsmAccessPoint(AccessPoint):
    """An AP that implements PSM frame buffering and TIM beacons."""

    def __init__(
        self,
        *args,
        beacon_interval_s: float = DEFAULT_BEACON_INTERVAL_S,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.beacon_interval_s = beacon_interval_s
        self._psm_stations: dict[str, Wnic] = {}
        self._buffers: dict[str, deque[Packet]] = {}
        self._beacon_socket = UdpSocket(self, BEACON_PORT)
        self.beacons_sent = 0
        self.frames_buffered = 0
        self.sim.process(self._beacon_loop())

    def register_psm_station(self, ip: str, wnic: Wnic) -> None:
        """Declare that station ``ip`` uses PSM with the given card."""
        self._psm_stations[ip] = wnic
        self._buffers[ip] = deque()

    def forward(self, in_iface: Interface, packet: Packet) -> None:
        """Buffer downlink frames for dozing PSM stations."""
        if in_iface is self.wired:
            wnic = self._psm_stations.get(packet.dst.ip)
            if wnic is not None and not wnic.is_awake:
                self.frames_buffered += 1
                self._buffers[packet.dst.ip].append(packet)
                self.obs.inc("psm.frames_buffered", station=packet.dst.ip)
                return
        super().forward(in_iface, packet)

    def _beacon_loop(self):
        while True:
            yield self.sim.timeout(self.beacon_interval_s)
            tim = sorted(ip for ip, buf in self._buffers.items() if buf)
            self._beacon_socket.broadcast(
                BEACON_SIZE, BEACON_PORT, meta={"psm_beacon": True, "tim": tim}
            )
            self.beacons_sent += 1
            self.obs.event(
                self.sim.now, "psm.beacon", ap=self.name, tim=len(tim)
            )
            self.obs.inc("psm.beacons", ap=self.name)
            for ip in tim:
                self._flush_station(ip)

    def _flush_station(self, ip: str) -> None:
        buffer = self._buffers[ip]
        while buffer:
            packet = buffer.popleft()
            packet.meta["psm_more"] = bool(buffer)
            self.wireless.send(packet)


class PsmClient:
    """A PSM station daemon: doze, wake at beacons, drain buffered data."""

    def __init__(
        self,
        node: Node,
        wnic: Wnic,
        ap: PsmAccessPoint,
        wake_guard_s: float = 0.002,
        drain_grace_s: float = 0.05,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.wnic = wnic
        self.ap = ap
        self.wake_guard_s = wake_guard_s
        self.drain_grace_s = drain_grace_s
        node.interfaces["wl0"].rx_gate = wnic.can_receive
        self._beacon_socket = UdpSocket(node, BEACON_PORT, on_receive=self._on_beacon)
        self._wakeup = None
        self._last_data_at = 0.0
        self.beacons_heard = 0
        self.node.taps.insert(0, self._watch_data)
        ap.register_psm_station(node.ip, wnic)
        self.sim.process(self._run())

    def _watch_data(self, packet: Packet, iface) -> bool:
        if packet.dst.ip == self.node.ip:
            self._last_data_at = self.sim.now
            if packet.meta.get("psm_more") is False and self._wakeup is not None:
                wakeup, self._wakeup = self._wakeup, None
                if not wakeup.triggered:
                    wakeup.succeed("drained")
        return False

    def _on_beacon(self, packet: Packet) -> None:
        self.beacons_heard += 1
        listed = self.node.ip in packet.meta.get("tim", [])
        if not listed and self._wakeup is not None:
            wakeup, self._wakeup = self._wakeup, None
            if not wakeup.triggered:
                wakeup.succeed("not-listed")

    def _run(self):
        sim = self.sim
        interval = self.ap.beacon_interval_s
        self.wnic.sleep()
        beacon_index = 1
        while True:
            target = beacon_index * interval - self.wake_guard_s
            if target > sim.now:
                yield sim.timeout(target - sim.now)
            self.wnic.wake()
            self._wakeup = sim.event()
            # Wait to learn whether we are listed; fall back after a grace
            # period so a lost beacon cannot strand us awake forever.
            grace = sim.timeout(self.wake_guard_s + self.drain_grace_s)
            result = yield sim.any_of([self._wakeup, grace])
            while self._wakeup is not None and not self._wakeup.processed:
                # Listed in the TIM (or beacon lost): stay awake until the
                # buffer drains or traffic goes quiet.
                idle_for = sim.now - self._last_data_at
                if idle_for >= self.drain_grace_s:
                    break
                yield sim.timeout(self.drain_grace_s - idle_for)
            self._wakeup = None
            self.wnic.sleep()
            beacon_index = max(beacon_index + 1, int(sim.now / interval) + 1)
