"""The paper's contribution: a transparent, power-aware scheduling proxy.

Components map one-to-one onto the paper's §3:

* :mod:`~repro.core.schedule` — schedule messages, burst slots,
  scheduler rendezvous points (SRPs);
* :mod:`~repro.core.bandwidth_model` — the linear send-cost model built
  from microbenchmarks (§3.2.2 "Bandwidth Constraints");
* :mod:`~repro.core.queues` — per-client packet queues;
* :mod:`~repro.core.scheduler` — the dynamic scheduling policy with
  fixed (100/500 ms) and variable burst intervals;
* :mod:`~repro.core.static_schedule` — the static TDMA comparison
  policy (§4.3, Figure 7);
* :mod:`~repro.core.burster` — burst transmission with the
  last-packet TOS marking protocol (§3.2.2 "Packet Marking");
* :mod:`~repro.core.proxy` — the transparent proxy itself: packet
  interception, split TCP connections, address spoofing (Figure 3);
* :mod:`~repro.core.client` — the client daemon that transitions the
  WNIC around rendezvous points;
* :mod:`~repro.core.delay_comp` — delay-compensation algorithms
  (§3.3);
* :mod:`~repro.core.policy` — the slot-admission policy family
  (paper-dynamic, channel-aware, joint queue+channel threshold) and
  the discrete (queue, channel) model the offline DP optimum in
  :mod:`repro.energy.optimal` is defined over.
"""

from repro.core.bandwidth_model import LinearCostModel
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import (
    AdaptiveCompensator,
    FixedClockCompensator,
    OracleCompensator,
)
from repro.core.policy import (
    POLICY_NAMES,
    ChannelAwarePolicy,
    ClientView,
    JointThresholdPolicy,
    PaperDynamicPolicy,
    PolicyInstance,
    PolicyOutcome,
    SchedulingPolicy,
    execute_grants,
    make_policy,
    random_instance,
    rollout,
)
from repro.core.proxy import TransparentProxy
from repro.core.queues import ClientQueue, QueueEntry
from repro.core.schedule import SCHEDULE_PORT, BurstSlot, Schedule
from repro.core.scheduler import DynamicScheduler
from repro.core.static_schedule import StaticScheduler

__all__ = [
    "AdaptiveCompensator",
    "BurstSlot",
    "ChannelAwarePolicy",
    "ClientQueue",
    "ClientView",
    "DynamicScheduler",
    "FixedClockCompensator",
    "JointThresholdPolicy",
    "LinearCostModel",
    "OracleCompensator",
    "POLICY_NAMES",
    "PaperDynamicPolicy",
    "PolicyInstance",
    "PolicyOutcome",
    "PowerAwareClient",
    "QueueEntry",
    "SCHEDULE_PORT",
    "Schedule",
    "SchedulingPolicy",
    "StaticScheduler",
    "TransparentProxy",
    "execute_grants",
    "make_policy",
    "random_instance",
    "rollout",
]
