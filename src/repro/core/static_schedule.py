"""The static TDMA schedule (paper §4.3, "Comparison to static schedules").

Instead of broadcasting a fresh schedule every interval, the proxy
broadcasts one *permanent* layout: each client owns a fixed slot at a
fixed offset in every interval. Clients then never wake for schedule
messages — the savings the paper measures for identical-fidelity
streams — but the layout cannot adapt when fidelities differ.

For Figure 7 the layout additionally carves a fixed **TCP slot** out of
the head of every interval: all TCP-carrying clients must keep their
WNIC in high-power mode for the whole TCP slot (so TCP latency is
bounded), and the slot's size is a knob — the paper sweeps TCP weights
of roughly 10 %, 33 % and 56 % of the interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.core.bandwidth_model import LinearCostModel
from repro.core.txguard import TransmitWakeGuard
from repro.errors import SchedulingError
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.udp import UdpSocket
from repro.obs.recorder import Recorder
from repro.sim.core import Event
from repro.sim.trace import TraceRecorder
from repro.units import ms, us
from repro.wnic.states import Wnic

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.proxy import TransparentProxy

#: UDP port the static layout is announced on (distinct from the
#: dynamic SCHEDULE_PORT so one client implementation cannot confuse
#: the two).
STATIC_LAYOUT_PORT = 9798


@dataclass(frozen=True, slots=True)
class StaticSlot:
    """One client's permanent per-interval reservation."""

    client_ip: str
    offset: float  # from interval start
    duration: float


@dataclass(frozen=True, slots=True)
class StaticLayout:
    """The permanent schedule: interval, TCP slot, per-client UDP slots."""

    interval: float
    tcp_slot_s: float
    tcp_clients: tuple[str, ...]
    slots: tuple[StaticSlot, ...]
    epoch: float  # proxy time of interval 0's start

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SchedulingError(f"bad interval: {self.interval!r}")
        if not 0 <= self.tcp_slot_s < self.interval:
            raise SchedulingError("tcp slot must fit inside the interval")

    def slot_for(self, client_ip: str) -> Optional[StaticSlot]:
        """This client's permanent slot, or None."""
        for slot in self.slots:
            if slot.client_ip == client_ip:
                return slot
        return None

    def as_meta(self) -> dict:
        """Serialize into packet metadata (the DES wire format)."""
        return {
            "static_layout": {
                "interval": self.interval,
                "tcp_slot_s": self.tcp_slot_s,
                "tcp_clients": list(self.tcp_clients),
                "epoch": self.epoch,
                "slots": [
                    {
                        "client_ip": s.client_ip,
                        "offset": s.offset,
                        "duration": s.duration,
                    }
                    for s in self.slots
                ],
            }
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "StaticLayout":
        """Parse a layout out of packet metadata."""
        try:
            raw = meta["static_layout"]
            return cls(
                interval=raw["interval"],
                tcp_slot_s=raw["tcp_slot_s"],
                tcp_clients=tuple(raw["tcp_clients"]),
                epoch=raw["epoch"],
                slots=tuple(
                    StaticSlot(s["client_ip"], s["offset"], s["duration"])
                    for s in raw["slots"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise SchedulingError(f"malformed static layout: {exc}") from exc


def build_layout(
    client_ips: Sequence[str],
    interval_s: float,
    tcp_weight: float = 0.0,
    tcp_clients: Sequence[str] = (),
    guard_s: float = ms(2),
    slot_gap_s: float = us(500),
    epoch: float = 0.0,
) -> StaticLayout:
    """Equal per-client UDP slots after an optional leading TCP slot."""
    if not 0.0 <= tcp_weight < 1.0:
        raise SchedulingError(f"tcp_weight must be in [0,1): {tcp_weight!r}")
    tcp_slot_s = interval_s * tcp_weight
    udp_window = interval_s - tcp_slot_s - guard_s
    n = len(client_ips)
    if n == 0:
        raise SchedulingError("static layout needs at least one client")
    per_client = udp_window / n - slot_gap_s
    if per_client <= 0:
        raise SchedulingError("interval too small for the client count")
    slots = []
    cursor = tcp_slot_s + guard_s
    for ip in client_ips:
        slots.append(StaticSlot(client_ip=ip, offset=cursor, duration=per_client))
        cursor += per_client + slot_gap_s
    return StaticLayout(
        interval=interval_s,
        tcp_slot_s=tcp_slot_s,
        tcp_clients=tuple(tcp_clients),
        slots=tuple(slots),
        epoch=epoch,
    )


class StaticScheduler:
    """Proxy-side executor of a permanent TDMA layout."""

    def __init__(
        self,
        proxy: "TransparentProxy",
        cost_model: LinearCostModel,
        layout: StaticLayout,
    ) -> None:
        self.proxy = proxy
        self.cost_model = cost_model
        self.layout = layout
        self._announce_socket = UdpSocket(proxy, STATIC_LAYOUT_PORT)
        self.intervals_run = 0

    def run(self) -> Iterator[Event]:
        """The proxy-side process: announce once, then serve every interval."""
        sim = self.proxy.sim
        layout = self.layout
        payload = 24 + 16 * len(layout.slots)
        self._announce_socket.broadcast(
            payload, STATIC_LAYOUT_PORT, meta=layout.as_meta()
        )
        # Interval 0 starts one interval after the announcement.
        epoch = sim.now + layout.interval
        self.layout = StaticLayout(
            interval=layout.interval,
            tcp_slot_s=layout.tcp_slot_s,
            tcp_clients=layout.tcp_clients,
            slots=layout.slots,
            epoch=epoch,
        )
        # Re-announce with the fixed epoch so clients can anchor to it.
        self._announce_socket.broadcast(
            payload, STATIC_LAYOUT_PORT, meta=self.layout.as_meta()
        )
        while True:
            start = epoch + self.intervals_run * layout.interval
            if start > sim.now:
                yield sim.timeout(start - sim.now)
            self.proxy.obs.span(
                start, start + layout.interval, "interval", "proxy",
                index=self.intervals_run, static=True,
            )
            yield from self._serve_interval(start)
            self.intervals_run += 1

    def _serve_interval(self, start: float):
        sim = self.proxy.sim
        layout = self.layout
        if layout.tcp_slot_s > 0:
            budget = self.cost_model.bytes_for(layout.tcp_slot_s)
            for ip in layout.tcp_clients:
                if budget <= 0:
                    break
                self.proxy.kick_stalled(
                    ip, stall_threshold_s=1.5 * layout.interval
                )
                queue = self.proxy.queue_for(ip)
                entries = queue.pop_up_to(budget, kind="tcp")
                for entry in entries:
                    conn = entry.connection
                    if conn.state == "CLOSED" or conn.fin_offset is not None:
                        continue
                    room = max(
                        0, conn.send_window - conn.bytes_in_flight - conn.unsent_bytes
                    )
                    chunk = min(entry.nbytes, room)
                    if chunk > 0:
                        self.proxy.burster.controller_for(conn).hand_bytes(
                            chunk, mark_last=False
                        )
                        budget -= chunk
                    if chunk < entry.nbytes:
                        from repro.core.queues import QueueEntry

                        queue.push_front(
                            QueueEntry(
                                "tcp", entry.nbytes - chunk, connection=conn
                            )
                        )
                self.proxy.finish_drained_splits(ip)
        for slot in layout.slots:
            at = start + slot.offset
            if at > sim.now:
                yield sim.timeout(at - sim.now)
            self.proxy.obs.span(
                at, at + slot.duration, "slot",
                f"client {slot.client_ip}", static=True,
            )
            queue = self.proxy.queue_for(slot.client_ip)
            allotment = self.cost_model.bytes_for(slot.duration)
            entries = queue.pop_up_to(allotment, kind="udp")
            for index, entry in enumerate(entries):
                if index == len(entries) - 1:
                    entry.packet.tos_marked = True
                self.proxy.send_packet(entry.packet)


class StaticClient:
    """Client daemon for the static layout: no schedule wake-ups."""

    def __init__(
        self,
        node: Node,
        wnic: Wnic,
        early_s: float = ms(6),
        min_sleep_gap_s: float = ms(4),
        slot_grace_s: float = ms(10),
        trace: Optional[TraceRecorder] = None,
        wireless_iface: str = "wl0",
        obs: Optional[Recorder] = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.wnic = wnic
        self.early_s = early_s
        self.min_sleep_gap_s = min_sleep_gap_s
        self.slot_grace_s = slot_grace_s
        if obs is not None:
            self.obs = obs
        elif trace is not None:
            self.obs = Recorder.wrap(trace)
        else:
            self.obs = node.obs
        self.trace = self.obs.trace if trace is None else trace
        node.interfaces[wireless_iface].rx_gate = wnic.can_receive
        self._tx_guard = TransmitWakeGuard(node, wnic)
        self._layout: Optional[StaticLayout] = None
        self._layout_anchor = 0.0
        self._mark_waiter = None
        self._slot_first_frame: Optional[float] = None
        #: If no data shows up this long into the slot, the slot is
        #: empty this interval and the client sleeps early. (With a
        #: static schedule the proxy sends a client's burst at the very
        #: start of its slot, so a no-show is decisive quickly.)
        self.noshow_grace_s = ms(8)
        node.taps.insert(0, self._watch_frames)
        UdpSocket(node, STATIC_LAYOUT_PORT, on_receive=self._on_layout)
        self.bursts_received = 0
        self.early_wait_s = 0.0
        self.sim.process(self._run())

    def _watch_frames(self, packet: Packet, iface) -> bool:
        if packet.dst.ip != self.node.ip:
            return False
        if packet.payload_size > 0 and self._slot_first_frame is None:
            self._slot_first_frame = self.sim.now
        if packet.tos_marked and self._mark_waiter is not None:
            waiter, self._mark_waiter = self._mark_waiter, None
            if not waiter.triggered:
                waiter.succeed(True)
        return False

    def _on_layout(self, packet: Packet) -> None:
        self._layout = StaticLayout.from_meta(packet.meta)
        # Anchor on arrival: epoch is a proxy timestamp, but the offset
        # between broadcast time and arrival is small and constant-ish.
        self._layout_anchor = self._layout.epoch

    def _run(self):
        sim = self.sim
        self.wnic.wake()
        while self._layout is None or self._layout.epoch == 0.0:
            yield sim.timeout(0.005)
        layout = self._layout
        my_slot = layout.slot_for(self.node.ip)
        in_tcp = self.node.ip in layout.tcp_clients
        interval_index = 0
        while True:
            start = self._layout_anchor + interval_index * layout.interval
            events: list[tuple[float, float, bool]] = []
            if in_tcp and layout.tcp_slot_s > 0:
                events.append((start, start + layout.tcp_slot_s, False))
            if my_slot is not None:
                slot_start = start + my_slot.offset
                events.append(
                    (slot_start, slot_start + my_slot.duration, True)
                )
            events.sort()
            for wake_target, end_target, udp_slot in events:
                yield from self._sleep_until(wake_target - self.early_s)
                wake_time = sim.now
                if udp_slot:
                    self._slot_first_frame = None
                    got = yield from self._await_mark(
                        end_target + self.slot_grace_s,
                        noshow_deadline=wake_target + self.noshow_grace_s,
                    )
                    if got:
                        self.bursts_received += 1
                else:
                    # TCP slot: awake for the whole reservation.
                    if end_target > sim.now:
                        yield sim.timeout(end_target - sim.now)
                self.early_wait_s += max(0.0, min(
                    sim.now, wake_target
                ) - wake_time)
            interval_index += 1
            next_start = self._layout_anchor + interval_index * layout.interval
            if not events:
                yield from self._sleep_until(next_start - self.early_s)

    def _await_mark(self, deadline: float, noshow_deadline: Optional[float] = None):
        if deadline <= self.sim.now:
            return False
        waiter = self.sim.event()
        self._mark_waiter = waiter
        if noshow_deadline is not None and noshow_deadline < deadline:
            # Phase 1: give the burst a short window to show up at all.
            if noshow_deadline > self.sim.now:
                first = self.sim.timeout(noshow_deadline - self.sim.now)
                yield self.sim.any_of([waiter, first])
                if waiter.processed:
                    return bool(waiter.value)
            if self._slot_first_frame is None:
                self._mark_waiter = None
                return False  # empty slot this interval: sleep early
        timeout = self.sim.timeout(deadline - self.sim.now)
        yield self.sim.any_of([waiter, timeout])
        if waiter.processed:
            return bool(waiter.value)
        self._mark_waiter = None
        return False

    def _sleep_until(self, wake_at: float):
        yield from self._tx_guard.sleep_until(wake_at, self.min_sleep_gap_s)
