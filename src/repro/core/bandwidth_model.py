"""The linear send-cost model (paper §3.2.2, "Bandwidth Constraints").

The proxy can push packets to the AP far faster than the AP can put
them on the air, so it must estimate how much data actually fits in a
client's reception window. The paper "executed a set of microbenchmarks
to create a model of send overhead and latency on our wireless network
[and] developed a linear cost function based on the message size".

:class:`LinearCostModel` is that function: ``cost(size) = a + b*size``
per packet. :func:`calibrate` reproduces the microbenchmark — it times
back-to-back sends of two packet sizes across a live medium and fits
the two coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.medium import WirelessMedium
from repro.net.packet import IP_HEADER, LINK_HEADER, MSS, TCP_HEADER, UDP_HEADER


@dataclass(frozen=True, slots=True)
class LinearCostModel:
    """Per-packet airtime estimate ``overhead_s + size_bytes * per_byte_s``.

    ``size_bytes`` is the application payload; header bytes are folded
    into ``overhead_s`` during calibration.
    """

    overhead_s: float
    per_byte_s: float

    def __post_init__(self) -> None:
        if self.overhead_s < 0 or self.per_byte_s <= 0:
            raise ConfigurationError(
                f"invalid cost model: a={self.overhead_s}, b={self.per_byte_s}"
            )

    def packet_cost(self, payload_bytes: int) -> float:
        """Estimated airtime of one packet with ``payload_bytes`` payload."""
        return self.overhead_s + payload_bytes * self.per_byte_s

    def burst_cost(self, payload_bytes: int, mss: int = MSS) -> float:
        """Estimated airtime of ``payload_bytes`` sent as MSS-sized packets."""
        if payload_bytes <= 0:
            return 0.0
        full, rest = divmod(payload_bytes, mss)
        cost = full * self.packet_cost(mss)
        if rest:
            cost += self.packet_cost(rest)
        return cost

    def bytes_for(self, duration_s: float, mss: int = MSS) -> int:
        """Largest payload byte count whose burst fits in ``duration_s``."""
        if duration_s <= 0:
            return 0
        per_full_packet = self.packet_cost(mss)
        full = int(duration_s / per_full_packet)
        remaining = duration_s - full * per_full_packet
        partial = 0
        if remaining > self.overhead_s:
            partial = min(mss, int((remaining - self.overhead_s) / self.per_byte_s))
        return full * mss + partial

    def effective_rate_bps(self, mss: int = MSS) -> float:
        """Goodput implied by the model for MSS-sized packets."""
        return mss * 8.0 / self.packet_cost(mss)


def calibrate(
    medium: WirelessMedium,
    small_payload: int = 64,
    large_payload: int = 1400,
    transport_header: int = UDP_HEADER,
) -> LinearCostModel:
    """Fit the linear model from the medium's airtime at two sizes.

    This is the closed-form equivalent of the paper's microbenchmark:
    send trains of small and large packets, divide elapsed time by
    count, and solve the 2x2 system. We also fold in the mean
    contention backoff so the estimate errs conservative (the paper's
    concern was sending too *much*, which steals later clients' slots).
    """
    if small_payload >= large_payload:
        raise ConfigurationError("small_payload must be below large_payload")
    header = LINK_HEADER + IP_HEADER + transport_header
    mean_backoff = medium.max_backoff_s / 2.0
    cost_small = medium.airtime(header + small_payload) + mean_backoff
    cost_large = medium.airtime(header + large_payload) + mean_backoff
    per_byte = (cost_large - cost_small) / (large_payload - small_payload)
    overhead = cost_small - small_payload * per_byte
    return LinearCostModel(overhead_s=overhead, per_byte_s=per_byte)


def calibrate_tcp(medium: WirelessMedium, **kwargs: int) -> LinearCostModel:
    """Calibration variant charging TCP header overhead."""
    return calibrate(medium, transport_header=TCP_HEADER, **kwargs)
