"""Scheduling-policy family: queue-aware, channel-aware, and joint.

The paper's dynamic scheduler grants a burst slot to every backlogged
client each interval — implicitly assuming a single stable channel.
Over a time-varying channel that wastes both airtime and client energy:
frames burst at a client in a fade are lost and retransmitted later.
Following the delay-optimal scheduling literature for multi-state
channels (arXiv 1606.00952, 1807.10128), admission must condition on
*both* queue backlog and channel state; the optimal policies there have
a threshold structure — serve a bad-channel client only once its
backlog passes a level that makes waiting costlier than the bad-state
transmission.

This module defines the :class:`SchedulingPolicy` protocol the
:class:`~repro.core.scheduler.DynamicScheduler` consults per interval,
three online policies (the paper's queue-only policy, a channel-aware
deferral policy, and the joint backlog/channel threshold policy), and a
small discrete slotted model (:class:`PolicyInstance`,
:func:`rollout`, :func:`execute_grants`) shared with the offline
dynamic-programming oracle in :mod:`repro.energy.optimal` — the
differential test harness compares every online policy against that
oracle on the *same* cost accounting.

Policies are pure: :meth:`SchedulingPolicy.admit` maps a snapshot of
client views to an admitted-key tuple and keeps no state. Callers (the
scheduler, or :func:`rollout`) own the deferral counters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError, SchedulingError

#: The online policies selectable via ``--policy`` / make_policy().
POLICY_NAMES = ("dynamic", "channel", "joint")


@dataclass(frozen=True, slots=True)
class ClientView:
    """One client's scheduling-relevant state at an admission point."""

    key: str  #: stable identity (client IP in the simulator)
    backlog: int  #: bytes (scheduler) or packets (discrete model)
    channel_good: bool = True  #: current channel state, good/bad
    deferred: int = 0  #: consecutive admission points skipped by policy

    def __post_init__(self) -> None:
        if self.backlog < 0:
            raise SchedulingError(f"negative backlog: {self.backlog!r}")
        if self.deferred < 0:
            raise SchedulingError(f"negative deferral count: {self.deferred!r}")


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Admission policy consulted once per scheduling interval."""

    @property
    def name(self) -> str: ...

    def admit(self, views: Sequence[ClientView]) -> tuple[str, ...]:
        """Keys admitted this interval, highest service priority first.

        Only backlogged clients may appear; a key left out is deferred
        to a later interval. Must be pure and deterministic.
        """
        ...


def _by_pressure(views: Sequence[ClientView]) -> list[ClientView]:
    """Deterministic priority order: deepest backlog first, key ties."""
    return sorted(views, key=lambda view: (-view.backlog, view.key))


@dataclass(frozen=True, slots=True)
class PaperDynamicPolicy:
    """The paper's §3.2.1 policy: every backlogged client is admitted.

    Channel state is ignored — this is the baseline the channel-aware
    variants are measured against, and the default that keeps existing
    experiments byte-identical.
    """

    @property
    def name(self) -> str:
        return "dynamic"

    def admit(self, views: Sequence[ClientView]) -> tuple[str, ...]:
        return tuple(
            view.key for view in _by_pressure(views) if view.backlog > 0
        )


@dataclass(frozen=True, slots=True)
class ChannelAwarePolicy:
    """Defer bad-channel clients, but never starve them.

    A backlogged client in the bad state is skipped for up to
    ``max_defer`` consecutive admission points (its frames would mostly
    die on the air); once overdue it is admitted regardless, bounding
    the added delay to ``max_defer`` intervals.
    """

    max_defer: int = 2

    def __post_init__(self) -> None:
        if self.max_defer < 0:
            raise SchedulingError(
                f"max_defer must be non-negative: {self.max_defer!r}"
            )

    @property
    def name(self) -> str:
        return "channel"

    def admit(self, views: Sequence[ClientView]) -> tuple[str, ...]:
        backlogged = [view for view in views if view.backlog > 0]
        good = [view for view in backlogged if view.channel_good]
        overdue = [
            view
            for view in backlogged
            if not view.channel_good and view.deferred >= self.max_defer
        ]
        return tuple(
            view.key for view in _by_pressure(good) + _by_pressure(overdue)
        )


@dataclass(frozen=True, slots=True)
class JointThresholdPolicy:
    """Joint queue+channel policy with the 1807.10128 threshold form.

    Good-channel clients are always admitted. A bad-channel client is
    admitted only once its backlog reaches ``threshold`` — the point
    where the accumulating holding (delay) cost outweighs the extra
    cost of transmitting through the bad state.
    """

    threshold: int = 1

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise SchedulingError(
                f"threshold must be non-negative: {self.threshold!r}"
            )

    @property
    def name(self) -> str:
        return "joint"

    def admit(self, views: Sequence[ClientView]) -> tuple[str, ...]:
        backlogged = [view for view in views if view.backlog > 0]
        good = [view for view in backlogged if view.channel_good]
        heavy = [
            view
            for view in backlogged
            if not view.channel_good and view.backlog >= self.threshold
        ]
        return tuple(
            view.key for view in _by_pressure(good) + _by_pressure(heavy)
        )


def make_policy(
    name: str,
    threshold: int = 1,
    max_defer: int = 2,
) -> SchedulingPolicy:
    """Policy factory behind ``--policy``/``ExperimentConfig.policy``.

    ``threshold`` parameterizes the joint policy (bytes in the
    simulator, packets in the discrete model); ``max_defer`` the
    channel-aware one. Unused parameters are ignored.
    """
    if name == "dynamic":
        return PaperDynamicPolicy()
    if name == "channel":
        return ChannelAwarePolicy(max_defer=max_defer)
    if name == "joint":
        return JointThresholdPolicy(threshold=threshold)
    raise ConfigurationError(
        f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}"
    )


# ---------------------------------------------------------------------------
# Discrete slotted model (shared with the DP oracle)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyInstance:
    """A small finite-horizon scheduling instance over a known channel.

    Time is slotted; at most one client is served per slot, delivering
    one packet at a channel-state-dependent energy cost. Every packet
    still queued after service pays ``hold_cost`` per slot (the delay
    proxy), and packets left at the horizon pay ``unserved_penalty``.
    The channel realization is part of the instance, so the offline DP
    optimum over it is a true clairvoyant lower bound for every online
    policy evaluated on the same instance.
    """

    arrivals: tuple[tuple[int, ...], ...]  #: [slot][client] packet arrivals
    channel_good: tuple[tuple[bool, ...], ...]  #: [slot][client] state
    tx_cost_good: float = 1.0
    tx_cost_bad: float = 4.0
    hold_cost: float = 1.0
    unserved_penalty: float = 8.0

    def __post_init__(self) -> None:
        if not self.arrivals:
            raise ConfigurationError("instance needs at least one slot")
        if len(self.channel_good) != len(self.arrivals):
            raise ConfigurationError(
                "arrivals and channel_good disagree on the horizon"
            )
        width = len(self.arrivals[0])
        if width == 0:
            raise ConfigurationError("instance needs at least one client")
        for slot, (arr, chan) in enumerate(
            zip(self.arrivals, self.channel_good)
        ):
            if len(arr) != width or len(chan) != width:
                raise ConfigurationError(
                    f"slot {slot}: ragged arrivals/channel rows"
                )
            for count in arr:
                if count < 0:
                    raise ConfigurationError(
                        f"slot {slot}: negative arrival count {count!r}"
                    )
        for label, value in (
            ("tx_cost_good", self.tx_cost_good),
            ("tx_cost_bad", self.tx_cost_bad),
            ("hold_cost", self.hold_cost),
            ("unserved_penalty", self.unserved_penalty),
        ):
            if value < 0:
                raise ConfigurationError(f"{label} must be non-negative")

    @property
    def horizon(self) -> int:
        return len(self.arrivals)

    @property
    def n_clients(self) -> int:
        return len(self.arrivals[0])

    def tx_cost(self, slot: int, client: int) -> float:
        """Energy cost of serving ``client`` in ``slot``."""
        return (
            self.tx_cost_good
            if self.channel_good[slot][client]
            else self.tx_cost_bad
        )


@dataclass(frozen=True)
class PolicyOutcome:
    """The fully-accounted result of one grant sequence."""

    grants: tuple[Optional[int], ...]
    total_cost: float
    energy_cost: float
    holding_cost: float
    penalty_cost: float
    served: int
    arrived: int
    mean_delay_slots: float


def execute_grants(
    instance: PolicyInstance, grants: Sequence[Optional[int]]
) -> PolicyOutcome:
    """Account one grant-per-slot sequence against an instance.

    This is the single cost model shared by the heuristic rollouts and
    the DP oracle, so differential comparisons can never drift apart on
    accounting. A grant to an empty queue (or out of range) is a bug in
    the caller and raises.
    """
    if len(grants) != instance.horizon:
        raise SchedulingError(
            f"expected {instance.horizon} grants, got {len(grants)}"
        )
    n = instance.n_clients
    queues = [0] * n
    waiting: list[deque[int]] = [deque() for _ in range(n)]
    energy = 0.0
    holding = 0.0
    served = 0
    arrived = 0
    delay_total = 0
    for slot in range(instance.horizon):
        for client, count in enumerate(instance.arrivals[slot]):
            queues[client] += count
            arrived += count
            for _ in range(count):
                waiting[client].append(slot)
        grant = grants[slot]
        if grant is not None:
            if grant < 0 or grant >= n:
                raise SchedulingError(f"slot {slot}: grant {grant!r} out of range")
            if queues[grant] == 0:
                raise SchedulingError(
                    f"slot {slot}: grant to client {grant} with empty queue"
                )
            queues[grant] -= 1
            energy += instance.tx_cost(slot, grant)
            served += 1
            # Waited from arrival to (and including) the service slot.
            delay_total += slot - waiting[grant].popleft() + 1
        holding += instance.hold_cost * sum(queues)
    leftover = sum(queues)
    penalty = instance.unserved_penalty * leftover
    for client in range(n):
        for arrival_slot in waiting[client]:
            delay_total += instance.horizon - arrival_slot
    mean_delay = delay_total / arrived if arrived else 0.0
    return PolicyOutcome(
        grants=tuple(grants),
        total_cost=energy + holding + penalty,
        energy_cost=energy,
        holding_cost=holding,
        penalty_cost=penalty,
        served=served,
        arrived=arrived,
        mean_delay_slots=mean_delay,
    )


def rollout(
    instance: PolicyInstance, policy: SchedulingPolicy
) -> PolicyOutcome:
    """Run an online policy over an instance slot by slot.

    Per slot the policy sees each client's current backlog, the
    *current* channel state (online policies are not clairvoyant — the
    future realization stays hidden), and its deferral count; the
    highest-priority admitted client is served. Deferral counts policy
    exclusions only: a client admitted but outprioritized keeps its
    counter at zero.
    """
    n = instance.n_clients
    queues = [0] * n
    deferred = [0] * n
    grants: list[Optional[int]] = []
    for slot in range(instance.horizon):
        for client, count in enumerate(instance.arrivals[slot]):
            queues[client] += count
        views = [
            ClientView(
                key=str(client),
                backlog=queues[client],
                channel_good=instance.channel_good[slot][client],
                deferred=deferred[client],
            )
            for client in range(n)
            if queues[client] > 0
        ]
        order = policy.admit(views)
        admitted = set(order)
        grant: Optional[int] = None
        for key in order:
            client = int(key)
            if queues[client] > 0:
                grant = client
                break
        for client in range(n):
            if queues[client] > 0 and str(client) not in admitted:
                deferred[client] += 1
            else:
                deferred[client] = 0
        if grant is not None:
            queues[grant] -= 1
        grants.append(grant)
    return execute_grants(instance, grants)


def random_instance(
    seed: int,
    n_clients: int = 3,
    horizon: int = 8,
    p_arrival: float = 0.4,
    max_batch: int = 2,
    p_good_bad: float = 0.3,
    p_bad_good: float = 0.5,
    tx_cost_good: float = 1.0,
    tx_cost_bad: float = 4.0,
    hold_cost: float = 1.0,
    unserved_penalty: float = 8.0,
) -> PolicyInstance:
    """A seeded random instance (Bernoulli arrivals, G-E channel).

    Draws come from a named :class:`~repro.sim.random.RngStreams`
    stream, so an instance is a pure function of its parameters — the
    differential suite and the Pareto model rows replay byte-identical.
    """
    from repro.sim.random import RngStreams

    if n_clients < 1 or horizon < 1:
        raise ConfigurationError("instance needs >= 1 client and >= 1 slot")
    rng = RngStreams(seed=seed).get("policy-instance")
    arrivals: list[tuple[int, ...]] = []
    channel: list[tuple[bool, ...]] = []
    good = [True] * n_clients
    for _ in range(horizon):
        row: list[int] = []
        for _client in range(n_clients):
            count = 0
            if rng.random() < p_arrival:
                count = 1 + int(rng.integers(0, max_batch))
            row.append(count)
        state_row: list[bool] = []
        for client in range(n_clients):
            flip = rng.random()
            if good[client]:
                if flip < p_good_bad:
                    good[client] = False
            elif flip < p_bad_good:
                good[client] = True
            state_row.append(good[client])
        arrivals.append(tuple(row))
        channel.append(tuple(state_row))
    return PolicyInstance(
        arrivals=tuple(arrivals),
        channel_good=tuple(channel),
        tx_cost_good=tx_cost_good,
        tx_cost_bad=tx_cost_bad,
        hold_cost=hold_cost,
        unserved_penalty=unserved_penalty,
    )
