"""The dynamic scheduling policy (paper §3.2.1).

At every SRP the proxy snapshots all client queues, builds a schedule
(variable-sized or fixed-sized), broadcasts it, and bursts each client
in turn at its rendezvous point:

* **fixed interval** (100 ms / 500 ms in the paper): each client gets a
  share of the interval *proportional to its queue depth*; data that
  does not fit waits for the next interval;
* **variable interval**: the schedule is sized so every client can
  drain its queue, clamped to [min_interval, max_interval]; when the
  maximum clamps it, allotments degrade to proportional shares.

The schedule-reuse extension (paper §5 future work) can be enabled with
``reuse_schedules=True``: when two consecutive schedules would have the
same relative layout, the proxy broadcasts the first with
``repeats_next=True``, skips the next broadcast entirely, and replays
the same layout — saving every client one schedule wake-up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.bandwidth_model import LinearCostModel
from repro.core.policy import ClientView, PaperDynamicPolicy, SchedulingPolicy
from repro.core.schedule import BurstSlot, Schedule
from repro.errors import SchedulingError
from repro.obs.metrics import BYTES_BUCKETS, RATIO_BUCKETS, SECONDS_BUCKETS
from repro.sim.core import Event
from repro.units import ms, us

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.proxy import TransparentProxy

#: Gap between consecutive burst slots.
DEFAULT_SLOT_GAP_S = us(500)
#: Time reserved between the schedule broadcast and the first slot.
DEFAULT_SCHEDULE_GUARD_S = ms(1.5)


class DynamicScheduler:
    """Builds and executes per-interval schedules on the proxy."""

    def __init__(
        self,
        proxy: "TransparentProxy",
        cost_model: LinearCostModel,
        interval_s: Optional[float] = None,
        min_interval_s: float = ms(100),
        max_interval_s: float = ms(500),
        slot_gap_s: float = DEFAULT_SLOT_GAP_S,
        schedule_guard_s: float = DEFAULT_SCHEDULE_GUARD_S,
        reuse_schedules: bool = False,
        silence_timeout_s: Optional[float] = None,
        policy: Optional[SchedulingPolicy] = None,
    ) -> None:
        """Args:
        proxy: owning proxy (supplies queues, burster and the socket).
        cost_model: calibrated linear send-cost model.
        interval_s: fixed burst interval; None selects the variable
            policy bounded by ``min_interval_s``/``max_interval_s``.
        reuse_schedules: enable the §5 schedule-reuse extension.
        silence_timeout_s: reclaim the slot of a client whose uplink
            has been silent this long (None disables reclamation). A
            client that never transmitted anything is never judged
            silent — there is no baseline to decay from.
        policy: slot-admission policy (see :mod:`repro.core.policy`).
            Defaults to the paper's dynamic policy, which admits every
            backlogged client — byte-identical to the pre-policy
            scheduler.
        """
        if interval_s is not None and interval_s <= 0:
            raise SchedulingError(f"interval must be positive: {interval_s!r}")
        if min_interval_s <= 0 or max_interval_s < min_interval_s:
            raise SchedulingError(
                f"bad interval bounds: [{min_interval_s}, {max_interval_s}]"
            )
        if silence_timeout_s is not None and silence_timeout_s <= 0:
            raise SchedulingError(
                f"silence_timeout_s must be positive: {silence_timeout_s!r}"
            )
        self.proxy = proxy
        self.cost_model = cost_model
        self.interval_s = interval_s
        self.min_interval_s = min_interval_s
        self.max_interval_s = max_interval_s
        self.slot_gap_s = slot_gap_s
        self.schedule_guard_s = schedule_guard_s
        self.reuse_schedules = reuse_schedules
        self.silence_timeout_s = silence_timeout_s
        self.policy: SchedulingPolicy = (
            policy if policy is not None else PaperDynamicPolicy()
        )
        self.policy_grants = 0
        self.policy_defers = 0
        #: Consecutive intervals each backlogged client has been held
        #: back by the policy (cleared on admission or on drain).
        self._deferred: dict[str, int] = {}
        self.schedules_sent = 0
        self.schedules_reused = 0
        self.slots_reclaimed = 0
        self.slots_restored = 0
        self.seq = 0
        self._last_layout: Optional[tuple] = None
        self._silenced: set[str] = set()

    @property
    def is_variable(self) -> bool:
        """True when running the variable-interval policy."""
        return self.interval_s is None

    # -- schedule construction ------------------------------------------------

    def client_burst_cost(self, udp_bytes: int, tcp_bytes: int) -> float:
        """Channel time of one client's burst, ACK echoes included.

        TCP data on the half-duplex cell is answered by uplink ACKs —
        with delayed ACKs, about one per two segments — which occupy
        the same medium the next slot needs. The paper's microbenchmark
        calibration measured real transfers and thus absorbed this; we
        account for it explicitly.
        """
        cost = self.cost_model.burst_cost(udp_bytes)
        if tcp_bytes > 0:
            from repro.net.packet import MSS

            cost += self.cost_model.burst_cost(tcp_bytes)
            segments = -(-tcp_bytes // MSS)
            acks = -(-segments // 2)  # delayed ACKs: one per two segments
            cost += acks * self.cost_model.packet_cost(0)
        return cost

    def _update_silenced(self) -> None:
        """Track which clients' uplinks went quiet (and came back).

        The proxy bridges every uplink packet, so ``proxy.last_uplink``
        is a passive liveness signal: a client whose radio died (or
        that left the cell) stops producing TCP ACKs and feedback
        reports. Its queue keeps its data, but its burst slot is
        reclaimed for live clients until it is heard again.
        """
        if self.silence_timeout_s is None:
            return
        now = self.proxy.sim.now
        for ip, last_heard in self.proxy.last_uplink.items():
            silent = (now - last_heard) > self.silence_timeout_s
            if silent and ip not in self._silenced:
                self._silenced.add(ip)
                self.slots_reclaimed += 1
                self.proxy.obs.event(
                    now, "scheduler.reclaim", client=ip,
                    silent_s=now - last_heard,
                )
                self.proxy.obs.inc("scheduler.slots_reclaimed", client=ip)
            elif not silent and ip in self._silenced:
                self._silenced.discard(ip)
                self.slots_restored += 1
                self.proxy.obs.event(now, "scheduler.restore", client=ip)
                self.proxy.obs.inc("scheduler.slots_restored", client=ip)

    def build_schedule(self, srp: float) -> Schedule:
        """Snapshot the queues and construct the schedule for one interval."""
        self._update_silenced()
        obs = self.proxy.obs
        # One backlog computation per client per interval: the observe
        # stream and the pending filter share it (this loop used to
        # compute each client's backlog three times, which at 1k+
        # clients dominated schedule construction).
        pending = []
        for ip, _queue in self.proxy.iter_queues():
            udp_bytes, tcp_bytes = self.proxy.scheduling_backlog_by_kind(ip)
            backlog = udp_bytes + tcp_bytes
            obs.observe(
                "scheduler.queue_bytes",
                backlog,
                buckets=BYTES_BUCKETS,
                client=ip,
            )
            if backlog > 0 and ip not in self._silenced:
                pending.append((ip, udp_bytes, tcp_bytes))
        pending = self._admit(pending)
        # Rotate the burst order every interval so no client always goes
        # first (the paper's example schedules reorder clients freely).
        # Schedule reuse needs a *stable* order, so reuse disables it.
        if pending and not self.reuse_schedules:
            rotation = self.seq % len(pending)
            pending = pending[rotation:] + pending[:rotation]

        schedule_cost = self.cost_model.packet_cost(
            24 + 16 * len(pending)  # schedule message payload
        )
        lead = schedule_cost + self.schedule_guard_s
        if self.is_variable:
            slots, interval = self._variable_layout(srp, lead, pending)
        else:
            slots, interval = self._fixed_layout(srp, lead, pending)
        return Schedule(
            seq=self.seq,
            srp=srp,
            next_srp=srp + interval,
            slots=tuple(slots),
        )

    def forget_client(self, client_ip: str) -> None:
        """Drop per-client scheduling state after a shard handoff.

        Reserved for :class:`repro.campus.handoff.HandoffCoordinator`
        (analysis rule CAM001). The cached reuse layout is invalidated
        so a repeated schedule can never re-grant the departed slot.
        """
        self._silenced.discard(client_ip)
        self._deferred.pop(client_ip, None)
        self._last_layout = None

    def _admit(
        self, pending: list[tuple[str, int, int]]
    ) -> list[tuple[str, int, int]]:
        """Apply the slot-admission policy, preserving ``pending`` order.

        The policy sees one :class:`ClientView` per backlogged client
        (channel state via the proxy's observability hook, deferral age
        from the scheduler's own bookkeeping) and returns the admitted
        keys; held-back clients keep their bytes queued and age their
        deferral counter. The default dynamic policy admits everyone,
        so the filter — and all its observability — is a no-op on
        legacy configurations.
        """
        if not pending:
            self._deferred = {}
            return pending
        views = [
            ClientView(
                key=ip,
                backlog=udp_b + tcp_b,
                channel_good=self.proxy.channel_state(ip),
                deferred=self._deferred.get(ip, 0),
            )
            for ip, udp_b, tcp_b in pending
        ]
        admitted_keys = set(self.policy.admit(views))
        admitted = [entry for entry in pending if entry[0] in admitted_keys]
        deferred: dict[str, int] = {}
        chatty = self.policy.name != "dynamic"
        now = self.proxy.sim.now
        for view in views:
            if view.key in admitted_keys:
                continue
            deferred[view.key] = view.deferred + 1
            self.policy_defers += 1
            if chatty:
                self.proxy.obs.event(
                    now, "scheduler.policy_defer",
                    client=view.key, backlog=view.backlog,
                    deferred=view.deferred + 1,
                    channel="good" if view.channel_good else "bad",
                )
                self.proxy.obs.inc(
                    "scheduler.policy_defers", client=view.key,
                )
        self._deferred = deferred
        self.policy_grants += len(admitted)
        if chatty and admitted:
            self.proxy.obs.inc("scheduler.policy_grants", len(admitted))
        return admitted

    def _variable_layout(self, srp, lead, pending):
        durations = {
            ip: self.client_burst_cost(udp_b, tcp_b)
            for ip, udp_b, tcp_b in pending
        }
        total = (
            lead
            + sum(durations.values())
            + self.slot_gap_s * len(pending)
        )
        # Overrun slack: if the bursts run past the advertised next SRP,
        # the late schedule broadcast defeats every client's arrival
        # anchor. Mirrors the fixed layout's 0.9 window factor.
        total *= 1.1
        interval = min(self.max_interval_s, max(self.min_interval_s, total))
        if total > interval:
            # Clamped at the maximum: degrade to proportional shares.
            return self._fixed_layout(srp, lead, pending, interval=interval)
        slots = []
        cursor = srp + lead
        for ip, udp_b, tcp_b in pending:
            slots.append(
                BurstSlot(
                    client_ip=ip,
                    rendezvous=cursor,
                    duration=durations[ip],
                    bytes_allotted=udp_b + tcp_b,
                )
            )
            cursor += durations[ip] + self.slot_gap_s
        return slots, interval

    def _fixed_layout(self, srp, lead, pending, interval=None):
        interval = interval if interval is not None else self.interval_s
        window = interval - lead - self.slot_gap_s * max(1, len(pending))
        # Safety factor: random backoff and AP forwarding make real
        # airtime exceed the estimate now and then; a slot that spills
        # past the SRP delays every later client's marked packet
        # (§3.2.2's "subsequent clients will not receive their data as
        # scheduled").
        window *= 0.9
        if window <= 0:
            raise SchedulingError(
                f"interval {interval}s cannot fit the schedule overhead"
            )
        costs = {
            ip: self.client_burst_cost(udp_b, tcp_b)
            for ip, udp_b, tcp_b in pending
        }
        total_cost = sum(costs.values())
        slots = []
        cursor = srp + lead
        for ip, udp_b, tcp_b in pending:
            nbytes = udp_b + tcp_b
            full_cost = costs[ip]
            share = window * full_cost / total_cost
            if full_cost <= share:
                allotted, duration = nbytes, full_cost
            else:
                # Scale the allotment down to what fits the share,
                # keeping this client's udp/tcp cost ratio.
                inflation = full_cost / max(
                    self.cost_model.burst_cost(nbytes), 1e-12
                )
                allotted = min(
                    nbytes, self.cost_model.bytes_for(share / inflation)
                )
                duration = full_cost * (allotted / nbytes) if nbytes else 0.0
            slots.append(
                BurstSlot(
                    client_ip=ip,
                    rendezvous=cursor,
                    duration=duration,
                    bytes_allotted=allotted,
                )
            )
            cursor += duration + self.slot_gap_s
        return slots, interval

    # -- execution ------------------------------------------------------------

    def run(self) -> Iterator[Event]:
        """The proxy-side scheduling process (a simulation generator)."""
        sim = self.proxy.sim
        planned_srp: Optional[float] = None
        while True:
            srp = sim.now
            if planned_srp is not None:
                self.proxy.obs.observe(
                    "scheduler.srp_lateness_s",
                    max(0.0, srp - planned_srp),
                    buckets=SECONDS_BUCKETS,
                )
            schedule = self.build_schedule(srp)
            repeat = False
            if self.reuse_schedules and not self.is_variable:
                layout = self._relative_layout(schedule)
                if layout == self._last_layout and schedule.slots:
                    schedule = Schedule(
                        seq=schedule.seq,
                        srp=schedule.srp,
                        next_srp=schedule.next_srp,
                        slots=schedule.slots,
                        repeats_next=True,
                    )
                    repeat = True
                self._last_layout = layout
            self.proxy.broadcast_schedule(schedule)
            self.schedules_sent += 1
            self.seq += 1
            self.proxy.obs.span(
                schedule.srp, schedule.next_srp, "interval", "proxy",
                seq=schedule.seq, slots=len(schedule.slots),
            )
            planned_srp = schedule.next_srp
            yield from self._execute_interval(schedule)
            if repeat:
                # Replay the same relative layout without a broadcast.
                self.schedules_reused += 1
                self.seq += 1
                shifted = self._shift_schedule(schedule, schedule.interval)
                self._last_layout = None  # force a fresh broadcast next
                self.proxy.obs.inc("scheduler.schedules_reused")
                self.proxy.obs.span(
                    shifted.srp, shifted.next_srp, "interval", "proxy",
                    seq=shifted.seq, slots=len(shifted.slots), reused=True,
                )
                planned_srp = shifted.next_srp
                yield from self._execute_interval(shifted)

    def _execute_interval(self, schedule: Schedule):
        sim = self.proxy.sim
        obs = self.proxy.obs
        for slot in schedule.slots:
            if slot.rendezvous > sim.now:
                yield sim.timeout(slot.rendezvous - sim.now)
            if slot.client_ip not in self.proxy.client_ips:
                # The client roamed to another shard after this schedule
                # was built: release the slot instead of bursting into
                # the cell it just left.
                continue
            obs.observe(
                "scheduler.slot_lateness_s",
                max(0.0, sim.now - slot.rendezvous),
                buckets=SECONDS_BUCKETS,
                client=slot.client_ip,
            )
            obs.span(
                slot.rendezvous, slot.rendezvous + slot.duration,
                "slot", f"client {slot.client_ip}",
                seq=schedule.seq, bytes_allotted=slot.bytes_allotted,
            )
            queue = self.proxy.queue_for(slot.client_ip)
            # Only kick when recovery is truly stuck: no progress for
            # well over one interval (ordinary ACK clocking pauses for
            # one interval between bursts by design).
            self.proxy.kick_stalled(
                slot.client_ip, stall_threshold_s=1.5 * schedule.interval
            )
            sent = self.proxy.burster.burst(queue, slot)
            if slot.bytes_allotted > 0:
                obs.observe(
                    "scheduler.slot_utilization",
                    min(1.0, sent / slot.bytes_allotted),
                    buckets=RATIO_BUCKETS,
                    client=slot.client_ip,
                )
            self.proxy.finish_drained_splits(slot.client_ip)
        if schedule.next_srp > sim.now:
            yield sim.timeout(schedule.next_srp - sim.now)

    @staticmethod
    def _relative_layout(schedule: Schedule) -> tuple:
        """Layout signature used to detect repeatable schedules.

        Clients only need the *offsets* to be stable, so durations and
        rendezvous points are quantized to 5 ms buckets: ordinary VBR
        wobble between intervals does not defeat reuse, while a client
        joining/leaving or a real shift in shares does.
        """
        return tuple(
            (
                slot.client_ip,
                round((slot.rendezvous - schedule.srp) / 0.005),
                round(slot.duration / 0.005),
            )
            for slot in schedule.slots
        )

    def _shift_schedule(self, schedule: Schedule, delta: float) -> Schedule:
        """The implicit repeated schedule: same offsets one interval
        later; allotments are re-derived from slot durations so the
        replay serves whatever is queued *now*."""
        return Schedule(
            seq=schedule.seq + 1,
            srp=schedule.srp + delta,
            next_srp=schedule.next_srp + delta,
            slots=tuple(
                BurstSlot(
                    client_ip=slot.client_ip,
                    rendezvous=slot.rendezvous + delta,
                    duration=slot.duration,
                    bytes_allotted=max(
                        slot.bytes_allotted,
                        self.cost_model.bytes_for(slot.duration),
                    ),
                )
                for slot in schedule.slots
            ),
        )
