"""Per-client packet queues (the paper's queuing-thread state).

The proxy buffers everything destined to each client between bursts.
Entries are either ready-made UDP packets (already spoofed with the
server's source address) or TCP byte credits bound to a client-side
connection — the proxy never copies payloads, so TCP data is tracked
as counts exactly like in :mod:`repro.net.tcp`.

Peak occupancy is tracked for the paper's §3.2.2 memory-requirement
claim (≤512 KB at full wireless bandwidth).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SchedulingError
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.tcp import TcpConnection


@dataclass(slots=True)
class QueueEntry:
    """One buffered unit: a UDP packet or a TCP byte credit."""

    kind: str  # "udp" | "tcp"
    nbytes: int
    packet: Optional[Packet] = None  # udp only
    connection: Optional["TcpConnection"] = None  # tcp only
    #: Simulated time the data entered the queue (0.0 when the queue
    #: has no clock). Splits and burster leftovers inherit it, so the
    #: delay accounting always sees the *first* enqueue time.
    enqueued_at: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("udp", "tcp"):
            raise SchedulingError(f"unknown queue entry kind: {self.kind!r}")
        if self.kind == "udp" and self.packet is None:
            raise SchedulingError("udp entry needs a packet")
        if self.kind == "tcp" and self.connection is None:
            raise SchedulingError("tcp entry needs a connection")
        if self.nbytes < 0:
            raise SchedulingError(f"negative entry size: {self.nbytes!r}")


class ClientQueue:
    """FIFO of pending downlink data for one client."""

    def __init__(
        self,
        client_ip: str,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Args:
        clock: optional simulated-time source. When given, entries are
            stamped on enqueue and the queue accumulates byte-weighted
            queueing delay on dequeue — the mean-delay axis of the
            policy Pareto front. Without a clock (unit tests, legacy
            callers) the accounting is disabled and behavior is
            unchanged.
        """
        self.client_ip = client_ip
        self.clock = clock
        self._entries: deque[QueueEntry] = deque()
        self.bytes_pending = 0
        self.peak_bytes = 0
        self.total_enqueued_bytes = 0
        self.has_udp = False
        self.has_tcp = False
        #: Per-kind slices of ``bytes_pending``, maintained
        #: incrementally so the scheduler's per-interval backlog split
        #: never scans the deque (O(clients), not O(entries)).
        self.udp_bytes_pending = 0
        self.tcp_bytes_pending = 0
        #: Byte-weighted queueing delay accumulated on dequeue.
        self.delay_byte_s = 0.0
        #: Bytes that have left through :meth:`pop_up_to`.
        self.dequeued_bytes = 0

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    @property
    def mean_queue_delay_s(self) -> float:
        """Mean per-byte time spent queued (0.0 before any dequeue).

        Coalesced TCP credits keep the *earliest* enqueue time, so for
        streams this slightly overestimates absolute delay; the metric
        is meant for comparisons across scheduling policies, which all
        share the same accounting.
        """
        if self.dequeued_bytes == 0:
            return 0.0
        return self.delay_byte_s / self.dequeued_bytes

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        """True when no entries are buffered."""
        return not self._entries

    def push_udp(self, packet: Packet) -> None:
        """Buffer a (spoofed) UDP packet for the next burst."""
        self._push(
            QueueEntry(
                "udp", packet.payload_size, packet=packet,
                enqueued_at=self._now(),
            )
        )
        self.udp_bytes_pending += packet.payload_size
        self.has_udp = True

    def push_tcp(self, connection: "TcpConnection", nbytes: int) -> None:
        """Buffer ``nbytes`` of TCP stream data for ``connection``.

        Consecutive credits for the same connection coalesce, mirroring
        how the paper's proxy reads a byte stream, not packets.
        """
        if nbytes <= 0:
            return
        self.has_tcp = True
        self.tcp_bytes_pending += nbytes
        if (
            self._entries
            and self._entries[-1].kind == "tcp"
            and self._entries[-1].connection is connection
        ):
            self._entries[-1].nbytes += nbytes
            self._account(nbytes)
            return
        self._push(
            QueueEntry(
                "tcp", nbytes, connection=connection,
                enqueued_at=self._now(),
            )
        )

    def _push(self, entry: QueueEntry) -> None:
        self._entries.append(entry)
        self._account(entry.nbytes)

    def _account(self, nbytes: int) -> None:
        self.bytes_pending += nbytes
        self.total_enqueued_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_pending)

    def pop_up_to(
        self, byte_budget: int, kind: Optional[str] = None
    ) -> list[QueueEntry]:
        """Dequeue entries totalling at most ``byte_budget`` bytes.

        UDP packets are atomic (never split); TCP credits split freely.
        A UDP packet larger than the remaining budget ends the burst
        (FIFO order is preserved — we do not scan past it).

        ``kind`` restricts popping to "udp" or "tcp" entries: the static
        scheduler (§4.3, Figure 7) serves TCP and UDP in separate slots.
        Filtering skips entries of the other kind without disturbing
        their relative order.
        """
        if byte_budget < 0:
            raise SchedulingError(f"negative byte budget: {byte_budget!r}")
        if kind is None:
            return self._pop_fifo(byte_budget)
        matching = [e for e in self._entries if e.kind == kind]
        others = [e for e in self._entries if e.kind != kind]
        self._entries = deque(matching)
        taken = self._pop_fifo(byte_budget)
        self._entries = deque(list(self._entries) + others)
        return taken

    def _pop_fifo(self, byte_budget: int) -> list[QueueEntry]:
        taken: list[QueueEntry] = []
        remaining = byte_budget
        now = self._now() if self.clock is not None else 0.0
        while self._entries and remaining > 0:
            head = self._entries[0]
            if head.kind == "udp":
                if head.nbytes > remaining and taken:
                    break
                if head.nbytes > remaining:
                    # A single oversized packet still goes (the slot was
                    # sized from this queue, so this only happens for
                    # pathological budgets); send it alone.
                    pass
                self._entries.popleft()
                taken.append(head)
                remaining -= head.nbytes
                self.bytes_pending -= head.nbytes
                self.udp_bytes_pending -= head.nbytes
                self._account_dequeue(head.nbytes, head.enqueued_at, now)
            else:
                chunk = min(head.nbytes, remaining)
                if chunk == head.nbytes:
                    self._entries.popleft()
                    taken.append(head)
                else:
                    head.nbytes -= chunk
                    taken.append(
                        QueueEntry(
                            "tcp", chunk, connection=head.connection,
                            enqueued_at=head.enqueued_at,
                        )
                    )
                remaining -= chunk
                self.bytes_pending -= chunk
                self.tcp_bytes_pending -= chunk
                self._account_dequeue(chunk, head.enqueued_at, now)
        return taken

    def _account_dequeue(
        self, nbytes: int, enqueued_at: float, now: float
    ) -> None:
        if self.clock is None:
            return
        self.delay_byte_s += max(0.0, now - enqueued_at) * nbytes
        self.dequeued_bytes += nbytes

    def push_front(self, entry: QueueEntry) -> None:
        """Return an entry to the head of the queue (burster leftovers).

        Used when a burst could not hand a TCP credit to its socket
        (window full): the bytes stay first in line for the next burst.
        """
        self._entries.appendleft(entry)
        self.bytes_pending += entry.nbytes
        if entry.kind == "udp":
            self.udp_bytes_pending += entry.nbytes
        else:
            self.tcp_bytes_pending += entry.nbytes
        self.peak_bytes = max(self.peak_bytes, self.bytes_pending)

    def absorb(self, entry: QueueEntry) -> None:
        """Adopt an entry migrated from another shard's queue (handoff).

        The entry keeps its original ``enqueued_at`` stamp, so queueing
        delay accrued in the old cell still counts when the new cell
        finally drains it.
        """
        self._entries.append(entry)
        self._account(entry.nbytes)
        if entry.kind == "udp":
            self.udp_bytes_pending += entry.nbytes
            self.has_udp = True
        else:
            self.tcp_bytes_pending += entry.nbytes
            self.has_tcp = True

    def bytes_pending_for(self, connection: "TcpConnection") -> int:
        """Buffered credit bytes still queued for ``connection``."""
        return sum(
            entry.nbytes
            for entry in self._entries
            if entry.kind == "tcp" and entry.connection is connection
        )

    def drop_connection(self, connection: "TcpConnection") -> int:
        """Discard credits for a closed connection; returns bytes dropped."""
        dropped = 0
        kept: deque[QueueEntry] = deque()
        for entry in self._entries:
            if entry.kind == "tcp" and entry.connection is connection:
                dropped += entry.nbytes
            else:
                kept.append(entry)
        self._entries = kept
        self.bytes_pending -= dropped
        self.tcp_bytes_pending -= dropped
        return dropped
