"""Keeping the WNIC awake around the client's own transmissions.

The paper's client daemon controls a real card: whenever the host
*sends* (a TCP SYN opening a connection, an ACK, a receiver report),
the card is necessarily powered. The daemon therefore cannot blindly
sleep through its own activity — in particular, a freshly opened TCP
connection needs the card up to hear the SYN-ACK a few milliseconds
later, long before any schedule or burst would wake it.

:class:`TransmitWakeGuard` encapsulates this: it observes every packet
the node originates, wakes the card for them, keeps it up while any
connection is mid-handshake, and returns it to sleep right after
stray single-shot transmissions (e.g. a UDP receiver report fired from
a timer while the daemon sleeps).
"""

from __future__ import annotations

from typing import Iterator

from repro.net.node import Node
from repro.net.packet import Packet, TcpFlags
from repro.sim.core import Event
from repro.units import ms
from repro.wnic.states import Wnic

#: How long after a stray (non-handshake) transmission to re-sleep.
RESLEEP_DELAY_S = ms(2)
#: Poll spacing while a handshake keeps the card up.
HANDSHAKE_POLL_S = ms(2)


class TransmitWakeGuard:
    """Wakes the card for the node's own transmissions."""

    def __init__(self, node: Node, wnic: Wnic) -> None:
        self.node = node
        self.sim = node.sim
        self.wnic = wnic
        #: True while the owning daemon is inside a sleep phase.
        self.daemon_sleeping = False
        self.tx_wakes = 0
        node.tx_observers.append(self._on_transmit)

    def busy_connections(self) -> bool:
        """Any local TCP connection mid-handshake or awaiting an ACK?

        Awaiting-an-ACK matters because our own unacknowledged bytes
        (an HTTP request, say) elicit an immediate ACK from the proxy —
        sleeping through it would force an RTO-delayed retransmission.
        """
        return any(
            conn.state in ("SYN_SENT", "SYN_RCVD")
            or (conn.state != "CLOSED" and conn.bytes_in_flight > 0)
            for conn in self.node.tcp_connections.values()
        )

    def _on_transmit(self, packet: Packet) -> None:
        if self.wnic.is_awake:
            return
        self.wnic.wake()
        self.tx_wakes += 1
        is_syn = (
            packet.proto == "tcp"
            and TcpFlags.SYN in packet.flags
            and TcpFlags.ACK not in packet.flags
        )
        if is_syn:
            # Stay up through the handshake/request exchange, then put
            # the card back down if the daemon is still in a sleep phase.
            self.sim.process(self._resleep_when_quiet())
        else:
            # One-shot transmission: go back to sleep shortly, unless a
            # handshake started in the meantime.
            self.sim.call_at(self.sim.now + RESLEEP_DELAY_S, self._maybe_resleep)

    def _resleep_when_quiet(self):
        while self.daemon_sleeping and self.busy_connections():
            yield self.sim.timeout(HANDSHAKE_POLL_S)
        self._maybe_resleep()

    def _maybe_resleep(self) -> None:
        if self.daemon_sleeping and not self.busy_connections():
            self.wnic.sleep()

    def sleep_until(
        self, wake_at: float, min_sleep_gap_s: float
    ) -> Iterator[Event]:
        """Generator: sleep the card until ``wake_at`` (daemon helper).

        Defers the descent into sleep while handshakes are pending, and
        skips the sleep entirely for gaps too short to pay for the
        wake transition.
        """
        sim = self.sim
        while self.busy_connections() and sim.now < wake_at:
            yield sim.timeout(min(HANDSHAKE_POLL_S, wake_at - sim.now))
        gap = wake_at - sim.now
        if gap <= 0:
            return
        if gap <= min_sleep_gap_s:
            yield sim.timeout(gap)
            return
        self.daemon_sleeping = True
        self.wnic.sleep()
        yield sim.timeout(gap)
        self.daemon_sleeping = False
        self.wnic.wake()
