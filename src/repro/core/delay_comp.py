"""Delay-compensation algorithms (paper §3.3).

A client must be awake when its packets arrive, but packets pass
through the access point (variable forwarding delay), the proxy is
multithreaded, and the client's clock is not synchronized with the
proxy's. The client therefore *predicts* arrival times and wakes an
*early transition amount* before them. Three predictors:

* :class:`AdaptiveCompensator` — the paper's algorithm: anchor every
  transition a fixed amount after the **observed arrival time** of the
  previous schedule; absolute proxy timestamps are only used as
  relative offsets, so clock offset between proxy and client cancels.
* :class:`FixedClockCompensator` — trusts the proxy's absolute
  timestamps, shifted by the client's (mis)estimated clock offset; a
  strawman showing why adaptation is needed.
* :class:`OracleCompensator` — adaptive with a perfect one-interval
  memory and zero early amount; used to bound achievable savings in
  tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.schedule import BurstSlot, Schedule
from repro.errors import ConfigurationError
from repro.units import ms


class DelayCompensator(ABC):
    """Strategy deciding when to transition the WNIC out of sleep."""

    def __init__(self, early_s: float = ms(6)) -> None:
        if early_s < 0:
            raise ConfigurationError(f"negative early amount: {early_s!r}")
        self.early_s = early_s

    @abstractmethod
    def next_schedule_wake(self, schedule: Schedule, arrival: float) -> float:
        """Client-clock time to wake for the schedule after ``schedule``.

        Args:
            schedule: the schedule just received.
            arrival: client-clock time it arrived.
        """

    @abstractmethod
    def burst_wake(
        self, schedule: Schedule, arrival: float, slot: BurstSlot
    ) -> float:
        """Client-clock time to wake for this client's own burst."""

    def predict_arrival(self, schedule: Schedule, arrival: float) -> float:
        """Expected client-clock arrival of the *next* schedule (the
        reference point for declaring it missed)."""
        return arrival + schedule.interval

    def observe_arrival(self, schedule: Schedule, arrival: float) -> None:
        """Hook for predictors that learn from arrivals (default: none)."""


class AdaptiveCompensator(DelayCompensator):
    """Anchor every wake-up to the previous schedule's arrival time.

    ``wake = arrival + (target - srp) - early``: the proxy's timestamps
    supply only the *gap* between the SRP and the target event, so a
    constant AP delay or clock offset cancels; only delay *changes*
    between consecutive schedules can cause a miss, and those are what
    the early transition amount absorbs.

    The paper's algorithm assumes delay changes persist ("several
    subsequent schedule packets will arrive according to the same
    pattern"). Under bursty cross-traffic the delay is *bimodal* — a
    schedule behind a queue of uplink ACKs arrives late, the next one
    arrives promptly, and anchoring on the late one sleeps straight
    through its successor. The optional **min-filter margin** fixes
    this: the client tracks how much earlier than predicted recent
    schedules arrived and widens its wake-up by that observed worst
    case. ``window=0`` disables it (the paper's exact algorithm).
    """

    def __init__(
        self, early_s: float = ms(6), window: int = 16,
        max_margin_s: float = ms(15),
    ) -> None:
        super().__init__(early_s)
        from collections import deque

        self.window = window
        self.max_margin_s = max_margin_s
        self._errors = deque(maxlen=window) if window > 0 else None
        self._last_prediction: float | None = None

    @property
    def margin_s(self) -> float:
        """Extra wake-up lead learned from early-arrival surprises."""
        if not self._errors:
            return 0.0
        return min(self.max_margin_s, max(0.0, -min(self._errors)))

    def observe_arrival(self, schedule: Schedule, arrival: float) -> None:
        if self._errors is None:
            return
        if self._last_prediction is not None:
            self._errors.append(arrival - self._last_prediction)
        self._last_prediction = arrival + schedule.interval

    def next_schedule_wake(self, schedule: Schedule, arrival: float) -> float:
        return arrival + schedule.interval - self.early_s - self.margin_s

    def burst_wake(
        self, schedule: Schedule, arrival: float, slot: BurstSlot
    ) -> float:
        return (
            arrival + (slot.rendezvous - schedule.srp)
            - self.early_s - self.margin_s
        )


class FixedClockCompensator(DelayCompensator):
    """Trust absolute proxy timestamps plus an assumed clock offset.

    ``clock_offset_estimate_s`` is the client's belief about
    (client clock − proxy clock). When the belief is wrong — the usual
    case without time synchronization — every wake-up is systematically
    early (wasted energy) or late (missed packets).
    """

    def __init__(self, early_s: float = ms(6), clock_offset_estimate_s: float = 0.0):
        super().__init__(early_s)
        self.clock_offset_estimate_s = clock_offset_estimate_s

    def _to_client_clock(self, proxy_time: float) -> float:
        return proxy_time + self.clock_offset_estimate_s

    def next_schedule_wake(self, schedule: Schedule, arrival: float) -> float:
        return self._to_client_clock(schedule.next_srp) - self.early_s

    def predict_arrival(self, schedule: Schedule, arrival: float) -> float:
        return self._to_client_clock(schedule.next_srp)

    def burst_wake(
        self, schedule: Schedule, arrival: float, slot: BurstSlot
    ) -> float:
        return self._to_client_clock(slot.rendezvous) - self.early_s


class OracleCompensator(AdaptiveCompensator):
    """Adaptive prediction with a zero early amount.

    Not realizable in practice (any jitter causes a miss); used by
    tests and the Figure 6 sweep as the ``early = 0`` data point.
    """

    def __init__(self) -> None:
        super().__init__(early_s=0.0)
