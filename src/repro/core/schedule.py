"""Schedule messages, burst slots and SRP bookkeeping (paper §3.2.1).

A schedule is broadcast as a UDP packet at each *scheduler rendezvous
point* (SRP). It lists, per active client, a burst slot: the client's
rendezvous point (when its burst starts) and how long the burst lasts.
It also carries the time of the *next* SRP so every client knows when
to wake for the next schedule, whether or not it has a slot now.

All times inside a schedule are proxy-clock timestamps; power-aware
clients never trust them absolutely — they anchor on the schedule's
*arrival* time and use only the relative offsets (see
:mod:`repro.core.delay_comp`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulingError

#: UDP port schedule broadcasts are sent to.
SCHEDULE_PORT = 9797

#: Wire size of a schedule message: fixed header + per-slot entry.
SCHEDULE_HEADER_BYTES = 24
SLOT_ENTRY_BYTES = 16


@dataclass(frozen=True, slots=True)
class BurstSlot:
    """One client's reservation inside a burst interval."""

    client_ip: str
    rendezvous: float  # absolute proxy time the burst starts (RP_i)
    duration: float  # seconds reserved for this client's burst
    bytes_allotted: int  # payload bytes the proxy intends to send

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SchedulingError(f"negative slot duration: {self.duration!r}")
        if self.bytes_allotted < 0:
            raise SchedulingError(
                f"negative slot allotment: {self.bytes_allotted!r}"
            )

    @property
    def end(self) -> float:
        """Proxy time the slot's reservation ends."""
        return self.rendezvous + self.duration


@dataclass(frozen=True, slots=True)
class Schedule:
    """A full burst-interval schedule, as broadcast to all clients."""

    seq: int
    srp: float  # proxy time this schedule was broadcast
    next_srp: float  # proxy time the *next* schedule will be broadcast
    slots: tuple[BurstSlot, ...] = ()
    #: Set by the schedule-reuse extension (§5 future work): clients may
    #: skip the next schedule reception and reuse this one's offsets.
    repeats_next: bool = False

    def __post_init__(self) -> None:
        if self.next_srp <= self.srp:
            raise SchedulingError(
                f"next_srp {self.next_srp} must follow srp {self.srp}"
            )
        previous_end = None
        for slot in self.slots:
            if slot.rendezvous < self.srp:
                raise SchedulingError(
                    f"slot for {slot.client_ip} starts before the SRP"
                )
            if previous_end is not None and slot.rendezvous < previous_end - 1e-9:
                raise SchedulingError("slots overlap")
            previous_end = slot.end

    @property
    def interval(self) -> float:
        """The burst interval this schedule covers."""
        return self.next_srp - self.srp

    @property
    def wire_payload(self) -> int:
        """UDP payload bytes of the broadcast message."""
        return SCHEDULE_HEADER_BYTES + SLOT_ENTRY_BYTES * len(self.slots)

    def slot_for(self, client_ip: str) -> Optional[BurstSlot]:
        """This client's slot, or None if it has no traffic this interval."""
        for slot in self.slots:
            if slot.client_ip == client_ip:
                return slot
        return None

    def as_meta(self) -> dict:
        """Serialize into packet metadata (the DES wire format)."""
        return {
            "schedule": {
                "seq": self.seq,
                "srp": self.srp,
                "next_srp": self.next_srp,
                "repeats_next": self.repeats_next,
                "slots": [
                    {
                        "client_ip": slot.client_ip,
                        "rendezvous": slot.rendezvous,
                        "duration": slot.duration,
                        "bytes_allotted": slot.bytes_allotted,
                    }
                    for slot in self.slots
                ],
            }
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "Schedule":
        """Parse a schedule out of packet metadata."""
        try:
            raw = meta["schedule"]
            return cls(
                seq=raw["seq"],
                srp=raw["srp"],
                next_srp=raw["next_srp"],
                repeats_next=raw.get("repeats_next", False),
                slots=tuple(
                    BurstSlot(
                        client_ip=s["client_ip"],
                        rendezvous=s["rendezvous"],
                        duration=s["duration"],
                        bytes_allotted=s["bytes_allotted"],
                    )
                    for s in raw["slots"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise SchedulingError(f"malformed schedule metadata: {exc}") from exc
