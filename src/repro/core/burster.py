"""Burst transmission and the packet-marking protocol (paper §3.2.2).

A burst ends with a packet whose IP TOS bit is set; the client sleeps
when it sees it. Marking UDP is trivial (the burster owns the packet).
Marking TCP reproduces the paper's shared-variable protocol between the
bursting thread and the IPQ thread:

* ``sent`` — bytes handed to the client-side socket by the burster,
* ``fwd``  — bytes actually carried by emitted segments (invariant
  ``fwd <= sent``; our hook observes every segment, so it holds by
  construction),
* ``mark`` — the stream offset to mark; set to ``sent`` when the
  burster hands over the last bytes of a burst, and matched against
  each outgoing segment's sequence range — including retransmissions,
  which the paper handles "by comparing sequence numbers".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.queues import ClientQueue, QueueEntry
from repro.core.schedule import BurstSlot
from repro.net.packet import Packet
from repro.net.tcp import TcpConnection
from repro.obs.metrics import RATIO_BUCKETS
from repro.obs.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.sim.trace import TraceRecorder


class MarkingController:
    """Per-connection implementation of the sent/fwd/mark protocol."""

    def __init__(self, connection: TcpConnection) -> None:
        self.connection = connection
        #: bytes handed to the socket, as a stream offset (paper: sent).
        self.sent_offset = connection.app_limit
        #: last stream offset carried by an emitted segment (paper: fwd).
        self.fwd_offset = connection.snd_nxt
        #: stream offsets whose segments get the TOS mark (paper: mark).
        #: Ascending; a scalar would lose a pending mark whenever the
        #: send window stalls a marked hand-off and the next burst's
        #: mark arrives before the stalled bytes ever hit the wire.
        self.mark_offsets: list[int] = []
        self.segments_marked = 0
        connection.on_segment_tx = self._on_segment_tx

    @property
    def mark_offset(self) -> Optional[int]:
        """Most recent pending mark byte (paper's ``mark`` variable)."""
        return self.mark_offsets[-1] if self.mark_offsets else None

    def hand_bytes(self, nbytes: int, mark_last: bool) -> None:
        """Bursting-thread side: write ``nbytes`` into the socket."""
        if nbytes <= 0:
            return
        if mark_last:
            # Mark the final byte of this hand-off. Set *before* send():
            # the socket may emit segments synchronously and the IPQ
            # hook must already know the mark byte when they pass.
            self.mark_offsets.append(self.connection.app_limit + nbytes - 1)
        self.connection.send(nbytes)
        self.sent_offset = self.connection.app_limit

    def _on_segment_tx(self, packet: Packet) -> None:
        """IPQ-thread side: observe (and possibly mark) each segment."""
        self.fwd_offset = max(self.fwd_offset, packet.end_seq)
        offsets = self.mark_offsets
        # Acked mark bytes can never ride another segment, not even a
        # retransmission; unacked ones must stay pending so retransmits
        # of the marked segment are marked again.
        una = self.connection.snd_una
        drop = 0
        while drop < len(offsets) and offsets[drop] < una:
            drop += 1
        if drop:
            del offsets[:drop]
        for offset in offsets:
            if offset >= packet.end_seq:
                break
            if packet.seq <= offset:
                packet.tos_marked = True
                self.segments_marked += 1
                break


class Burster:
    """Transmits one client's burst for a slot and marks its last packet."""

    def __init__(
        self,
        node: "Node",
        trace: Optional["TraceRecorder"] = None,
        obs: Optional[Recorder] = None,
    ):
        self.node = node
        self.obs = obs if obs is not None else Recorder.wrap(trace)
        self.trace = self.obs.trace if trace is None else trace
        self._controllers: dict[TcpConnection, MarkingController] = {}
        self.bursts_sent = 0
        self.bytes_burst = 0

    def controller_for(self, connection: TcpConnection) -> MarkingController:
        """The marking controller for a client-side connection."""
        controller = self._controllers.get(connection)
        if controller is None:
            controller = MarkingController(connection)
            self._controllers[connection] = controller
        return controller

    def forget(self, connection: TcpConnection) -> None:
        """Drop the controller of a closed connection."""
        self._controllers.pop(connection, None)

    def burst(self, queue: ClientQueue, slot: BurstSlot) -> int:
        """Send up to ``slot.bytes_allotted`` bytes from ``queue``.

        Returns the number of payload bytes dispatched. The last unit
        dispatched carries the end-of-burst mark (directly for UDP, via
        the marking protocol for TCP).
        """
        entries = queue.pop_up_to(slot.bytes_allotted)
        entries = [entry for entry in entries if self._is_sendable(entry)]
        # A TCP credit is only handed over to the extent the socket can
        # emit it *right now* (window room): anything buffered inside
        # the socket would otherwise dribble out on ACKs after the
        # client's slot — usually straight into a sleeping WNIC.
        leftovers: list[QueueEntry] = []
        sendable: list[tuple[QueueEntry, int]] = []
        for entry in entries:
            if entry.kind == "udp":
                sendable.append((entry, entry.nbytes))
                continue
            conn = entry.connection
            room = max(0, conn.send_window - conn.bytes_in_flight - conn.unsent_bytes)
            chunk = min(entry.nbytes, room)
            if chunk > 0:
                sendable.append((entry, chunk))
            if chunk < entry.nbytes:
                leftovers.append(
                    QueueEntry(
                        "tcp", entry.nbytes - chunk, connection=conn,
                        enqueued_at=entry.enqueued_at,
                    )
                )
        for leftover in reversed(leftovers):
            queue.push_front(leftover)
        if not sendable:
            return 0
        sent = 0
        for index, (entry, nbytes) in enumerate(sendable):
            last = index == len(sendable) - 1
            if entry.kind == "udp":
                if last:
                    entry.packet.tos_marked = True
                self.node.send_packet(entry.packet)
            else:
                self.controller_for(entry.connection).hand_bytes(
                    nbytes, mark_last=last
                )
            sent += nbytes
        self.bursts_sent += 1
        self.bytes_burst += sent
        self.obs.event(
            self.node.sim.now, "proxy.burst",
            client=queue.client_ip, bytes=sent, entries=len(entries),
            allotted=slot.bytes_allotted,
        )
        self.obs.inc("proxy.bursts", client=queue.client_ip)
        self.obs.inc("proxy.burst_bytes", sent, client=queue.client_ip)
        if slot.bytes_allotted > 0:
            self.obs.observe(
                "proxy.burst_fill_ratio",
                min(1.0, sent / slot.bytes_allotted),
                buckets=RATIO_BUCKETS,
                client=queue.client_ip,
            )
        return sent

    @staticmethod
    def _is_sendable(entry: QueueEntry) -> bool:
        if entry.kind == "udp":
            return True
        connection = entry.connection
        return connection.state not in ("CLOSED",) and connection.fin_offset is None
