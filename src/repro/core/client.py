"""The power-aware client daemon (paper §3.1, §3.3).

The client keeps its WNIC asleep except around two rendezvous points
per burst interval: the schedule broadcast and its own burst. All
wake-ups are predicted by a delay-compensation algorithm and happen an
*early transition amount* before the predicted arrival. The daemon
reproduces the paper's corner cases:

* a schedule that arrives while the client is still waiting for the
  previous burst's marked packet is queued, not applied (§3.2.2
  "Packet Ordering" case 1);
* data arriving before the schedule is accepted normally (case 2);
* a missed schedule leaves the WNIC in high-power mode until the next
  schedule is heard (§3.3);
* a missed marked packet leaves the WNIC awake until the next schedule
  (§3.2.2).

Graceful degradation: while schedules keep failing to arrive, the
client keeps listening on the last known interval cadence, counting
every missed broadcast; after ``fallback_after_misses`` consecutive
misses it declares the control channel lost and *falls back* to a safe
always-listen mode (no data can be missed, at naive-client energy
cost). The first schedule heard afterwards resynchronizes it back to
scheduled sleep; the ``fallbacks``/``resyncs`` counters surface both
transitions.
"""

from __future__ import annotations

from typing import Optional

from repro.core.delay_comp import AdaptiveCompensator, DelayCompensator
from repro.core.schedule import SCHEDULE_PORT, Schedule
from repro.core.txguard import TransmitWakeGuard
from repro.errors import SchedulingError
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.udp import UdpSocket
from repro.obs.recorder import Recorder
from repro.sim.trace import TraceRecorder
from repro.units import ms
from repro.wnic.states import Wnic

#: Gaps shorter than this are not worth a sleep/wake cycle (2 x the
#: 2 ms wake penalty would outweigh the sleep savings).
DEFAULT_MIN_SLEEP_GAP_S = ms(4)
#: How long past the predicted arrival to keep listening for a
#: schedule before declaring it missed.
DEFAULT_SCHEDULE_GRACE_S = ms(12)
#: If a burst shows no data this long after the rendezvous wake, the
#: slot is empty (e.g. a reused schedule whose queue has drained) and
#: the client goes back to sleep instead of waiting for a mark.
DEFAULT_BURST_NOSHOW_S = ms(10)
#: Consecutive missed schedule broadcasts before the client falls back
#: to always-listen mode.
DEFAULT_FALLBACK_AFTER_MISSES = 3


class PowerAwareClient:
    """Client-side daemon driving the WNIC around rendezvous points."""

    def __init__(
        self,
        node: Node,
        wnic: Wnic,
        compensator: Optional[DelayCompensator] = None,
        trace: Optional[TraceRecorder] = None,
        min_sleep_gap_s: float = DEFAULT_MIN_SLEEP_GAP_S,
        schedule_grace_s: float = DEFAULT_SCHEDULE_GRACE_S,
        wireless_iface: str = "wl0",
        enforce_sleep_drops: bool = True,
        fallback_after_misses: int = DEFAULT_FALLBACK_AFTER_MISSES,
        obs: Optional[Recorder] = None,
    ) -> None:
        if fallback_after_misses < 1:
            raise SchedulingError(
                f"fallback_after_misses must be >= 1: {fallback_after_misses!r}"
            )
        self.node = node
        self.sim = node.sim
        self.wnic = wnic
        self.compensator = compensator or AdaptiveCompensator()
        if obs is not None:
            self.obs = obs
        elif trace is not None:
            self.obs = Recorder.wrap(trace)
        else:
            self.obs = node.obs
        self.trace = self.obs.trace if trace is None else trace
        self.min_sleep_gap_s = min_sleep_gap_s
        self.schedule_grace_s = schedule_grace_s
        self.fallback_after_misses = fallback_after_misses
        if wireless_iface not in node.interfaces:
            raise SchedulingError(
                f"{node.name} has no interface {wireless_iface!r}"
            )
        if enforce_sleep_drops:
            node.interfaces[wireless_iface].rx_gate = wnic.can_receive
        self._schedule_socket = UdpSocket(
            node, SCHEDULE_PORT, on_receive=self._on_schedule_packet
        )
        node.taps.insert(0, self._watch_frames)
        self._tx_guard = TransmitWakeGuard(node, wnic)

        # -- waiter state --
        self._schedule_waiter = None
        self._mark_waiter = None
        self._pending: Optional[tuple[Schedule, float]] = None
        self._awaiting_mark = False
        self._burst_first_frame: Optional[float] = None

        # -- counters (consumed by the energy analyzer / figure 6) --
        self.schedules_heard = 0
        self.missed_schedules = 0
        self.marks_missed = 0
        self.empty_bursts = 0
        self.bursts_received = 0
        self.early_wait_s = 0.0
        self.miss_recovery_s = 0.0
        self.data_packets_seen = 0

        # -- graceful-degradation state --
        self.in_fallback = False
        self.fallbacks = 0
        self.resyncs = 0
        self.max_consecutive_misses = 0

        self.sim.process(self._run())

    # ------------------------------------------------------------------
    # Packet observation
    # ------------------------------------------------------------------

    def _watch_frames(self, packet: Packet, iface) -> bool:
        """Pass-through tap tracking burst progress and marked packets."""
        if packet.dst.ip != self.node.ip:
            return False
        if packet.payload_size > 0:
            self.data_packets_seen += 1
            if self._burst_first_frame is None:
                self._burst_first_frame = self.sim.now
        if packet.tos_marked and self._mark_waiter is not None:
            waiter, self._mark_waiter = self._mark_waiter, None
            if not waiter.triggered:
                waiter.succeed(True)
        return False

    def _on_schedule_packet(self, packet: Packet) -> None:
        schedule = Schedule.from_meta(packet.meta)
        arrival = self.sim.now
        self.schedules_heard += 1
        self.compensator.observe_arrival(schedule, arrival)
        self.obs.event(
            arrival, "client.schedule-heard", client=self.node.ip,
            seq=schedule.seq,
        )
        self.obs.inc("client.schedules_heard", client=self.node.ip)
        if self._awaiting_mark:
            # Paper case 1: ignore (queue) until the marked packet shows
            # up — but a *second* schedule supersedes a lost mark, so a
            # queued schedule also releases the mark wait.
            if self._pending is not None and self._mark_waiter is not None:
                waiter, self._mark_waiter = self._mark_waiter, None
                if not waiter.triggered:
                    waiter.succeed(False)
            self._pending = (schedule, arrival)
            return
        if self._schedule_waiter is not None:
            waiter, self._schedule_waiter = self._schedule_waiter, None
            if not waiter.triggered:
                waiter.succeed((schedule, arrival))
        else:
            self._pending = (schedule, arrival)

    # ------------------------------------------------------------------
    # Main daemon process
    # ------------------------------------------------------------------

    def _run(self):
        self.wnic.wake()
        current = yield from self._await_schedule(deadline=None)
        while True:
            schedule, arrival = current
            repetitions = 2 if schedule.repeats_next else 1
            for repetition in range(repetitions):
                offset = repetition * schedule.interval
                yield from self._burst_phase(
                    schedule, arrival, offset, replay=repetition > 0
                )
            current = yield from self._schedule_phase(
                schedule, arrival, (repetitions - 1) * schedule.interval
            )

    # -- burst phase ------------------------------------------------------

    def _burst_phase(
        self, schedule: Schedule, arrival: float, offset: float,
        replay: bool = False,
    ):
        slot = schedule.slot_for(self.node.ip)
        if slot is None:
            return
        wake_at = self.compensator.burst_wake(schedule, arrival, slot) + offset
        yield from self._sleep_until(wake_at)
        wake_time = self.sim.now
        self._burst_first_frame = None
        self._awaiting_mark = True
        deadline = (
            self.compensator.next_schedule_wake(schedule, arrival) + offset
        )
        # A fresh schedule only lists clients with queued data, so the
        # burst is certain and the client waits for its marked packet
        # (the paper's behaviour, §3.2.2). Only a *replayed* interval
        # (schedule reuse, §5) can have an empty slot — there a short
        # no-show window lets the client give up early.
        noshow = (
            wake_time + self.compensator.early_s + DEFAULT_BURST_NOSHOW_S
            if replay
            else deadline
        )
        got_mark = yield from self._await_mark(deadline, noshow)
        self._awaiting_mark = False
        first = self._burst_first_frame
        self.obs.span(
            wake_time, self.sim.now, "burst", f"client {self.node.ip}",
            got_mark=got_mark, replay=replay, got_data=first is not None,
        )
        if first is not None:
            self.bursts_received += 1
            self.early_wait_s += max(0.0, first - wake_time)
            if not got_mark:
                self.marks_missed += 1
                self.obs.event(
                    self.sim.now, "client.mark-missed",
                    client=self.node.ip,
                )
                self.obs.inc("client.marks_missed", client=self.node.ip)
        else:
            # Nothing arrived: an empty slot (reused schedule, drained
            # queue). The no-show window was wasted high-power time.
            self.empty_bursts += 1
            self.early_wait_s += max(0.0, self.sim.now - wake_time)

    def _await_mark(self, deadline: float, noshow_deadline: float):
        if deadline <= self.sim.now:
            return False
        waiter = self.sim.event()
        self._mark_waiter = waiter
        if noshow_deadline < deadline and noshow_deadline > self.sim.now:
            first = self.sim.timeout(noshow_deadline - self.sim.now)
            yield self.sim.any_of([waiter, first])
            if waiter.processed:
                return bool(waiter.value)
            if self._burst_first_frame is None:
                self._mark_waiter = None
                return False  # no-show: give up and sleep
        timeout = self.sim.timeout(deadline - self.sim.now)
        yield self.sim.any_of([waiter, timeout])
        if waiter.processed:
            return bool(waiter.value)
        self._mark_waiter = None
        return False

    # -- schedule phase ------------------------------------------------------

    def _schedule_phase(self, schedule: Schedule, arrival: float, offset: float):
        wake_at = (
            self.compensator.next_schedule_wake(schedule, arrival) + offset
        )
        if self._pending is None:
            yield from self._sleep_until(wake_at)
        wake_time = self.sim.now
        predicted = (
            self.compensator.predict_arrival(schedule, arrival) + offset
        )
        result = yield from self._await_schedule(
            deadline=predicted + self.schedule_grace_s
        )
        if result is not None:
            self.early_wait_s += max(0.0, result[1] - wake_time)
            return result
        # Missed: stay in high-power mode (§3.3) and keep listening on
        # the last known interval cadence, counting every broadcast
        # that fails to arrive. After ``fallback_after_misses``
        # consecutive misses the control channel is declared lost and
        # the client falls back to plain always-listen mode until a
        # schedule is heard again (graceful degradation).
        recovery_start = self.sim.now
        consecutive = 0
        while result is None:
            consecutive += 1
            self.missed_schedules += 1
            self.max_consecutive_misses = max(
                self.max_consecutive_misses, consecutive
            )
            self.obs.event(
                self.sim.now, "client.schedule-missed",
                client=self.node.ip, consecutive=consecutive,
            )
            self.obs.inc("client.schedules_missed", client=self.node.ip)
            if consecutive >= self.fallback_after_misses:
                if not self.in_fallback:
                    self.in_fallback = True
                    self.fallbacks += 1
                    self.obs.event(
                        self.sim.now, "client.fallback",
                        client=self.node.ip, misses=consecutive,
                    )
                    self.obs.inc("client.fallbacks", client=self.node.ip)
                result = yield from self._await_schedule(deadline=None)
                break
            predicted += schedule.interval
            result = yield from self._await_schedule(
                deadline=predicted + self.schedule_grace_s
            )
        if self.in_fallback:
            self.in_fallback = False
            self.resyncs += 1
            self.obs.event(self.sim.now, "client.resync", client=self.node.ip)
            self.obs.inc("client.resyncs", client=self.node.ip)
        self.miss_recovery_s += self.sim.now - recovery_start
        return result

    def _await_schedule(self, deadline: Optional[float]):
        if self._pending is not None:
            pending, self._pending = self._pending, None
            return pending
        waiter = self.sim.event()
        self._schedule_waiter = waiter
        if deadline is None:
            result = yield waiter
            return result
        if deadline <= self.sim.now:
            self._schedule_waiter = None
            return None
        timeout = self.sim.timeout(deadline - self.sim.now)
        yield self.sim.any_of([waiter, timeout])
        if waiter.processed:
            return waiter.value
        self._schedule_waiter = None
        return None

    # -- sleeping ----------------------------------------------------------

    def _sleep_until(self, wake_at: float):
        yield from self._tx_guard.sleep_until(wake_at, self.min_sleep_gap_s)

    # -- reporting helpers ------------------------------------------------------

    @property
    def counters(self) -> dict:
        """Counters in the shape the energy analyzer expects."""
        return {
            "missed_schedules": self.missed_schedules,
            "schedules_heard": self.schedules_heard,
            "early_wait_s": self.early_wait_s,
            "miss_recovery_s": self.miss_recovery_s,
            "fallbacks": self.fallbacks,
            "resyncs": self.resyncs,
            "max_consecutive_misses": self.max_consecutive_misses,
        }
