"""The transparent proxy (paper §3.2.2, Figure 3).

A bridge node between the server LAN and the access point. Its packet
tap plays the role of Linux IPQ:

* **UDP downlink** (server → client) is intercepted and buffered in the
  client's queue; the buffered packet keeps the server's source address,
  so when the burster later transmits it the client still believes it
  came straight from the server.
* **TCP** connections are *split*: an intercepted client SYN spawns a
  client-side connection bound to the **server's** endpoint (spoofed)
  and a server-side connection bound to the **client's** endpoint
  (spoofed), per the 8-step dance of Figure 3. Data arriving on the
  server side becomes byte credits in the client queue; the burster
  hands them to the client-side socket during the client's slot.
* Everything else (client → server traffic, ACKs of spoofed flows)
  either matches one of the spoofed sockets or is bridged through.

The spoof table records the rewrite rules for observability — asserting
transparency is then a matter of checking the wireless capture only
ever shows server/client addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Protocol, Sequence

from repro.core.burster import Burster
from repro.core.queues import ClientQueue, QueueEntry
from repro.core.schedule import SCHEDULE_PORT, Schedule
from repro.errors import ConfigurationError
from repro.net.addr import BROADCAST_IP, Endpoint, FlowKey
from repro.net.nat import SpoofTable
from repro.net.node import Interface, Node
from repro.net.packet import Packet, TcpFlags
from repro.net.tcp import TcpConnection
from repro.net.udp import UdpSocket
from repro.obs.recorder import Recorder
from repro.sim.core import Event, Simulator
from repro.sim.trace import TraceRecorder
from repro.units import ms


class SchedulerLike(Protocol):
    """Any proxy-side scheduling policy: one simulation process."""

    def run(self) -> Iterator[Event]: ...


class ChannelStateProvider(Protocol):
    """Anything that can report a client's current channel state.

    Structurally matched by :class:`repro.net.channel.ChannelModel`
    (kept as a Protocol so :mod:`repro.core` never imports
    :mod:`repro.net.channel`).
    """

    def state_good(self, client_ip: str, now: float) -> bool: ...


@dataclass
class SplitConnection:
    """A spliced client/server connection pair."""

    client_ep: Endpoint
    server_ep: Endpoint
    client_side: TcpConnection
    server_side: TcpConnection
    server_closed: bool = False
    client_closed: bool = False
    #: Request bytes received from the client before the server side
    #: finished its handshake.
    pending_request_bytes: int = 0
    #: Application metadata seen in client request segments, re-stamped
    #: onto relayed server-side segments (the DES stand-in for the
    #: payload bytes a real proxy forwards verbatim).
    request_meta: dict = field(default_factory=dict)


class TransparentProxy(Node):
    """The power-aware scheduling proxy."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: str,
        client_ips: set[str],
        trace: Optional[TraceRecorder] = None,
        tcp_mode: str = "split",
        obs: Optional[Recorder] = None,
    ) -> None:
        """Args:
        tcp_mode: "split" (the paper's design: terminated + spoofed
            double connections), "passthrough" (buffer and burst the
            end-to-end connection's data segments — the rejected
            design, kept for the ablation), or "bridge" (TCP flows
            through untouched).
        """
        super().__init__(sim, name, ip, trace=trace, obs=obs)
        if not client_ips:
            raise ConfigurationError("proxy needs at least one client ip")
        if tcp_mode not in ("split", "passthrough", "bridge"):
            raise ConfigurationError(f"unknown tcp_mode: {tcp_mode!r}")
        self.tcp_mode = tcp_mode
        self.client_ips = set(client_ips)
        self.forwarding = True
        self.lan = self.add_interface("lan")  # toward the servers
        self.air = self.add_interface("air")  # toward the access point
        self.add_route(BROADCAST_IP, self.air)
        self.taps.append(self._intercept)
        self.spoof_table = SpoofTable()
        self.burster = Burster(self, obs=self.obs)
        self._queues: dict[str, ClientQueue] = {}
        #: Cached ``sorted(self._queues.items())``; invalidated whenever
        #: a queue is created or released, so the per-interval iteration
        #: stops re-sorting an unchanged client population.
        self._sorted_queues: Optional[list[tuple[str, ClientQueue]]] = None
        self._splits: dict[tuple[Endpoint, Endpoint], SplitConnection] = {}
        #: Per-client view of ``_splits`` so post-burst bookkeeping is
        #: O(own splits), not O(all splits) — the difference between
        #: O(1) and O(clients) work per burst slot at 1k+ clients.
        self._splits_by_client: dict[str, list[SplitConnection]] = {}
        self._client_conns: dict[str, list[TcpConnection]] = {}
        self._schedule_socket = UdpSocket(self, SCHEDULE_PORT)
        self.scheduler: Optional[SchedulerLike] = None  # via attach_scheduler()
        #: Optional per-client channel model (see
        #: :mod:`repro.net.channel`): the proxy's window into each
        #: client's current channel state, consulted by channel-aware
        #: scheduling policies. None means every client reads as good.
        self.channel: Optional[ChannelStateProvider] = None
        self.udp_packets_intercepted = 0
        self.tcp_connections_split = 0
        #: Last simulated time any uplink packet from each client was
        #: seen. The proxy bridges every client→server packet (TCP ACKs,
        #: video feedback), so this is a passive liveness signal the
        #: scheduler uses to reclaim slots from silent clients.
        self.last_uplink: dict[str, float] = {}

    # -- wiring ------------------------------------------------------------

    def attach_scheduler(self, scheduler: SchedulerLike) -> None:
        """Install the scheduling policy (Dynamic or Static)."""
        if self.scheduler is not None:
            raise ConfigurationError("proxy already has a scheduler")
        self.scheduler = scheduler

    def start(self) -> None:
        """Launch the scheduling process."""
        if self.scheduler is None:
            raise ConfigurationError("attach a scheduler before start()")
        self.sim.process(self.scheduler.run())

    def wire_routes(self, lan_side_ips: set[str]) -> None:
        """Route server addresses out the LAN side; clients out the air side."""
        for ip in sorted(lan_side_ips):
            self.add_route(ip, self.lan)
        for ip in sorted(self.client_ips):
            self.add_route(ip, self.air)

    # -- queues -------------------------------------------------------------

    def queue_for(self, client_ip: str) -> ClientQueue:
        """The (lazily created) queue of one client."""
        queue = self._queues.get(client_ip)
        if queue is None:
            queue = ClientQueue(client_ip, clock=lambda: self.sim.now)
            self._queues[client_ip] = queue
            self._sorted_queues = None
        return queue

    def channel_state(self, client_ip: str) -> bool:
        """Current channel state of one client (True = good).

        The scheduler's observability hook: with no channel model
        installed every client reads as good, which makes the
        channel-aware policies collapse onto the paper's dynamic one.
        """
        if self.channel is None:
            return True
        return self.channel.state_good(client_ip, self.sim.now)

    def queue_delay_totals(self) -> tuple[float, int]:
        """(byte-seconds of queueing, bytes dequeued) across all queues."""
        delay = sum(q.delay_byte_s for q in self._queues.values())
        dequeued = sum(q.dequeued_bytes for q in self._queues.values())
        return delay, dequeued

    def mean_queue_delay_s(self) -> float:
        """Byte-weighted mean queueing delay across all client queues."""
        delay, dequeued = self.queue_delay_totals()
        return delay / dequeued if dequeued else 0.0

    def iter_queues(self) -> list[tuple[str, ClientQueue]]:
        """(ip, queue) pairs in a deterministic order.

        The sorted list is cached until the client population changes;
        callers must treat it as read-only.
        """
        queues = self._sorted_queues
        if queues is None:
            queues = self._sorted_queues = sorted(self._queues.items())
        return queues

    def scheduling_backlog(self, client_ip: str) -> int:
        """Bytes the schedule must reserve time for: the queue plus any
        data already written into client-side sockets but not yet
        acknowledged (unsent or in flight). Without the in-socket part
        a client whose window-buffered tail still needs delivering
        would silently drop out of the schedule and sleep through the
        retransmissions (§3.2.2's bandwidth-constraint discussion)."""
        udp_bytes, tcp_bytes = self.scheduling_backlog_by_kind(client_ip)
        return udp_bytes + tcp_bytes

    def scheduling_backlog_by_kind(self, client_ip: str) -> tuple[int, int]:
        """(udp_bytes, tcp_bytes) split of :meth:`scheduling_backlog`.

        The split matters for slot sizing: every TCP segment on the
        downlink elicits ACK airtime on the shared half-duplex medium,
        so TCP bytes cost more channel time than UDP bytes.
        """
        queue = self.queue_for(client_ip)
        udp_bytes = queue.udp_bytes_pending
        tcp_bytes = queue.tcp_bytes_pending
        for conn in self._client_conns.get(client_ip, ()):
            if conn.state != "CLOSED":
                tcp_bytes += conn.unsent_bytes + conn.bytes_in_flight
        return udp_bytes, tcp_bytes

    def kick_stalled(self, client_ip: str, stall_threshold_s: float = ms(50)) -> int:
        """Retransmit-now for this client's stalled connections.

        Called at the start of the client's burst slot. A connection
        with unacknowledged data and no recent forward progress is
        stuck in loss recovery whose retransmissions (RTO-timed,
        exponentially backed off) would land while the client sleeps;
        resending the whole outstanding window *inside* the slot
        resynchronizes recovery with the schedule. Returns the number
        of connections kicked.
        """
        kicked = 0
        now = self.sim.now
        for conn in self._client_conns.get(client_ip, ()):
            if (
                conn.state not in ("CLOSED",)
                and conn.bytes_in_flight > 0
                and (
                    conn.retries > 0
                    or now - conn.last_progress_at > stall_threshold_s
                )
            ):
                conn.retransmit_all()
                kicked += 1
        return kicked

    @property
    def buffered_bytes(self) -> int:
        """Total bytes currently buffered across all clients."""
        return sum(queue.bytes_pending for queue in self._queues.values())

    @property
    def peak_buffered_bytes(self) -> int:
        """High-water mark of simultaneous buffering (memory claim, §3.2.2)."""
        return sum(queue.peak_bytes for queue in self._queues.values())

    # -- schedule broadcast -----------------------------------------------------

    def broadcast_schedule(self, schedule: Schedule) -> None:
        """Send the schedule as a UDP broadcast (via the AP)."""
        self._schedule_socket.broadcast(
            schedule.wire_payload, SCHEDULE_PORT, meta=schedule.as_meta()
        )
        self.obs.event(
            self.sim.now, "proxy.schedule",
            seq=schedule.seq, slots=len(schedule.slots),
            interval=schedule.interval,
        )
        self.obs.inc("proxy.schedules_broadcast")

    # -- interception (the IPQ analog) -----------------------------------------------

    def _intercept(self, packet: Packet, iface: Interface) -> bool:
        if packet.src.ip in self.client_ips:
            self.last_uplink[packet.src.ip] = self.sim.now
        if packet.proto == "tcp":
            return self._intercept_tcp(packet, iface)
        return self._intercept_udp(packet, iface)

    def _intercept_udp(self, packet: Packet, iface: Interface) -> bool:
        if packet.is_broadcast or packet.dst.ip == self.ip:
            return False  # local delivery path handles it
        if iface is self.lan and packet.dst.ip in self.client_ips:
            self.udp_packets_intercepted += 1
            self.queue_for(packet.dst.ip).push_udp(packet)
            return True
        return False  # uplink and transit traffic is bridged

    def _intercept_tcp(self, packet: Packet, iface: Interface) -> bool:
        if self.tcp_mode == "bridge":
            return False
        if self.tcp_mode == "passthrough":
            # The rejected design: hold the end-to-end connection's data
            # segments and burst them on schedule. Control packets
            # (handshake, ACKs, FINs) bridge through untouched.
            if (
                iface is self.lan
                and packet.dst.ip in self.client_ips
                and packet.payload_size > 0
            ):
                self.queue_for(packet.dst.ip).push_udp(packet)
                return True
            return False
        # Existing spoofed sockets (client- or server-side) first.
        if (packet.dst, packet.src) in self.tcp_connections:
            self.tcp_connections[(packet.dst, packet.src)].on_packet(packet)
            return True
        if (
            TcpFlags.SYN in packet.flags
            and TcpFlags.ACK not in packet.flags
            and packet.src.ip in self.client_ips
        ):
            self._split_connection(packet)
            return True
        return False

    # -- connection splitting (Figure 3) ------------------------------------------

    def _split_connection(self, syn: Packet) -> None:
        client_ep, server_ep = syn.src, syn.dst
        key = (client_ep, server_ep)
        if key in self._splits:
            return  # duplicate SYN for a split in progress
        self.tcp_connections_split += 1

        # Steps 2-3: terminate the client's connection here, speaking
        # with the server's address.
        client_side = TcpConnection(
            self, local=server_ep, remote=client_ep, state="SYN_RCVD"
        )
        # The proxy→client hop is one wireless cell with a ~2 ms RTT and
        # the burst slot (sized by the calibrated cost model) is already
        # the pacing authority. Slow-starting here would dribble a burst
        # out over several RTTs, letting one connection's tail segments
        # trail another connection's marked packet — so the client-side
        # socket sends at the full advertised window from the start.
        client_side.cwnd = client_side.peer_rwnd
        client_side.ssthresh = client_side.peer_rwnd
        # Steps 5-6: open our own connection to the server, speaking
        # with the client's address.
        server_side = TcpConnection.connect(
            self,
            remote=server_ep,
            local_port=client_ep.port,
            local_ip=client_ep.ip,
        )
        split = SplitConnection(
            client_ep=client_ep,
            server_ep=server_ep,
            client_side=client_side,
            server_side=server_side,
        )
        self._splits[key] = split
        self._splits_by_client.setdefault(client_ep.ip, []).append(split)
        self.queue_for(client_ep.ip)  # ensure the client is schedulable
        self._client_conns.setdefault(client_ep.ip, []).append(client_side)
        self.spoof_table.add_rule(
            FlowKey("tcp", client_ep, server_ep), new_dst=Endpoint(self.ip, server_ep.port)
        )
        self.spoof_table.add_rule(
            FlowKey("tcp", server_ep, client_ep), new_src=server_ep
        )

        client_side.on_data = lambda n, p, s=split: self._on_client_request(s, n, p)
        client_side.on_close = lambda c, s=split: self._on_client_close(s)
        server_side.on_segment_tx = lambda p, s=split: p.meta.update(s.request_meta)
        server_side.on_data = lambda n, p, s=split: self._on_server_data(s, n)
        server_side.on_close = lambda c, s=split: self._on_server_close(s)
        server_side.on_established = lambda c, s=split: self._on_server_ready(s)

        # Pre-create the marking controller so every data segment to the
        # client runs through the IPQ marking hook.
        self.burster.controller_for(client_side)
        # Feed the original SYN into the client-side connection (step 3:
        # it answers with a spoofed SYN-ACK). Delivered via _handle_syn,
        # exactly as TcpListener does for a fresh passive open.
        client_side._handle_syn(syn)

    # -- split plumbing --------------------------------------------------------

    def _on_client_request(
        self, split: SplitConnection, nbytes: int, packet: Packet
    ) -> None:
        """Client → server request bytes: relay upstream."""
        for key, value in packet.meta.items():
            split.request_meta.setdefault(key, value)
        if split.server_side.state == "ESTABLISHED":
            split.server_side.send(nbytes)
        else:
            split.pending_request_bytes += nbytes

    def _on_server_ready(self, split: SplitConnection) -> None:
        if split.pending_request_bytes:
            split.server_side.send(split.pending_request_bytes)
            split.pending_request_bytes = 0

    def _on_server_data(self, split: SplitConnection, nbytes: int) -> None:
        """Server → client data: buffer as credits for the next burst."""
        self.queue_for(split.client_ep.ip).push_tcp(split.client_side, nbytes)

    def _on_server_close(self, split: SplitConnection) -> None:
        split.server_closed = True
        self._maybe_finish(split)

    def _on_client_close(self, split: SplitConnection) -> None:
        if split.client_closed:
            return
        split.client_closed = True
        if split.server_side.state not in ("CLOSED",):
            split.server_side.close()
        self._teardown_if_done(split)

    def _maybe_finish(self, split: SplitConnection) -> None:
        """Close the client side once all buffered credits were handed over."""
        if not split.server_closed:
            return
        queue = self.queue_for(split.client_ep.ip)
        remaining = queue.bytes_pending_for(split.client_side)
        if remaining == 0 and split.client_side.fin_offset is None:
            if split.client_side.state not in ("CLOSED",):
                split.client_side.close()
            self._teardown_if_done(split)

    def finish_drained_splits(self, client_ip: str) -> None:
        """Called after each burst: progress half-closed splits."""
        for split in list(self._splits_by_client.get(client_ip, ())):
            if split.server_closed:
                self._maybe_finish(split)

    def _teardown_if_done(self, split: SplitConnection) -> None:
        key = (split.client_ep, split.server_ep)
        if (
            split.client_side.state == "CLOSED"
            and split.server_side.state == "CLOSED"
            and key in self._splits
        ):
            del self._splits[key]
            client_splits = self._splits_by_client.get(split.client_ep.ip, [])
            if split in client_splits:
                client_splits.remove(split)
            conns = self._client_conns.get(split.client_ep.ip, [])
            if split.client_side in conns:
                conns.remove(split.client_side)
            self.burster.forget(split.client_side)
            self.spoof_table.remove_flow(
                FlowKey("tcp", split.client_ep, split.server_ep)
            )
            self.spoof_table.remove_flow(
                FlowKey("tcp", split.server_ep, split.client_ep)
            )

    # -- shard migration (campus handoffs) ---------------------------------------

    def release_client(self, client_ip: str) -> tuple[list[QueueEntry], int]:
        """Strip every piece of per-client state for a shard handoff.

        Reserved for :class:`repro.campus.handoff.HandoffCoordinator`
        (enforced by analysis rule CAM001): cross-shard state must move
        through the coordinator so the shard-membership invariant stays
        checkable in one place.

        TCP splits do not survive a handoff — both spoofed connections
        are aborted and their buffered credits counted as dropped — so
        the return value is ``(surviving UDP entries in FIFO order,
        TCP bytes dropped)``.
        """
        self.client_ips.discard(client_ip)
        self.remove_route(client_ip)
        self.last_uplink.pop(client_ip, None)
        queue = self._queues.pop(client_ip, None)
        self._sorted_queues = None
        tcp_dropped = 0
        for split in self._splits_by_client.pop(client_ip, []):
            # Detach the teardown callbacks first: aborting one side
            # must not re-enter the normal close plumbing (which would
            # resurrect the queue we just popped).
            split.client_side.on_close = None
            split.server_side.on_close = None
            split.server_side.on_established = None
            if queue is not None:
                tcp_dropped += queue.drop_connection(split.client_side)
            tcp_dropped += (
                split.client_side.unsent_bytes
                + split.client_side.bytes_in_flight
            )
            split.client_side.abort()
            split.server_side.abort()
            self.burster.forget(split.client_side)
            self._splits.pop((split.client_ep, split.server_ep), None)
            self.spoof_table.remove_flow(
                FlowKey("tcp", split.client_ep, split.server_ep)
            )
            self.spoof_table.remove_flow(
                FlowKey("tcp", split.server_ep, split.client_ep)
            )
        self._client_conns.pop(client_ip, None)
        if queue is None:
            return [], tcp_dropped
        entries = []
        for entry in queue._entries:
            if entry.kind == "udp":
                entries.append(entry)
            else:
                tcp_dropped += entry.nbytes
        return entries, tcp_dropped

    def adopt_client(
        self, client_ip: str, entries: Sequence[QueueEntry] = ()
    ) -> None:
        """Adopt a roamed-in client and its migrated queue entries.

        Reserved for the handoff coordinator (analysis rule CAM001).
        """
        self.client_ips.add(client_ip)
        self.add_route(client_ip, self.air)
        queue = self.queue_for(client_ip)
        for entry in entries:
            queue.absorb(entry)
