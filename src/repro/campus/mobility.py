"""Seeded client roaming on an epoch grid.

One decision process for the whole campus: every ``epoch_s`` it visits
each client in index order and rolls that client's private
``mobility:{ip}`` stream once. A roll under ``roam_rate`` draws a
uniformly distributed *other* cell from the same stream and asks the
:class:`~repro.campus.handoff.HandoffCoordinator` to migrate the
client. Because each stream is exclusive and self-contained, one
client's trajectory is a pure function of ``(plan, seed, ip)`` — other
clients' roams, channel fades, and traffic cannot perturb it.

When the plan is disabled the model starts no process and creates no
streams, so a mobility-free campus run draws exactly the same random
numbers as the pre-campus sim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.campus.topology import MOBILITY_STREAM_PREFIX, MobilityPlan
from repro.errors import ConfigurationError
from repro.obs.recorder import NullRecorder, Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.random import RngStreams


class MobilityModel:
    """Tracks which cell each client is in and roams them on schedule."""

    def __init__(
        self,
        sim: "Simulator",
        plan: Optional[MobilityPlan],
        n_cells: int,
        client_ips: Sequence[str],
        streams: "RngStreams",
        on_roam: Callable[[str, int, int], None],
        obs: Optional[Recorder] = None,
        cell_label: Callable[[int], str] = lambda idx: f"c{idx}",
    ) -> None:
        if n_cells < 1:
            raise ConfigurationError(f"campus needs at least one cell: {n_cells!r}")
        self.sim = sim
        self.plan = plan
        self.n_cells = n_cells
        self.obs = obs if obs is not None else NullRecorder()
        self.cell_label = cell_label
        self._on_roam = on_roam
        #: Clients in fixed index order — the per-epoch visit order.
        self._client_ips = list(client_ips)
        #: Initial placement: client i starts in cell i % n_cells.
        self._cell_of: dict[str, int] = {
            ip: index % n_cells for index, ip in enumerate(self._client_ips)
        }
        #: Per-client residency timeline: [(time, cell_index), ...].
        self._timeline: dict[str, list[tuple[float, int]]] = {
            ip: [(0.0, cell)] for ip, cell in self._cell_of.items()
        }
        self.roams = 0
        self._rngs = None
        if plan is not None and plan.enabled:
            if n_cells < 2:
                raise ConfigurationError(
                    "mobility needs at least two cells to roam between"
                )
            self._rngs = [
                streams.get(f"{MOBILITY_STREAM_PREFIX}{ip}")
                for ip in self._client_ips
            ]

    def start(self) -> None:
        """Start the epoch process (no-op when mobility is disabled)."""
        if self._rngs is not None:
            self.sim.process(self._run())

    def cell_of(self, ip: str) -> int:
        """Index of the cell ``ip`` is currently assigned to."""
        return self._cell_of[ip]

    def residency(self) -> dict[str, tuple[tuple[float, str], ...]]:
        """Per-client residency timelines as ``(time, cell_label)`` steps."""
        return {
            ip: tuple((at, self.cell_label(cell)) for at, cell in steps)
            for ip, steps in self._timeline.items()
        }

    def _run(self):
        assert self.plan is not None and self._rngs is not None
        epoch_s = self.plan.epoch_s
        roam_rate = self.plan.roam_rate
        while True:
            yield self.sim.timeout(epoch_s)
            now = self.sim.now
            for ip, rng in zip(self._client_ips, self._rngs):
                # Exactly one decision draw per client per epoch.
                roll = rng.random()
                if roll >= roam_rate:
                    continue
                current = self._cell_of[ip]
                offset = int(rng.integers(1, self.n_cells))
                target = (current + offset) % self.n_cells
                self._cell_of[ip] = target
                self._timeline[ip].append((now, target))
                self.roams += 1
                self.obs.event(
                    now, "campus.roam",
                    client=ip,
                    from_cell=self.cell_label(current),
                    to_cell=self.cell_label(target),
                )
                self.obs.inc(
                    "campus.roams",
                    client=ip, to_cell=self.cell_label(target),
                )
                self._on_roam(ip, current, target)
