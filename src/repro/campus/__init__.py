"""Multi-cell campus topology: roaming clients over sharded proxies.

The paper's testbed is one access point, one proxy, and a handful of
laptops. This package scales the design out to a campus: N independent
cells (each with its own medium, AP, and proxy scheduler shard), a
seeded mobility process roaming clients between cells, and a handoff
coordinator migrating queue state and schedule membership between
shards. See DESIGN.md §15.
"""

from repro.campus.handoff import Cell, HandoffCoordinator
from repro.campus.mobility import MobilityModel
from repro.campus.topology import (
    MOBILITY_STREAM_PREFIX,
    CampusTopology,
    HandoffSpec,
    MobilityPlan,
)

__all__ = [
    "MOBILITY_STREAM_PREFIX",
    "CampusTopology",
    "Cell",
    "HandoffCoordinator",
    "HandoffSpec",
    "MobilityModel",
    "MobilityPlan",
]
