"""Shard-to-shard client migration (the campus handoff protocol).

All cross-shard state movement funnels through
:class:`HandoffCoordinator` — analysis rule CAM001 rejects direct calls
to the migration primitives (``release_client`` / ``adopt_client`` /
``forget_client``) anywhere else, so the shard-membership invariant
(every client belongs to exactly one proxy shard at every instant) is
maintained in exactly one place.

One handoff is four synchronous steps plus a timed radio gap:

1. the old cell's medium detaches the client's radio and marks the
   address *departed* (in-flight downlink frames die there as handoff
   misses instead of bouncing off the gateway);
2. the old proxy shard releases the client: UDP backlog comes out,
   TCP splits are aborted (they do not survive a handoff), and the old
   scheduler forgets its slot bookkeeping — the slot-release half of
   the SRP protocol;
3. the new shard adopts the client — queue membership re-registers it
   with the new cell's SRP loop on the next schedule build — and the
   campus hub reroutes the client's address to the new cell's uplink;
4. after ``latency_s`` of radio silence the client's interface attaches
   to the new cell's medium. Frames it misses during the gap, and any
   uplink it attempts, are charged to the handoff (the energy model
   sees the misses like any others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.campus.topology import HandoffSpec
from repro.errors import ConfigurationError
from repro.faults.counters import FaultCounters
from repro.obs.recorder import NullRecorder, Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import DynamicScheduler
    from repro.net.access_point import AccessPoint
    from repro.net.medium import WirelessMedium
    from repro.net.node import Interface, Node
    from repro.net.packet import Packet
    from repro.net.sniffer import MonitoringStation
    from repro.sim.core import Simulator

    from repro.core.proxy import TransparentProxy


@dataclass
class Cell:
    """One campus cell: its radio domain and its proxy shard."""

    index: int
    label: str
    medium: "WirelessMedium"
    ap: "AccessPoint"
    monitor: "MonitoringStation"
    proxy: "TransparentProxy"
    #: Installed by the runner once schedulers exist (scenario build
    #: wires topology only).
    scheduler: Optional["DynamicScheduler"] = None


class _DetachedRadio:
    """The channel a client sees mid-handoff: nothing.

    Uplink transmissions during the radio gap are swallowed (and
    counted) instead of raising — the client daemons legitimately keep
    trying to send feedback while they re-associate.
    """

    def __init__(self, coordinator: "HandoffCoordinator") -> None:
        self._coordinator = coordinator

    def transmit(self, src_iface: "Interface", packet: "Packet") -> None:
        self._coordinator.gap_tx_drops += 1
        self._coordinator.counters.incr("campus.gap_tx_drop")


class HandoffCoordinator:
    """Migrates roaming clients between cells atomically."""

    def __init__(
        self,
        sim: "Simulator",
        cells: list[Cell],
        hub: "Node",
        uplinks: list["Interface"],
        client_ifaces: dict[str, "Interface"],
        spec: HandoffSpec,
        obs: Optional[Recorder] = None,
        counters: Optional[FaultCounters] = None,
    ) -> None:
        if len(cells) < 2:
            raise ConfigurationError(
                "a handoff coordinator needs at least two cells"
            )
        if len(uplinks) != len(cells):
            raise ConfigurationError(
                f"need one hub uplink per cell: "
                f"{len(uplinks)} uplinks, {len(cells)} cells"
            )
        self.sim = sim
        self.cells = cells
        self.hub = hub
        self.uplinks = uplinks
        self.client_ifaces = client_ifaces
        self.spec = spec
        self.obs = obs if obs is not None else NullRecorder()
        self.counters = counters if counters is not None else FaultCounters()
        self._gap = _DetachedRadio(self)
        #: Supersession guard: a second roam during the radio gap
        #: invalidates the first gap's pending attach.
        self._generation: dict[str, int] = {}
        self.handoffs = 0
        self.bytes_transferred = 0
        self.bytes_dropped = 0
        self.gap_tx_drops = 0

    def handoff(self, client_ip: str, old_index: int, new_index: int) -> None:
        """Move one client's radio, queue state, and schedule membership."""
        if old_index == new_index:
            raise ConfigurationError(
                f"handoff to the same cell: {client_ip} in cell {old_index}"
            )
        old = self.cells[old_index]
        new = self.cells[new_index]
        iface = self.client_ifaces[client_ip]
        now = self.sim.now

        # Step 1: silence the radio. A roam during a still-open gap
        # finds the interface already detached.
        if iface.channel is old.medium:
            old.medium.detach(iface)
        old.medium.departed.add(client_ip)
        iface.channel = self._gap

        # Step 2: release the old shard's state (slot release + SRP
        # deregistration happen on the old scheduler's next interval).
        entries, dropped = old.proxy.release_client(client_ip)
        if old.scheduler is not None:
            old.scheduler.forget_client(client_ip)

        # Step 3: migrate the backlog and re-register with the new shard.
        if self.spec.policy == "transfer":
            moved = entries
        else:  # drain: the new cell starts clean
            dropped += sum(entry.nbytes for entry in entries)
            moved = []
        transferred = sum(entry.nbytes for entry in moved)
        new.proxy.adopt_client(client_ip, moved)
        self.hub.add_route(client_ip, self.uplinks[new_index])

        self.handoffs += 1
        self.bytes_transferred += transferred
        self.bytes_dropped += dropped
        self.counters.incr("campus.handoff")
        self.obs.event(
            now, "campus.handoff",
            client=client_ip,
            from_cell=old.label, to_cell=new.label,
            transferred=transferred, dropped=dropped,
        )
        self.obs.inc("campus.handoffs", client=client_ip, to_cell=new.label)
        self.obs.span(
            now, now + self.spec.latency_s, "handoff", f"client {client_ip}",
            from_cell=old.label, to_cell=new.label,
        )

        # Step 4: re-attach after the radio gap (unless superseded).
        generation = self._generation.get(client_ip, 0) + 1
        self._generation[client_ip] = generation

        def complete() -> None:
            if self._generation[client_ip] != generation:
                return
            iface.channel = None
            new.medium.attach(iface)

        self.sim.call_later(self.spec.latency_s, complete)
