"""Declarative multi-cell campus topology.

The paper's testbed is one access point and a handful of laptops; the
campus layer scales that design out: N independent cells, each with its
own medium, AP, and proxy scheduler shard, plus a seeded mobility
process that roams clients between cells on an epoch grid.

Like :class:`~repro.net.channel.ChannelPlan`, the topology is a frozen,
dict-round-trippable value object — the sweep engine content-addresses
runs by their canonical config JSON, so everything that changes physics
must serialize.

Determinism contract (same "exclusive stream" rule the channel model
uses): each client's roam decisions draw only from its own reserved
stream ``mobility:{ip}``, exactly one decision draw per epoch, so the
trajectory of one client is a pure function of ``(plan, seed, ip)`` and
disabling mobility removes the streams entirely — which is what makes a
1-cell campus replay byte-identical to the pre-campus sim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import ms

#: Stream-name prefix reserved for the mobility model (exclusive).
MOBILITY_STREAM_PREFIX = "mobility:"

#: Upper bound on cells — a campus, not a continent; keeps layouts sane.
MAX_CELLS = 32

#: Handoff queue-migration policies.
HANDOFF_POLICIES = ("transfer", "drain")


@dataclass(frozen=True)
class MobilityPlan:
    """Seeded roaming process shared by every client.

    Each epoch, each client independently roams with probability
    ``roam_rate`` to a uniformly chosen *other* cell. One decision draw
    per client per epoch regardless of outcome, so draw counts depend
    only on elapsed epochs — never on other clients' trajectories.
    """

    roam_rate: float = 0.0
    epoch_s: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.roam_rate <= 1.0:
            raise ConfigurationError(
                f"mobility roam_rate must be a probability: {self.roam_rate!r}"
            )
        if self.epoch_s <= 0:
            raise ConfigurationError(
                f"mobility epoch must be positive: {self.epoch_s!r}"
            )

    @property
    def enabled(self) -> bool:
        """True when the plan actually moves anyone."""
        return self.roam_rate > 0.0

    def to_dict(self) -> dict:
        return {"roam_rate": self.roam_rate, "epoch_s": self.epoch_s}

    @classmethod
    def from_dict(cls, data: dict) -> "MobilityPlan":
        known = {"roam_rate", "epoch_s"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown mobility plan keys: {', '.join(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class HandoffSpec:
    """How a roam migrates client state between proxy shards.

    ``transfer`` moves the old shard's pending UDP backlog into the new
    shard's queue (bytes survive, latency is charged); ``drain`` drops
    it (the new cell starts clean). TCP splits never survive a handoff
    — the split connections are torn down and the client re-fetches —
    matching the paper's observation that the proxy holds per-client
    soft state only. ``latency_s`` is the radio gap: the client is
    attached to neither medium while it elapses, and frames addressed
    to it during the gap are missed (fed to the energy model like any
    other miss).
    """

    policy: str = "transfer"
    latency_s: float = ms(20)

    def __post_init__(self) -> None:
        if self.policy not in HANDOFF_POLICIES:
            raise ConfigurationError(
                f"unknown handoff policy {self.policy!r}; "
                f"expected one of {', '.join(HANDOFF_POLICIES)}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"handoff latency must be non-negative: {self.latency_s!r}"
            )

    def to_dict(self) -> dict:
        return {"policy": self.policy, "latency_s": self.latency_s}

    @classmethod
    def from_dict(cls, data: dict) -> "HandoffSpec":
        known = {"policy", "latency_s"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown handoff spec keys: {', '.join(unknown)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class CampusTopology:
    """N cells, an optional mobility process, and a handoff policy.

    ``n_cells == 1`` with mobility absent (or disabled) is the
    *trivial* campus: scenario construction collapses to the legacy
    single-AP build and replays stay byte-identical.
    """

    n_cells: int = 1
    mobility: Optional[MobilityPlan] = None
    handoff: HandoffSpec = field(default_factory=HandoffSpec)

    def __post_init__(self) -> None:
        if not isinstance(self.n_cells, int) or isinstance(self.n_cells, bool):
            raise ConfigurationError(
                f"campus n_cells must be an int: {self.n_cells!r}"
            )
        if not 1 <= self.n_cells <= MAX_CELLS:
            raise ConfigurationError(
                f"campus n_cells must be in [1, {MAX_CELLS}]: {self.n_cells!r}"
            )
        if self.n_cells == 1 and self.mobility is not None and self.mobility.enabled:
            raise ConfigurationError(
                "mobility needs at least two cells to roam between"
            )

    @property
    def trivial(self) -> bool:
        """True when this topology is the legacy single-AP layout."""
        return self.n_cells == 1 and (
            self.mobility is None or not self.mobility.enabled
        )

    def to_dict(self) -> dict:
        return {
            "n_cells": self.n_cells,
            "mobility": None if self.mobility is None else self.mobility.to_dict(),
            "handoff": self.handoff.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampusTopology":
        known = {"n_cells", "mobility", "handoff"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown campus topology keys: {', '.join(unknown)}"
            )
        mobility = data.get("mobility")
        handoff = data.get("handoff")
        return cls(
            n_cells=data.get("n_cells", 1),
            mobility=(
                None if mobility is None else MobilityPlan.from_dict(mobility)
            ),
            handoff=(
                HandoffSpec()
                if handoff is None
                else HandoffSpec.from_dict(handoff)
            ),
        )
