"""The monitoring station — a promiscuous wireless sniffer.

The paper ran tcpdump on a dedicated laptop and fed the capture to a
postmortem simulator. :class:`MonitoringStation` plays the same role: a
promiscuous station on the wireless medium that records every frame it
hears as a :class:`FrameRecord`. The energy analyzer
(:mod:`repro.energy.analyzer`) consumes this capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.core import Simulator


@dataclass(slots=True, unsafe_hash=True)
class FrameRecord:
    """One captured wireless frame (a tcpdump line, in spirit).

    ``start``/``end`` bracket the frame's airtime; energy attribution
    charges receive power for that interval to the addressed client.
    Treat records as immutable — the class is not ``frozen`` only
    because the frozen ``__setattr__`` detour made the per-frame
    capture allocation (one per frame heard, ~75k per quick sweep) a
    measurable profile line; ``unsafe_hash`` keeps the frozen variant's
    value hashing.
    """

    start: float
    end: float
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    proto: str
    wire_size: int
    payload_size: int
    tos_marked: bool
    broadcast: bool
    packet_id: int
    sender: str
    #: Decoded schedule payload for schedule broadcasts (None for data
    #: frames). A real tcpdump capture contains the schedule bytes; the
    #: postmortem replay (repro.energy.replay) needs them decoded.
    schedule_meta: Optional[dict] = None
    #: Campus cell the frame was heard in ("" outside campus runs).
    cell: str = ""


class MonitoringStation(Node):
    """A passive, promiscuous wireless capture station."""

    def __init__(self, sim: Simulator, name: str = "monitor") -> None:
        super().__init__(sim, name, ip="0.0.0.0")
        self.wireless = self.add_interface("wireless")
        self.wireless.promiscuous = True
        self._frames: list[FrameRecord] = []
        self.taps.append(self._capture)
        self._medium: Optional[WirelessMedium] = None

    def attach_to(self, medium: WirelessMedium) -> None:
        """Join the wireless cell in monitor mode."""
        medium.attach(self.wireless)
        self._medium = medium

    def _capture(self, packet: Packet, iface) -> bool:
        end = self.sim.now
        airtime = (
            self._medium.airtime(packet.wire_size)
            if self._medium is not None
            else 0.0
        )
        self._frames.append(
            FrameRecord(
                start=end - airtime,
                end=end,
                src_ip=packet.src.ip,
                src_port=packet.src.port,
                dst_ip=packet.dst.ip,
                dst_port=packet.dst.port,
                proto=packet.proto,
                wire_size=packet.wire_size,
                payload_size=packet.payload_size,
                tos_marked=packet.tos_marked,
                broadcast=packet.is_broadcast,
                packet_id=packet.packet_id,
                sender="",
                schedule_meta=(
                    dict(packet.meta) if "schedule" in packet.meta else None
                ),
                cell=self._medium.cell if self._medium is not None else "",
            )
        )
        return True  # consume: the monitor never forwards or responds

    # -- capture access -------------------------------------------------------

    @property
    def frames(self) -> tuple[FrameRecord, ...]:
        """Every captured frame, in capture order."""
        return tuple(self._frames)

    def frames_to(self, ip: str, include_broadcast: bool = True) -> Iterator[FrameRecord]:
        """Frames addressed to ``ip`` (optionally including broadcasts)."""
        for frame in self._frames:
            if frame.dst_ip == ip or (include_broadcast and frame.broadcast):
                yield frame

    def frames_from(self, ip: str) -> Iterator[FrameRecord]:
        """Frames transmitted by ``ip``."""
        for frame in self._frames:
            if frame.src_ip == ip:
                yield frame

    def bytes_captured(self) -> int:
        """Total wire bytes heard."""
        return sum(frame.wire_size for frame in self._frames)
