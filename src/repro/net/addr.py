"""Addresses, endpoints and flow keys.

Addresses are plain strings ("10.0.0.3") — the library never parses
octets, it only compares addresses for equality, so any hashable string
works. An :class:`Endpoint` pairs an address with a port; a
:class:`FlowKey` is the classic 5-tuple used to demultiplex TCP
connections and to key the proxy's spoof table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AddressError

#: Destination address of link-local broadcasts (the schedule packets).
BROADCAST_IP = "255.255.255.255"


@dataclass(frozen=True, slots=True)
class Endpoint:
    """An (address, port) pair."""

    ip: str
    port: int

    def __post_init__(self) -> None:
        if not self.ip:
            raise AddressError("endpoint needs a non-empty ip")
        if not 0 < self.port < 65536:
            raise AddressError(f"port out of range: {self.port!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.ip}:{self.port}"


@dataclass(frozen=True, slots=True)
class FlowKey:
    """Protocol 5-tuple identifying one direction of a flow."""

    proto: str
    src: Endpoint
    dst: Endpoint

    def reversed(self) -> "FlowKey":
        """The same flow seen from the other direction."""
        return FlowKey(self.proto, self.dst, self.src)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.proto} {self.src} -> {self.dst}"
