"""The wireless access point.

The AP bridges the wired distribution network and the wireless cell.
Forwarding preserves FIFO order but adds a random per-packet processing
delay — the paper's §3.3 observes that "all packets must pass through
the access point [which] can cause a packet to arrive earlier or later
than expected", and this delay is exactly what the clients' delay
compensation algorithms must absorb.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from collections import deque

from repro.net.addr import BROADCAST_IP
from repro.net.node import Interface, Node
from repro.net.packet import Packet
from repro.obs.metrics import DEPTH_BUCKETS
from repro.obs.recorder import Recorder
from repro.sim.core import Simulator
from repro.sim.trace import TraceRecorder
from repro.units import ms, us

#: Default mean of the exponential forwarding jitter.
DEFAULT_JITTER_MEAN_S = us(900)
#: Default probability of a slow-path forwarding spike.
DEFAULT_SPIKE_PROB = 0.03
#: Default maximum extra delay of a spike (uniform on [0, max]).
DEFAULT_SPIKE_MAX_S = ms(6)
#: Fixed base forwarding latency.
DEFAULT_BASE_DELAY_S = us(300)


class _ForwardPath:
    """One store-and-forward direction of the AP.

    A callback chain rather than a ``Store``-fed generator process —
    every packet of every flow crosses the AP, so this is one of the
    busiest spots in a sweep. The heap-push pattern matches the old
    generator exactly (one wakeup push when an idle path accepts a
    packet, one jitter-delay push per packet, one wakeup push when a
    send finds the queue non-empty; the jitter RNG is drawn when the
    wakeup fires), so schedules stay byte-identical. ``queue`` holds
    waiting packets only — the packet being delayed is ``_in_flight``,
    mirroring how the old Store handed the head item to the waiting
    getter immediately.
    """

    __slots__ = ("ap", "out_iface", "queue", "busy", "_in_flight")

    def __init__(self, ap: "AccessPoint", out_iface: Interface) -> None:
        self.ap = ap
        self.out_iface = out_iface
        self.queue: deque[Packet] = deque()
        self.busy = False
        self._in_flight: Optional[Packet] = None

    def accept(self, packet: Packet) -> None:
        if self.busy:
            self.queue.append(packet)
        else:
            self.busy = True
            self._in_flight = packet
            self.ap.sim.call_later(0.0, self._delay)

    def _delay(self) -> None:
        self.ap.sim.call_later(self.ap._forwarding_delay(), self._send)

    def _send(self) -> None:
        self.out_iface.send(self._in_flight)
        if self.queue:
            self._in_flight = self.queue.popleft()
            self.ap.sim.call_later(0.0, self._delay)
        else:
            self._in_flight = None
            self.busy = False


class AccessPoint(Node):
    """A store-and-forward AP with jittery but order-preserving forwarding."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: str,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        base_delay_s: float = DEFAULT_BASE_DELAY_S,
        jitter_mean_s: float = DEFAULT_JITTER_MEAN_S,
        spike_prob: float = DEFAULT_SPIKE_PROB,
        spike_max_s: float = DEFAULT_SPIKE_MAX_S,
        obs: Optional[Recorder] = None,
    ) -> None:
        super().__init__(sim, name, ip, trace=trace, obs=obs)
        self.forwarding = True
        self.rng = rng
        self.base_delay_s = base_delay_s
        self.jitter_mean_s = jitter_mean_s
        self.spike_prob = spike_prob
        self.spike_max_s = spike_max_s
        self.wired = self.add_interface("wired")
        self.wireless = self.add_interface("wireless")
        # The AP's own broadcasts (e.g. PSM beacons) go on the air.
        self.add_route(BROADCAST_IP, self.wireless)
        self._downlink = _ForwardPath(self, self.wireless)
        self._uplink = _ForwardPath(self, self.wired)
        self.max_downlink_depth = 0
        # Resolved on first downlink forward — eager resolution would
        # register zero-count instruments in traffic-less scenarios and
        # change metrics snapshots.
        self._depth_hist = None
        self._max_depth_gauge = None

    def on_receive(self, in_iface: Interface, packet: Packet) -> None:
        """Receive, but relay wired-side broadcasts into the cell first.

        The proxy broadcasts its schedule messages from the wired side;
        a real AP bridges them onto the air, so ours must too (it also
        still dispatches them locally, as the base class does).
        """
        if packet.is_broadcast and in_iface is self.wired:
            self.forward(in_iface, packet)
        super().on_receive(in_iface, packet)

    def forward(self, in_iface: Interface, packet: Packet) -> None:
        """Queue a transit packet on the appropriate forwarding path."""
        self.packets_forwarded += 1
        if in_iface is self.wired:
            path = self._downlink
            path.accept(packet)
            depth = len(path.queue)
            if depth > self.max_downlink_depth:
                self.max_downlink_depth = depth
            hist = self._depth_hist
            if hist is None:
                hist = self._depth_hist = self.obs.resolve_histogram(
                    "ap.downlink_depth", buckets=DEPTH_BUCKETS, ap=self.name
                )
                self._max_depth_gauge = self.obs.resolve_gauge(
                    "ap.max_downlink_depth", ap=self.name
                )
            hist.observe(depth)
            self._max_depth_gauge.set(self.max_downlink_depth)
        else:
            self._uplink.accept(packet)

    def _forwarding_delay(self) -> float:
        delay = self.base_delay_s
        if self.rng is not None:
            if self.jitter_mean_s > 0:
                delay += self.rng.exponential(self.jitter_mean_s)
            if self.spike_prob > 0 and self.rng.random() < self.spike_prob:
                delay += self.rng.uniform(0.0, self.spike_max_s)
        return delay
