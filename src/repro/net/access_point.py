"""The wireless access point.

The AP bridges the wired distribution network and the wireless cell.
Forwarding preserves FIFO order but adds a random per-packet processing
delay — the paper's §3.3 observes that "all packets must pass through
the access point [which] can cause a packet to arrive earlier or later
than expected", and this delay is exactly what the clients' delay
compensation algorithms must absorb.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.net.addr import BROADCAST_IP
from repro.net.node import Interface, Node
from repro.net.packet import Packet
from repro.obs.metrics import DEPTH_BUCKETS
from repro.obs.recorder import Recorder
from repro.sim.core import Simulator
from repro.sim.resources import Store
from repro.sim.trace import TraceRecorder
from repro.units import ms, us

#: Default mean of the exponential forwarding jitter.
DEFAULT_JITTER_MEAN_S = us(900)
#: Default probability of a slow-path forwarding spike.
DEFAULT_SPIKE_PROB = 0.03
#: Default maximum extra delay of a spike (uniform on [0, max]).
DEFAULT_SPIKE_MAX_S = ms(6)
#: Fixed base forwarding latency.
DEFAULT_BASE_DELAY_S = us(300)


class AccessPoint(Node):
    """A store-and-forward AP with jittery but order-preserving forwarding."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ip: str,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        base_delay_s: float = DEFAULT_BASE_DELAY_S,
        jitter_mean_s: float = DEFAULT_JITTER_MEAN_S,
        spike_prob: float = DEFAULT_SPIKE_PROB,
        spike_max_s: float = DEFAULT_SPIKE_MAX_S,
        obs: Optional[Recorder] = None,
    ) -> None:
        super().__init__(sim, name, ip, trace=trace, obs=obs)
        self.forwarding = True
        self.rng = rng
        self.base_delay_s = base_delay_s
        self.jitter_mean_s = jitter_mean_s
        self.spike_prob = spike_prob
        self.spike_max_s = spike_max_s
        self.wired = self.add_interface("wired")
        self.wireless = self.add_interface("wireless")
        # The AP's own broadcasts (e.g. PSM beacons) go on the air.
        self.add_route(BROADCAST_IP, self.wireless)
        self._downlink: Store = Store(sim)
        self._uplink: Store = Store(sim)
        sim.process(self._forwarder(self._downlink, self.wireless))
        sim.process(self._forwarder(self._uplink, self.wired))
        self.max_downlink_depth = 0

    def on_receive(self, in_iface: Interface, packet: Packet) -> None:
        """Receive, but relay wired-side broadcasts into the cell first.

        The proxy broadcasts its schedule messages from the wired side;
        a real AP bridges them onto the air, so ours must too (it also
        still dispatches them locally, as the base class does).
        """
        if packet.is_broadcast and in_iface is self.wired:
            self.forward(in_iface, packet)
        super().on_receive(in_iface, packet)

    def forward(self, in_iface: Interface, packet: Packet) -> None:
        """Queue a transit packet on the appropriate forwarding path."""
        self.packets_forwarded += 1
        if in_iface is self.wired:
            self._downlink.put(packet)
            depth = len(self._downlink)
            self.max_downlink_depth = max(self.max_downlink_depth, depth)
            self.obs.observe(
                "ap.downlink_depth", depth, buckets=DEPTH_BUCKETS,
                ap=self.name,
            )
            self.obs.gauge_set(
                "ap.max_downlink_depth", self.max_downlink_depth,
                ap=self.name,
            )
        else:
            self._uplink.put(packet)

    def _forwarding_delay(self) -> float:
        delay = self.base_delay_s
        if self.rng is not None:
            if self.jitter_mean_s > 0:
                delay += self.rng.exponential(self.jitter_mean_s)
            if self.spike_prob > 0 and self.rng.random() < self.spike_prob:
                delay += self.rng.uniform(0.0, self.spike_max_s)
        return delay

    def _forwarder(self, queue: Store, out_iface: Interface):
        while True:
            packet = yield queue.get()
            yield self.sim.timeout(self._forwarding_delay())
            out_iface.send(packet)
