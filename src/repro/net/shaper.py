"""DummyNet-style traffic shaping (Rizzo, CCR 1997).

The paper validates its packet-drop analysis by pushing a TCP transfer
through DummyNet configured as a 4 Mb/s pipe with a 2 ms round-trip
time and a 5 % drop rate. :class:`DummyNetPipe` reproduces that
configuration knob-for-knob as a specialized link.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.faults.counters import FaultCounters
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.core import Simulator


class DummyNetPipe(Link):
    """A bandwidth/delay/loss pipe: ``pipe config bw X delay Y plr Z``.

    Args:
        sim: owning simulator.
        bandwidth_bps: pipe bandwidth.
        delay_s: one-way delay (DummyNet's ``delay`` is per direction).
        plr: packet loss rate in [0, 1).
        rng: generator used for loss draws (required when plr > 0).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        delay_s: float = 0.0,
        plr: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        counters: Optional[FaultCounters] = None,
    ) -> None:
        if not 0.0 <= plr < 1.0:
            raise NetworkError(f"plr must be in [0, 1), got {plr!r}")
        if plr > 0.0 and rng is None:
            raise NetworkError("plr > 0 requires an rng")
        self.plr = plr
        self._rng = rng
        drop = self._maybe_drop if plr > 0.0 else None
        super().__init__(
            sim, rate_bps=bandwidth_bps, latency=delay_s, drop=drop,
            counters=counters, drop_key="shaper.dropped",
        )

    def _maybe_drop(self, packet: Packet) -> bool:
        return bool(self._rng.random() < self.plr)
