"""Per-client multi-state wireless channel (seeded Gilbert–Elliott).

The fault injectors in :mod:`repro.faults` model one shared impairment
on the cell; mobile clients, though, fade *individually* — one laptop
behind a pillar sees a bad channel while its neighbors stay clean. The
channel model keeps one two-state Gilbert–Elliott chain per client
(reusing :class:`~repro.faults.injectors.GilbertElliottChain`), stepped
on a fixed epoch grid so the state at any simulated time is a pure
function of ``(plan, seed, client)``.

Determinism contract (the "exclusive stream" fix): every chain draws
transitions from its own named stream ``channel:{ip}`` and per-frame
loss coin flips from ``channel-loss:{ip}``. Nothing else touches those
names, and the channel touches no other stream — so installing (or
removing) channel modeling can never perturb an existing fault-plan
replay, and frame-count changes can never perturb the state trajectory.

The medium consults :meth:`ChannelModel.tx_blocked` /
:meth:`ChannelModel.rx_blocked` per frame; the proxy reads
:meth:`ChannelModel.state_good` at schedule-construction time — the
observability hook that makes channel-aware policies possible without
giving the proxy clairvoyance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import ConfigurationError
from repro.faults.injectors import GilbertElliottChain
from repro.faults.plan import GilbertElliottSpec
from repro.net.packet import Packet
from repro.obs.recorder import NullRecorder, Recorder
from repro.units import ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.random import RngStreams

from dataclasses import dataclass

#: Stream-name prefixes reserved for the channel model (exclusive).
TRANSITION_STREAM_PREFIX = "channel:"
LOSS_STREAM_PREFIX = "channel-loss:"


@dataclass(frozen=True)
class ChannelPlan:
    """Declarative description of the per-client channel processes.

    All clients share the same chain parameters but evolve on
    independent streams. ``epoch_s`` is the transition grid: one chain
    step per epoch, independent of how many frames fly (geometric
    bad-state dwell of mean ``epoch_s / p_bad_good`` seconds).
    ``loss_good``/``loss_bad`` are per-frame loss rates in each state.
    """

    p_good_bad: float = 0.05
    p_bad_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.9
    epoch_s: float = ms(100)
    start_good: bool = True

    def __post_init__(self) -> None:
        for label, value in (
            ("p_good_bad", self.p_good_bad),
            ("p_bad_good", self.p_bad_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"channel {label} must be a probability: {value!r}"
                )
        if self.epoch_s <= 0:
            raise ConfigurationError(
                f"channel epoch must be positive: {self.epoch_s!r}"
            )

    @property
    def spec(self) -> GilbertElliottSpec:
        """The equivalent fault-layer chain specification."""
        return GilbertElliottSpec(
            p_good_bad=self.p_good_bad,
            p_bad_good=self.p_bad_good,
            loss_good=self.loss_good,
            loss_bad=self.loss_bad,
        )

    def to_dict(self) -> dict:
        return {
            "p_good_bad": self.p_good_bad,
            "p_bad_good": self.p_bad_good,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
            "epoch_s": self.epoch_s,
            "start_good": self.start_good,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChannelPlan":
        known = {
            "p_good_bad", "p_bad_good", "loss_good", "loss_bad",
            "epoch_s", "start_good",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown channel plan keys: {', '.join(unknown)}"
            )
        return cls(**data)


class _ClientChannel:
    """One client's chain plus its private draw streams."""

    __slots__ = ("chain", "loss_rng", "epoch", "bad_since")

    def __init__(self, chain: GilbertElliottChain, loss_rng) -> None:
        self.chain = chain
        self.loss_rng = loss_rng
        self.epoch = 0
        #: Epoch-grid time the current bad dwell began (None when good).
        self.bad_since: Optional[float] = None


class ChannelModel:
    """The per-client channel processes, advanced lazily on demand.

    State queries advance each chain to ``floor(now / epoch_s)`` one
    epoch at a time, emitting a ``channel.transition`` event and a
    ``channel`` track span per bad dwell — the per-client channel-state
    timeline the goldens pin.
    """

    def __init__(
        self,
        plan: ChannelPlan,
        streams: "RngStreams",
        client_ips: Sequence[str],
        obs: Optional[Recorder] = None,
    ) -> None:
        if not client_ips:
            raise ConfigurationError("channel model needs at least one client")
        self.plan = plan
        self.obs = obs if obs is not None else NullRecorder()
        self._clients: dict[str, _ClientChannel] = {}
        for ip in client_ips:
            chain = GilbertElliottChain(
                plan.spec,
                streams.get(f"{TRANSITION_STREAM_PREFIX}{ip}"),
                bad=not plan.start_good,
            )
            state = _ClientChannel(
                chain, streams.get(f"{LOSS_STREAM_PREFIX}{ip}")
            )
            if chain.bad:
                state.bad_since = 0.0
            self._clients[ip] = state
        self.transitions = 0
        self.tx_losses = 0
        self.rx_misses = 0

    @property
    def client_ips(self) -> tuple[str, ...]:
        return tuple(sorted(self._clients))

    def models(self, ip: str) -> bool:
        """True when ``ip`` has a channel process."""
        return ip in self._clients

    def _advance(self, state: _ClientChannel, ip: str, now: float) -> None:
        target = int(now / self.plan.epoch_s)
        while state.epoch < target:
            state.epoch += 1
            was_bad = state.chain.bad
            bad = state.chain.step()
            if bad == was_bad:
                continue
            at = state.epoch * self.plan.epoch_s
            self.transitions += 1
            self.obs.event(
                at, "channel.transition",
                client=ip, state="bad" if bad else "good",
            )
            self.obs.inc(
                "channel.transitions",
                client=ip, to="bad" if bad else "good",
            )
            if bad:
                state.bad_since = at
            else:
                if state.bad_since is not None:
                    self.obs.span(
                        state.bad_since, at, "bad", f"channel {ip}",
                    )
                state.bad_since = None

    def state_good(self, client_ip: str, now: float) -> bool:
        """Current channel state of one client (True = good).

        Unmodeled addresses (the AP, servers, the proxy) are always
        good — the model covers the mobile clients only.
        """
        state = self._clients.get(client_ip)
        if state is None:
            return True
        self._advance(state, client_ip, now)
        return not state.chain.bad

    def _frame_lost(self, state: _ClientChannel, ip: str, now: float) -> bool:
        self._advance(state, ip, now)
        loss = state.chain.loss_rate
        return loss > 0.0 and bool(state.loss_rng.random() < loss)

    def tx_blocked(self, now: float, packet: Packet) -> bool:
        """Sender-side check: a modeled client's uplink frame fades."""
        state = self._clients.get(packet.src.ip)
        if state is None:
            return False
        if self._frame_lost(state, packet.src.ip, now):
            self.tx_losses += 1
            return True
        return False

    def rx_blocked(self, now: float, client_ip: str) -> bool:
        """Receiver-side check: a frame toward ``client_ip`` fades."""
        state = self._clients.get(client_ip)
        if state is None:
            return False
        if self._frame_lost(state, client_ip, now):
            self.rx_misses += 1
            return True
        return False
