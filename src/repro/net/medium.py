"""Shared half-duplex wireless medium (the 802.11b cell).

One frame is in the air at a time; stations queue FIFO for the channel.
Every attached station *hears* every frame: unicast frames are consumed
by the addressed station (or by the gateway — the access point — when
the destination is not a wireless station), broadcast frames by
everyone, and promiscuous stations (the monitoring station) record all
of them. A station whose receive gate is closed (WNIC asleep) misses
frames addressed to it; the medium records those misses, which is how
packet loss enters the evaluation.

The airtime model is ``overhead + wire_size * 8 / rate`` plus a random
contention backoff, which for 1500-byte frames on an 11 Mbps channel
yields the ~4-5 Mbps effective goodput the paper reports.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.errors import NetworkError
from repro.faults.counters import FaultCounters
from repro.net.node import Interface
from repro.net.packet import Packet
from repro.obs.metrics import BYTES_BUCKETS
from repro.obs.recorder import Recorder
from repro.sim.core import Simulator
from repro.sim.trace import TraceRecorder
from repro.units import ms, transmit_time

#: Default nominal channel rate (802.11b).
DEFAULT_RATE_BPS = 11e6
#: Default fixed per-frame MAC/PHY overhead (preamble, SIFS, MAC ACK).
DEFAULT_FRAME_OVERHEAD_S = ms(0.8)
#: Default upper bound of the uniform contention backoff.
DEFAULT_MAX_BACKOFF_S = ms(0.4)


class WirelessMedium:
    """A shared wireless channel connecting the AP and the clients."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float = DEFAULT_RATE_BPS,
        frame_overhead_s: float = DEFAULT_FRAME_OVERHEAD_S,
        max_backoff_s: float = DEFAULT_MAX_BACKOFF_S,
        rng: Optional[np.random.Generator] = None,
        trace: Optional[TraceRecorder] = None,
        drop: Optional[Callable[[Packet], bool]] = None,
        counters: Optional[FaultCounters] = None,
        obs: Optional[Recorder] = None,
    ) -> None:
        if rate_bps <= 0:
            raise NetworkError(f"medium rate must be positive: {rate_bps!r}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.frame_overhead_s = frame_overhead_s
        self.max_backoff_s = max_backoff_s
        self.rng = rng
        self.obs = obs if obs is not None else Recorder.wrap(trace)
        self.trace = self.obs.trace if trace is None else trace
        self.drop = drop
        self.counters = counters if counters is not None else FaultCounters()
        #: Optional fault-injection pipeline (see :mod:`repro.faults`);
        #: consulted per frame after airtime, before delivery.
        self.faults = None
        #: Optional per-client channel model (see
        #: :mod:`repro.net.channel`): a client in the bad state loses
        #: uplink frames on transmit and downlink frames at its antenna.
        #: Draws live on exclusive ``channel*`` streams, so installing
        #: one never perturbs fault-plan or backoff replays.
        self.channel = None
        self._stations: list[Interface] = []
        self._station_ips: set[str] = set()
        #: Clients that roamed away mid-flight: frames addressed to them
        #: die in this cell instead of bouncing off the gateway. Empty
        #: (and free) outside campus runs.
        self.departed: set[str] = set()
        #: Campus cell label ("" outside campus runs); when set, frame
        #: events and miss counters carry a ``cell`` label.
        self.cell = ""
        self._cell_fields: dict[str, str] = {}
        #: Per-proto (frames counter, frame-bytes histogram) handles,
        #: resolved on first use (see Recorder.resolve_*).
        self._frame_handles: dict[str, tuple] = {}
        self._gateway: Optional[Interface] = None
        self._queue: deque[tuple[Interface, Packet]] = deque()
        #: Buffered contention-backoff draws. ``rng`` ("medium-backoff")
        #: is exclusive to this draw site, and numpy fills an array with
        #: the same bitstream consumption as repeated scalar draws, so
        #: chunked refills yield the identical value sequence (pinned by
        #: the kernel-equivalence goldens) without per-frame Generator
        #: call overhead.
        self._backoff_buf: list[float] = []
        self._backoff_i = 0
        self._busy = False
        self._in_flight: Optional[tuple[Interface, Packet, float]] = None
        self.frames_sent = 0
        self.frames_missed = 0
        self.busy_time = 0.0

    # -- topology ----------------------------------------------------------

    def attach(self, iface: Interface, gateway: bool = False) -> None:
        """Attach a station; ``gateway=True`` marks the access point side."""
        if iface.channel is not None:
            raise NetworkError(f"{iface!r} is already attached to a channel")
        iface.channel = self
        self._stations.append(iface)
        self._station_ips.add(iface.node.ip)
        self.departed.discard(iface.node.ip)
        if gateway:
            if self._gateway is not None:
                raise NetworkError("medium already has a gateway")
            self._gateway = iface

    def detach(self, iface: Interface) -> None:
        """Detach a roaming station (the handoff coordinator's half)."""
        if iface is self._gateway:
            raise NetworkError("cannot detach the gateway interface")
        if iface.channel is not self:
            raise NetworkError(f"{iface!r} is not attached to this medium")
        self._stations.remove(iface)
        self._station_ips.discard(iface.node.ip)
        iface.channel = None

    def set_cell(self, label: str) -> None:
        """Label this medium as campus cell ``label`` for obs purposes."""
        self.cell = label
        self._cell_fields = {"cell": label} if label else {}

    @property
    def stations(self) -> tuple[Interface, ...]:
        """All attached interfaces."""
        return tuple(self._stations)

    # -- airtime -------------------------------------------------------------

    def airtime(self, wire_size: int) -> float:
        """Deterministic part of one frame's channel occupancy."""
        return self.frame_overhead_s + transmit_time(wire_size, self.rate_bps)

    def effective_rate_bps(self, frame_payload: int = 1472) -> float:
        """Goodput for back-to-back frames of ``frame_payload`` bytes."""
        wire = frame_payload + 62  # transport/IP/link headers
        mean_backoff = self.max_backoff_s / 2.0
        return frame_payload * 8.0 / (self.airtime(wire) + mean_backoff)

    # -- transmission -----------------------------------------------------------

    def transmit(self, src_iface: Interface, packet: Packet) -> None:
        """Queue ``packet`` for the channel; FIFO, one frame at a time."""
        if src_iface not in self._stations:
            raise NetworkError(f"{src_iface!r} is not attached to this medium")
        self._queue.append((src_iface, packet))
        if not self._busy:
            self._busy = True
            self.sim.call_later(0.0, self._next_frame)

    # The medium's arbitration loop is a callback chain (one airtime
    # timer per frame), not a generator process: at ~75k frames per
    # cold figure-4 run the Process/Timeout machinery dominated the
    # profile. Heap pushes happen in the same order as the old
    # generator (start push, then one occupancy push per frame), so
    # frame ordering — and every RNG backoff draw — is byte-identical.

    def _next_frame(self) -> None:
        if not self._queue:
            self._busy = False
            return
        sim = self.sim
        src_iface, packet = self._queue.popleft()
        occupancy = self.airtime(packet.wire_size)
        if self.rng is not None and self.max_backoff_s > 0:
            i = self._backoff_i
            buf = self._backoff_buf
            if i == len(buf):
                buf = self._backoff_buf = self.rng.uniform(
                    0.0, self.max_backoff_s, 256
                ).tolist()
                i = 0
            occupancy += buf[i]
            self._backoff_i = i + 1
        self._in_flight = (src_iface, packet, sim.now)
        sim.call_later(occupancy, self._frame_done)

    def _frame_done(self) -> None:
        sim = self.sim
        src_iface, packet, start = self._in_flight
        self._in_flight = None
        now = sim.now
        self.busy_time += now - start
        if self.drop is not None and self.drop(packet):
            self.counters.incr("medium.channel_drop")
            self.obs.event(
                now, "medium.drop.channel",
                src=packet.src.ip, dst=packet.dst.ip,
                size=packet.wire_size,
            )
            self._next_frame()
            return
        if self.faults is not None:
            verdict = self.faults.judge(now, packet)
            if verdict is not None:
                self.counters.incr(f"faults.{verdict.reason}")
                if verdict.action == "drop":
                    self.obs.event(
                        now, "medium.drop.fault",
                        reason=verdict.reason,
                        src=packet.src.ip, dst=packet.dst.ip,
                        size=packet.wire_size,
                        broadcast=packet.is_broadcast,
                    )
                    self._next_frame()
                    return
                if verdict.action == "reorder":
                    # Requeue behind everything currently waiting:
                    # the frame burns airtime again and arrives
                    # late and out of order.
                    self._queue.append((src_iface, packet))
                    self._next_frame()
                    return
                if verdict.action == "duplicate":
                    # Deliver now and transmit a second copy after
                    # the queue drains (a spurious MAC retry).
                    self._queue.append((src_iface, packet))
        if self.channel is not None and self.channel.tx_blocked(now, packet):
            # The sender's own channel faded: the frame burned airtime
            # but arrives nowhere (uplink ACKs, feedback reports).
            self.counters.incr("channel.tx_loss")
            self.obs.event(
                now, "medium.drop.channel_state",
                src=packet.src.ip, dst=packet.dst.ip,
                size=packet.wire_size,
            )
            self._next_frame()
            return
        self.frames_sent += 1
        self._deliver(src_iface, packet, start, now)
        self._next_frame()

    def _deliver(
        self, src_iface: Interface, packet: Packet, start: float, end: float
    ) -> None:
        self.obs.event(
            end, "medium.frame",
            start=start, end=end,
            src=packet.src.ip, dst=packet.dst.ip,
            src_port=packet.src.port, dst_port=packet.dst.port,
            proto=packet.proto, size=packet.wire_size,
            payload=packet.payload_size, marked=packet.tos_marked,
            broadcast=packet.is_broadcast,
            sender=src_iface.node.name,
            packet_id=packet.packet_id,
            **self._cell_fields,
        )
        handles = self._frame_handles.get(packet.proto)
        if handles is None:
            handles = (
                self.obs.resolve_counter(
                    "medium.frames", proto=packet.proto, **self._cell_fields
                ),
                self.obs.resolve_histogram(
                    "medium.frame_bytes", buckets=BYTES_BUCKETS,
                    proto=packet.proto, **self._cell_fields,
                ),
            )
            self._frame_handles[packet.proto] = handles
        handles[0].inc()
        handles[1].observe(packet.wire_size)
        dst_is_station = packet.dst.ip in self._station_ips
        for iface in self._stations:
            if iface is src_iface:
                continue
            if iface.promiscuous:
                iface.deliver(packet)
                continue
            addressed = (
                packet.is_broadcast or iface.node.ip == packet.dst.ip
            )
            if not addressed:
                continue
            out_of_range = self.faults is not None and not self.faults.can_hear(
                end, iface.node.ip
            )
            # The receive-side channel roll happens for every addressed
            # in-range station — even a sleeping one — so the draw
            # sequence depends only on the frame stream, never on WNIC
            # state.
            faded = (
                not out_of_range
                and self.channel is not None
                and self.channel.rx_blocked(end, iface.node.ip)
            )
            if not out_of_range and not faded and iface.can_receive(packet):
                iface.deliver(packet)
            else:
                if out_of_range:
                    cause = "churn"
                    counter = "faults.churn_miss"
                elif faded:
                    cause = "channel"
                    counter = "channel.rx_miss"
                else:
                    cause = "sleep"
                    counter = "medium.sleep_miss"
                self.frames_missed += 1
                self.counters.incr(counter)
                self.obs.event(
                    end, "medium.miss",
                    dst=iface.node.ip, proto=packet.proto,
                    size=packet.wire_size, payload=packet.payload_size,
                    marked=packet.tos_marked,
                    broadcast=packet.is_broadcast,
                    packet_id=packet.packet_id,
                    **self._cell_fields,
                )
                self.obs.inc(
                    "medium.misses",
                    dst=iface.node.ip,
                    cause=cause,
                    **self._cell_fields,
                )
        if packet.is_broadcast or dst_is_station:
            return
        if packet.dst.ip in self.departed:
            # The addressee roamed away mid-flight: the frame dies here
            # instead of bouncing between the gateway and the medium.
            self.frames_missed += 1
            self.counters.incr("campus.handoff_miss")
            self.obs.event(
                end, "medium.miss",
                dst=packet.dst.ip, proto=packet.proto,
                size=packet.wire_size, payload=packet.payload_size,
                marked=packet.tos_marked,
                broadcast=packet.is_broadcast,
                packet_id=packet.packet_id,
                **self._cell_fields,
            )
            self.obs.inc(
                "medium.misses",
                dst=packet.dst.ip,
                cause="handoff",
                **self._cell_fields,
            )
            return
        # Not a wireless station's address: hand it up to the gateway (AP).
        if self._gateway is not None and self._gateway is not src_iface:
            self._gateway.deliver(packet)
