"""Full-duplex point-to-point links (the wired Fast Ethernet segments).

Each direction serializes packets FIFO at the link rate, then delays
them by propagation latency plus optional jitter. A drop hook supports
loss experiments (the paper's Netfilter/DummyNet runs).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.faults.counters import FaultCounters
from repro.net.node import Interface
from repro.net.packet import Packet
from repro.sim.core import Simulator
from repro.units import transmit_time

#: Optional per-packet hooks.
JitterFn = Callable[[Packet], float]
DropFn = Callable[[Packet], bool]


class _Direction:
    """One direction of a link: FIFO serialization + delayed delivery.

    Implemented as a callback chain rather than a generator process —
    links carry hundreds of thousands of packets per sweep, and the
    Process/Timeout machinery was pure overhead here. The heap-push
    pattern (one delay-0 start push per busy period, then per packet a
    serialization push followed by a delivery push) matches the old
    generator version exactly, so event ordering is byte-identical.
    """

    __slots__ = ("link", "dst_iface", "queue", "busy", "_in_flight")

    def __init__(self, link: "Link", dst_iface: Interface) -> None:
        self.link = link
        self.dst_iface = dst_iface
        self.queue: deque[Packet] = deque()
        self.busy = False
        self._in_flight: Optional[Packet] = None

    def enqueue(self, packet: Packet) -> None:
        self.queue.append(packet)
        if not self.busy:
            self.busy = True
            self.link.sim.call_later(0.0, self._next)

    def _next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        packet = self.queue.popleft()
        self._in_flight = packet
        self.link.sim.call_later(
            transmit_time(packet.wire_size, self.link.rate_bps),
            self._transmitted,
        )

    def _transmitted(self) -> None:
        link = self.link
        packet = self._in_flight
        self._in_flight = None
        if link.drop is not None and link.drop(packet):
            link.counters.incr(link.drop_key)
            self._next()
            return
        delay = link.latency
        if link.jitter is not None:
            delay += max(0.0, link.jitter(packet))
        link.packets_delivered += 1
        link.sim.call_later1(delay, self.dst_iface.deliver, packet)
        self._next()


class Link:
    """A bidirectional point-to-point link between two interfaces.

    Args:
        sim: owning simulator.
        rate_bps: serialization rate in bits per second.
        latency: one-way propagation delay in seconds.
        jitter: optional per-packet extra delay function.
        drop: optional per-packet drop predicate.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        latency: float = 0.0,
        jitter: Optional[JitterFn] = None,
        drop: Optional[DropFn] = None,
        counters: Optional[FaultCounters] = None,
        drop_key: str = "link.dropped",
    ) -> None:
        if rate_bps <= 0:
            raise NetworkError(f"link rate must be positive: {rate_bps!r}")
        if latency < 0:
            raise NetworkError(f"negative latency: {latency!r}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.latency = latency
        self.jitter = jitter
        self.drop = drop
        #: Drops are accounted in a (possibly scenario-shared) counter
        #: registry under ``drop_key``, so links, pipes and the wireless
        #: medium all report through one API.
        self.counters = counters if counters is not None else FaultCounters()
        self.drop_key = drop_key
        self.packets_delivered = 0
        self._ifaces: Optional[tuple[Interface, Interface]] = None
        self._directions: dict[Interface, _Direction] = {}

    @property
    def packets_dropped(self) -> int:
        """Packets this link's drop hook discarded."""
        return self.counters.get(self.drop_key)

    def attach(self, iface_a: Interface, iface_b: Interface) -> "Link":
        """Connect the two endpoints of this link."""
        if self._ifaces is not None:
            raise NetworkError("link endpoints already attached")
        for iface in (iface_a, iface_b):
            if iface.channel is not None:
                raise NetworkError(f"{iface!r} is already attached to a channel")
            iface.channel = self
        self._ifaces = (iface_a, iface_b)
        self._directions[iface_a] = _Direction(self, iface_b)
        self._directions[iface_b] = _Direction(self, iface_a)
        return self

    def transmit(self, src_iface: Interface, packet: Packet) -> None:
        """Send ``packet`` from ``src_iface`` toward the other endpoint."""
        direction = self._directions.get(src_iface)
        if direction is None:
            raise NetworkError(f"{src_iface!r} is not an endpoint of this link")
        direction.enqueue(packet)
