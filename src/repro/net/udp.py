"""UDP sockets.

Datagram sockets with callback- or queue-style reception. Unreliable by
construction: links, the medium and sleeping WNICs drop datagrams and
nobody retransmits — exactly the behaviour the paper's video streams
(and schedule broadcasts) rely on.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SocketError
from repro.net.addr import BROADCAST_IP, Endpoint
from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.resources import Store

#: Receive callback signature: (packet) -> None.
RecvCallback = Callable[[Packet], None]


class UdpSocket:
    """A UDP socket bound to a node and local endpoint.

    Args:
        node: owning node.
        port: local port to bind.
        on_receive: optional callback invoked for every datagram; when
            omitted, datagrams are buffered and retrievable with
            :meth:`recv` (an event) or :meth:`try_recv`.
        local_ip: bind address; defaults to the node's address. The
            proxy binds spoofed addresses here (e.g. the server's) to
            receive traffic transparently.
    """

    def __init__(
        self,
        node: Node,
        port: int,
        on_receive: Optional[RecvCallback] = None,
        local_ip: Optional[str] = None,
    ) -> None:
        self.node = node
        self.local = Endpoint(local_ip or node.ip, port)
        self._on_receive = on_receive
        self._inbox: Store = Store(node.sim)
        self._closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        node.register_udp(self)

    # -- sending ------------------------------------------------------------

    def sendto(
        self,
        payload_size: int,
        dst: Endpoint,
        seq: int = 0,
        meta: Optional[dict] = None,
        src: Optional[Endpoint] = None,
    ) -> Packet:
        """Send a datagram of ``payload_size`` bytes to ``dst``.

        ``src`` overrides the source endpoint for spoofed sends.
        Returns the packet object (useful for tests and marking).
        """
        if self._closed:
            raise SocketError("sendto on closed socket")
        packet = Packet(
            proto="udp",
            src=src or self.local,
            dst=dst,
            payload_size=payload_size,
            seq=seq,
            meta=dict(meta) if meta else {},
            created_at=self.node.sim.now,
        )
        self.datagrams_sent += 1
        self.bytes_sent += payload_size
        self.node.send_packet(packet)
        return packet

    def broadcast(
        self, payload_size: int, port: int, meta: Optional[dict] = None
    ) -> Packet:
        """Send a link-local broadcast (the proxy's schedule messages)."""
        return self.sendto(payload_size, Endpoint(BROADCAST_IP, port), meta=meta)

    # -- receiving -----------------------------------------------------------

    def matches(self, dst: Endpoint) -> bool:
        """Whether this socket should receive a packet sent to ``dst``."""
        return dst.port == self.local.port and (
            dst.ip == self.local.ip or dst.ip == BROADCAST_IP
        )

    def on_packet(self, packet: Packet) -> None:
        """Upcall from the node's dispatcher."""
        if self._closed:
            return
        self.datagrams_received += 1
        self.bytes_received += packet.payload_size
        if self._on_receive is not None:
            self._on_receive(packet)
        else:
            self._inbox.put(packet)

    def recv(self):
        """Event that fires with the next datagram."""
        if self._closed:
            raise SocketError("recv on closed socket")
        return self._inbox.get()

    def try_recv(self) -> Optional[Packet]:
        """Non-waiting receive; None when no datagram is buffered."""
        return self._inbox.try_get()

    def close(self) -> None:
        """Unbind the socket; further sends/recvs raise."""
        if not self._closed:
            self._closed = True
            self.node.unregister_udp(self)
