"""Network substrate: packets, links, wireless medium, UDP/TCP, tooling.

This package models the paper's testbed network: wired Fast Ethernet
segments between servers, proxy and access point, and a shared 11 Mbps
802.11b wireless cell between the access point and the mobile clients.
It also provides the supporting machinery the paper relied on: a
spoofing/NAT table (the IPQ analog), a DummyNet-style traffic shaper,
and a promiscuous monitoring station (the tcpdump analog).
"""

from repro.net.addr import BROADCAST_IP, Endpoint, FlowKey
from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.net.node import Interface, Node
from repro.net.packet import Packet, TcpFlags
from repro.net.sniffer import FrameRecord, MonitoringStation
from repro.net.udp import UdpSocket

__all__ = [
    "BROADCAST_IP",
    "Endpoint",
    "FlowKey",
    "FrameRecord",
    "Interface",
    "Link",
    "MonitoringStation",
    "Node",
    "Packet",
    "TcpFlags",
    "UdpSocket",
    "WirelessMedium",
]
