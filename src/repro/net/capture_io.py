"""Saving and loading wireless captures.

The monitoring station's frame list is the system's ground truth (the
paper's tcpdump file). These helpers persist it as JSON-lines so a
capture can be archived and re-analyzed later — e.g. replaying
alternative client policies with :mod:`repro.energy.replay` without
re-running the simulation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence, Union

from repro.errors import TraceError
from repro.net.sniffer import FrameRecord

#: Format marker written as the first line.
HEADER = {"format": "repro-capture", "version": 1}

PathLike = Union[str, pathlib.Path]


def save_capture(frames: Sequence[FrameRecord], path: PathLike) -> pathlib.Path:
    """Write ``frames`` to ``path`` as JSON-lines (header + one frame/line)."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        handle.write(json.dumps(HEADER) + "\n")
        for frame in frames:
            handle.write(
                json.dumps(
                    {
                        "start": frame.start,
                        "end": frame.end,
                        "src_ip": frame.src_ip,
                        "src_port": frame.src_port,
                        "dst_ip": frame.dst_ip,
                        "dst_port": frame.dst_port,
                        "proto": frame.proto,
                        "wire_size": frame.wire_size,
                        "payload_size": frame.payload_size,
                        "tos_marked": frame.tos_marked,
                        "broadcast": frame.broadcast,
                        "packet_id": frame.packet_id,
                        "sender": frame.sender,
                        "schedule_meta": frame.schedule_meta,
                        "cell": frame.cell,
                    }
                )
                + "\n"
            )
    return path


def load_capture(path: PathLike) -> list[FrameRecord]:
    """Read a capture written by :func:`save_capture`."""
    path = pathlib.Path(path)
    frames: list[FrameRecord] = []
    with path.open() as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path} is not a repro capture: {exc}") from exc
        if header.get("format") != "repro-capture":
            raise TraceError(f"{path} is not a repro capture")
        if header.get("version") != 1:
            raise TraceError(
                f"unsupported capture version {header.get('version')!r}"
            )
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
                frames.append(FrameRecord(**raw))
            except (json.JSONDecodeError, TypeError) as exc:
                raise TraceError(
                    f"{path}:{line_number}: bad frame record: {exc}"
                ) from exc
    return frames
