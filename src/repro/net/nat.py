"""Address spoofing table — the IPQ header-rewrite analog.

The paper's proxy catches packets with IPQ and rewrites their IP
headers so that (paper Figure 3):

* the client's connection, actually terminated at the proxy, appears to
  come from the server, and
* the proxy's connection to the server appears to come from the client.

:class:`SpoofTable` holds those rewrite rules keyed by directional flow.
The transparent proxy installs two rules per intercepted flow and runs
every packet it emits or intercepts through :meth:`rewrite`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError
from repro.net.addr import Endpoint, FlowKey
from repro.net.packet import Packet


@dataclass(frozen=True, slots=True)
class SpoofRule:
    """Rewrite packets matching ``match`` to carry the new endpoints."""

    match: FlowKey
    new_src: Optional[Endpoint] = None
    new_dst: Optional[Endpoint] = None


class SpoofTable:
    """Flow-keyed address rewriting rules."""

    def __init__(self) -> None:
        self._rules: dict[FlowKey, SpoofRule] = {}
        self.rewrites = 0

    def __len__(self) -> int:
        return len(self._rules)

    def add_rule(
        self,
        match: FlowKey,
        new_src: Optional[Endpoint] = None,
        new_dst: Optional[Endpoint] = None,
    ) -> SpoofRule:
        """Install a rewrite rule for packets matching ``match``."""
        if new_src is None and new_dst is None:
            raise NetworkError("spoof rule must rewrite something")
        if match in self._rules:
            raise NetworkError(f"duplicate spoof rule for {match}")
        rule = SpoofRule(match, new_src, new_dst)
        self._rules[match] = rule
        return rule

    def remove_flow(self, match: FlowKey) -> None:
        """Drop the rule for ``match`` (idempotent)."""
        self._rules.pop(match, None)

    def lookup(self, packet: Packet) -> Optional[SpoofRule]:
        """The rule that applies to ``packet``, if any."""
        return self._rules.get(packet.flow)

    def rewrite(self, packet: Packet) -> Optional[Packet]:
        """Return a rewritten copy of ``packet``, or None if no rule matches."""
        rule = self.lookup(packet)
        if rule is None:
            return None
        self.rewrites += 1
        return packet.spoofed(src=rule.new_src, dst=rule.new_dst)
