"""Simplified but real TCP.

Implements the subset of TCP the paper's evaluation depends on:

* three-way handshake (SYN / SYN-ACK / ACK) and FIN teardown,
* byte-stream sequence numbers with MSS segmentation,
* cumulative ACKs and a fixed advertised receive window,
* slow start / congestion avoidance, fast retransmit on 3 dup-ACKs,
* retransmission timeout with Jacobson/Karels RTT estimation, Karn's
  rule, and exponential backoff.

Payload bytes are never materialized — segments carry byte *counts* and
stream offsets, so a retransmission is just a packet re-describing a
byte range. Applications interact through ``send(nbytes)`` plus
``on_data``/``on_established``/``on_close`` callbacks.

Two hooks exist purely for the transparent proxy:

* connections can be created with **spoofed local endpoints**, so the
  proxy's client-side socket speaks with the server's address
  (paper §3.2.2, Figure 3), and
* an ``on_segment_tx`` hook lets the proxy's IPQ thread analog mark the
  IP TOS bit of the segment that carries the last byte of a burst
  (the paper's packet-marking protocol).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConnectionError_, SocketError
from repro.net.addr import Endpoint
from repro.units import ms
from repro.net.node import Node
from repro.net.packet import MSS, Packet, TcpFlags

#: Connection states (string constants keep reprs readable).
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_SENT = "FIN_SENT"
FIN_RCVD = "FIN_RCVD"

#: Default advertised receive window in bytes.
DEFAULT_RWND = 64 * 1024
#: Initial congestion window (segments), per the era's common default.
INITIAL_CWND_SEGMENTS = 2
#: Initial slow-start threshold.
INITIAL_SSTHRESH = 64 * 1024
#: Retransmission timer bounds and initial value (seconds).
RTO_MIN = 0.2
RTO_MAX = 60.0
RTO_INITIAL = 1.0
#: Give up after this many consecutive RTO expirations.
MAX_RETRIES = 10
#: Delayed-ACK policy (RFC 1122): ACK at least every second full
#: segment, or after this timer.
DELAYED_ACK_S = ms(40)


class TcpListener:
    """A passive socket accepting connections on a port."""

    def __init__(
        self,
        node: Node,
        port: int,
        on_accept: Callable[["TcpConnection"], None],
    ) -> None:
        self.node = node
        self.port = port
        self.on_accept = on_accept
        node.register_tcp_listener(self)

    def on_packet(self, packet: Packet) -> None:
        """Handle a packet addressed to the listening port (expects SYN)."""
        if TcpFlags.SYN not in packet.flags or TcpFlags.ACK in packet.flags:
            return  # stray packet for a connection we no longer track
        conn = TcpConnection(
            self.node,
            local=packet.dst,
            remote=packet.src,
            state=SYN_RCVD,
        )
        conn._handle_syn(packet)
        self.on_accept(conn)


class TcpConnection:
    """One endpoint of a (possibly spoofed) TCP connection."""

    def __init__(
        self,
        node: Node,
        local: Endpoint,
        remote: Endpoint,
        state: str = CLOSED,
        rwnd: int = DEFAULT_RWND,
        on_data: Optional[Callable[[int, Packet], None]] = None,
        on_established: Optional[Callable[["TcpConnection"], None]] = None,
        on_close: Optional[Callable[["TcpConnection"], None]] = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.local = local
        self.remote = remote
        self.state = state
        self.on_data = on_data
        self.on_established = on_established
        self.on_close = on_close
        #: Hook invoked with every outgoing data segment (proxy marking).
        self.on_segment_tx: Optional[Callable[[Packet], None]] = None

        # -- sender state (byte offsets; SYN consumes offset 0) --
        self.snd_una = 0  # oldest unacknowledged byte
        self.snd_nxt = 0  # next byte to send
        self.app_limit = 1  # stream offset one past last app byte (+1 for SYN)
        self.cwnd = INITIAL_CWND_SEGMENTS * MSS
        self.ssthresh = INITIAL_SSTHRESH
        self.peer_rwnd = rwnd
        self.dupacks = 0
        self.fin_offset: Optional[int] = None  # stream offset of our FIN

        # -- receiver state --
        self.rcv_nxt = 0
        self.rwnd = rwnd
        self._ooo: list[tuple[int, int]] = []  # out-of-order [start, end)
        self.peer_fin_offset: Optional[int] = None
        self._unacked_segments = 0  # delayed-ACK bookkeeping
        self._delack_generation = 0
        self._delack_armed = False

        #: NewReno fast-recovery state: highest byte outstanding when
        #: fast retransmit fired; partial ACKs below it retransmit the
        #: next hole immediately instead of waiting for an RTO.
        self._recovery_point: Optional[int] = None
        #: SACK scoreboard: sorted disjoint [start, end) ranges above
        #: snd_una the peer has confirmed receiving (RFC 2018).
        self._sacked: list[tuple[int, int]] = []
        #: Start of the hole most recently fast-retransmitted (avoids
        #: re-sending the same hole on every duplicate ACK).
        self._retx_hole_start: Optional[int] = None

        # -- RTT estimation / retransmission --
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = RTO_INITIAL
        self._timer_generation = 0
        self._timer_armed = False
        self._rtt_probe: Optional[tuple[int, float]] = None  # (end_seq, sent_at)
        self.retries = 0

        #: Last time the sender made forward progress (new data sent or
        #: snd_una advanced); the proxy uses it to detect stalls.
        self.last_progress_at = node.sim.now

        # -- stats --
        self.bytes_delivered = 0  # in-order payload handed to the app
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.segments_received = 0
        self._closed_notified = False

        node.register_tcp_connection(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        node: Node,
        remote: Endpoint,
        local_port: Optional[int] = None,
        local_ip: Optional[str] = None,
        **callbacks,
    ) -> "TcpConnection":
        """Actively open a connection to ``remote``.

        ``local_ip`` may spoof a foreign address (proxy server-side
        sockets connect *as the client*).
        """
        port = local_port if local_port is not None else _ephemeral_port(node)
        conn = cls(
            node,
            local=Endpoint(local_ip or node.ip, port),
            remote=remote,
            state=SYN_SENT,
            **callbacks,
        )
        conn._send_control(TcpFlags.SYN, seq=0)
        conn.snd_nxt = 1
        conn._arm_timer()
        return conn

    def send(self, nbytes: int) -> None:
        """Append ``nbytes`` of application data to the stream."""
        if nbytes < 0:
            raise SocketError(f"cannot send negative bytes: {nbytes}")
        if self.state in (FIN_SENT, CLOSED) or self.fin_offset is not None:
            raise SocketError(f"send after close on {self}")
        self.app_limit += nbytes
        self._try_transmit()

    def close(self) -> None:
        """Half-close: send FIN once all buffered data has been sent."""
        if self.fin_offset is not None or self.state == CLOSED:
            return
        self.fin_offset = self.app_limit  # FIN occupies one offset
        self.app_limit += 1
        self._try_transmit()

    def abort(self) -> None:
        """Drop all state immediately (no RST is modelled)."""
        self._teardown()

    @property
    def bytes_in_flight(self) -> int:
        """Unacknowledged bytes currently outstanding."""
        return self.snd_nxt - self.snd_una

    @property
    def send_window(self) -> int:
        """Current usable window (congestion vs flow control)."""
        return min(self.cwnd, self.peer_rwnd)

    @property
    def unsent_bytes(self) -> int:
        """Application bytes buffered but not yet transmitted."""
        return max(0, self.app_limit - self.snd_nxt)

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------

    def on_packet(self, packet: Packet) -> None:
        """Upcall from the node's dispatcher for this connection."""
        if self.state == CLOSED:
            return
        self.segments_received += 1
        flags = packet.flags

        if TcpFlags.SYN in flags and TcpFlags.ACK in flags:
            self._handle_syn_ack(packet)
            return
        if TcpFlags.SYN in flags:
            self._handle_syn(packet)
            return
        if TcpFlags.ACK in flags:
            self._handle_ack(packet)
        if packet.payload_size > 0 or TcpFlags.FIN in flags:
            self._handle_data(packet)

    # -- handshake ------------------------------------------------------

    def _handle_syn(self, packet: Packet) -> None:
        # Passive open: SYN consumes receiver offset 0. A duplicate SYN
        # (our SYN-ACK was lost) just re-elicits the SYN-ACK.
        if self.state not in (CLOSED, SYN_RCVD, SYN_SENT):
            self._send_ack_now()
            return
        self.rcv_nxt = max(self.rcv_nxt, 1)
        self.state = SYN_RCVD
        self._send_control(TcpFlags.SYN | TcpFlags.ACK, seq=0, ack=self.rcv_nxt)
        self.snd_nxt = max(self.snd_nxt, 1)
        self._arm_timer()

    def _handle_syn_ack(self, packet: Packet) -> None:
        if self.state != SYN_SENT:
            # Duplicate SYN-ACK (our ACK was lost): re-acknowledge.
            self._send_control(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
            return
        self.rcv_nxt = 1
        self.snd_una = max(self.snd_una, packet.ack)
        self.state = ESTABLISHED
        self.retries = 0
        self._cancel_timer()
        self._send_control(TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
        if self.on_established is not None:
            self.on_established(self)
        self._try_transmit()

    # -- ACK processing ------------------------------------------------------

    def _handle_ack(self, packet: Packet) -> None:
        if self.state == SYN_RCVD and packet.ack >= 1:
            self.state = ESTABLISHED
            self.snd_una = max(self.snd_una, 1)
            self.retries = 0
            self._cancel_timer()
            if self.on_established is not None:
                self.on_established(self)

        ack = packet.ack
        if ack > self.snd_nxt:
            return  # acks data we never sent; ignore
        if packet.sack_blocks:
            self._register_sack(packet.sack_blocks)
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self.dupacks = 0
            self.retries = 0
            self._retx_hole_start = None
            self._prune_sacked()
            self.last_progress_at = self.sim.now
            self._update_rtt(ack)
            self._grow_cwnd(acked)
            if self._recovery_point is not None:
                if ack >= self._recovery_point:
                    self._recovery_point = None  # recovery complete
                else:
                    # NewReno partial ACK: the next hole starts at the
                    # new snd_una; retransmit it right away.
                    self._retransmit_head()
                    self._arm_timer(restart=True)
            if self.snd_una >= self.snd_nxt:
                self._cancel_timer()
            else:
                self._arm_timer(restart=True)
            # Our FIN was acknowledged?
            if self.fin_offset is not None and ack > self.fin_offset:
                if self.state == FIN_RCVD or self.peer_fin_offset is not None:
                    self._teardown()
                else:
                    self.state = FIN_SENT
        elif ack == self.snd_una and self.bytes_in_flight > 0:
            self.dupacks += 1
            if self.dupacks == 3:
                self._fast_retransmit()
            elif self.dupacks > 3:
                # SACK-based recovery: each further dup-ACK may reveal a
                # new hole; retransmit it once — or re-send the same
                # hole every few dup-ACKs in case the retransmission
                # itself was lost.
                hole = self._first_hole()
                if hole is not None and (
                    hole[0] != self._retx_hole_start
                    or self.dupacks % 4 == 0
                ):
                    self._retx_hole_start = hole[0]
                    self._send_segment(
                        hole[0], hole[1] - hole[0], retransmit=True
                    )
        self._try_transmit()

    def _update_rtt(self, ack: int) -> None:
        if self._rtt_probe is None:
            return
        probe_seq, sent_at = self._rtt_probe
        if ack >= probe_seq:
            sample = self.sim.now - sent_at
            self._rtt_probe = None
            if self.srtt is None:
                self.srtt = sample
                self.rttvar = sample / 2.0
            else:
                alpha, beta = 1.0 / 8.0, 1.0 / 4.0
                self.rttvar = (1 - beta) * self.rttvar + beta * abs(
                    self.srtt - sample
                )
                self.srtt = (1 - alpha) * self.srtt + alpha * sample
            self.rto = min(
                RTO_MAX, max(RTO_MIN, self.srtt + 4.0 * self.rttvar)
            )

    def _grow_cwnd(self, acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked, MSS)  # slow start
        else:
            self.cwnd += max(1, MSS * MSS // self.cwnd)  # congestion avoidance

    # -- data reception -----------------------------------------------------

    def _handle_data(self, packet: Packet) -> None:
        start, end = packet.seq, packet.end_seq
        if TcpFlags.FIN in packet.flags:
            self.peer_fin_offset = end
            end += 1  # FIN consumes one offset
        if end <= self.rcv_nxt:
            # Pure duplicate: re-ACK immediately so the sender can make
            # progress.
            self._send_ack_now()
            return
        self._ooo.append((max(start, self.rcv_nxt), end))
        self._ooo.sort()
        advanced = 0
        merged: list[tuple[int, int]] = []
        for seg_start, seg_end in self._ooo:
            if seg_start <= self.rcv_nxt:
                advanced += max(0, seg_end - self.rcv_nxt)
                self.rcv_nxt = max(self.rcv_nxt, seg_end)
            else:
                merged.append((seg_start, seg_end))
        self._ooo = merged
        if advanced > 0:
            data_bytes = advanced
            fin_consumed = (
                self.peer_fin_offset is not None
                and self.rcv_nxt > self.peer_fin_offset
            )
            if fin_consumed:
                data_bytes -= 1
            if data_bytes > 0:
                self.bytes_delivered += data_bytes
                if self.on_data is not None:
                    self.on_data(data_bytes, packet)
            if fin_consumed:
                self._handle_peer_fin()
        # Delayed-ACK policy: gaps (dup-ACK signals), every second
        # in-order segment, FINs and end-of-burst marked packets (the
        # receiver is about to sleep) ACK immediately; a lone in-order
        # segment waits briefly for a sibling.
        self._unacked_segments += 1
        if (
            self._ooo
            or advanced == 0
            or self._unacked_segments >= 2
            or TcpFlags.FIN in packet.flags
            or packet.tos_marked
        ):
            self._send_ack_now()
        else:
            self._arm_delayed_ack()

    def _handle_peer_fin(self) -> None:
        if self.state == FIN_SENT or self.fin_offset is not None:
            # Both sides closing.
            self._teardown()
        else:
            self.state = FIN_RCVD
            if self.on_close is not None and not self._closed_notified:
                self._closed_notified = True
                self.on_close(self)

    # -- transmission -----------------------------------------------------

    def _try_transmit(self) -> None:
        """Send as much buffered data as the window allows."""
        if self.state not in (ESTABLISHED, FIN_RCVD, SYN_RCVD):
            return
        if self.state == SYN_RCVD:
            return  # wait for the handshake to finish
        while True:
            window_room = self.send_window - self.bytes_in_flight
            pending = self.app_limit - self.snd_nxt
            if pending <= 0 or window_room <= 0:
                break
            is_fin_only = (
                self.fin_offset is not None and self.snd_nxt == self.fin_offset
            )
            if is_fin_only:
                self._send_control(
                    TcpFlags.FIN | TcpFlags.ACK,
                    seq=self.snd_nxt,
                    ack=self.rcv_nxt,
                )
                self.snd_nxt += 1
                self._arm_timer()
                break
            limit = self.fin_offset if self.fin_offset is not None else self.app_limit
            chunk = min(MSS, limit - self.snd_nxt, window_room)
            if chunk <= 0:
                break
            self._send_segment(self.snd_nxt, chunk)
            self.snd_nxt += chunk

    def _send_segment(self, seq: int, nbytes: int, retransmit: bool = False) -> None:
        packet = Packet(
            proto="tcp",
            src=self.local,
            dst=self.remote,
            payload_size=nbytes,
            seq=seq,
            ack=self.rcv_nxt,
            flags=TcpFlags.ACK,
            created_at=self.sim.now,
        )
        self.segments_sent += 1
        if retransmit:
            self.segments_retransmitted += 1
        else:
            self.last_progress_at = self.sim.now
            if self._rtt_probe is None:
                # Karn's rule: only time segments sent exactly once.
                self._rtt_probe = (seq + nbytes, self.sim.now)
        if self.on_segment_tx is not None:
            self.on_segment_tx(packet)
        self.node.send_packet(packet)
        self._arm_timer()

    def _send_control(
        self, flags: TcpFlags, seq: int, ack: Optional[int] = None,
        sack_blocks: tuple = (),
    ) -> None:
        packet = Packet(
            proto="tcp",
            src=self.local,
            dst=self.remote,
            payload_size=0,
            seq=seq,
            ack=ack if ack is not None else 0,
            flags=flags,
            sack_blocks=sack_blocks,
            created_at=self.sim.now,
        )
        self.node.send_packet(packet)

    def _send_ack_now(self) -> None:
        self._unacked_segments = 0
        self._delack_generation += 1
        self._delack_armed = False
        self._send_control(
            TcpFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt,
            sack_blocks=tuple(self._ooo[:3]),
        )

    def _arm_delayed_ack(self) -> None:
        if self._delack_armed:
            return
        self._delack_armed = True
        self._delack_generation += 1
        generation = self._delack_generation
        self.sim.call_at1(
            self.sim.now + DELAYED_ACK_S, self._on_delack_timer, generation
        )

    def _on_delack_timer(self, generation: int) -> None:
        if generation != self._delack_generation or self.state == CLOSED:
            return
        self._delack_armed = False
        if self._unacked_segments > 0:
            self._send_ack_now()

    # -- retransmission -----------------------------------------------------

    # -- SACK scoreboard -----------------------------------------------------

    def _register_sack(self, blocks) -> None:
        """Merge the peer's SACK blocks into the scoreboard."""
        ranges = list(self._sacked)
        for start, end in blocks:
            start = max(start, self.snd_una)
            end = min(end, self.snd_nxt)
            if start < end:
                ranges.append((start, end))
        ranges.sort()
        merged: list[tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._sacked = merged

    def _prune_sacked(self) -> None:
        """Drop scoreboard entries below the cumulative ACK."""
        self._sacked = [
            (max(start, self.snd_una), end)
            for start, end in self._sacked
            if end > self.snd_una
        ]

    def _first_hole(self) -> Optional[tuple[int, int]]:
        """The first unSACKed chunk (≤ MSS) above snd_una, if any."""
        limit = self.fin_offset if self.fin_offset is not None else self.snd_nxt
        cursor = self.snd_una
        for start, end in self._sacked:
            if cursor < start:
                return (cursor, min(start, cursor + MSS, limit))
            cursor = max(cursor, end)
        if cursor < min(self.snd_nxt, limit):
            return (cursor, min(self.snd_nxt, cursor + MSS, limit))
        return None

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(2 * MSS, self.bytes_in_flight // 2)
        self.cwnd = self.ssthresh
        self._recovery_point = self.snd_nxt
        self._retx_hole_start = self.snd_una
        self._retransmit_head()

    def _retransmit_head(self) -> None:
        """Retransmit the oldest unacknowledged, unSACKed chunk."""
        if self.bytes_in_flight <= 0:
            return
        self._rtt_probe = None  # Karn: retransmitted data gives no sample
        if self.state == SYN_SENT:
            self._send_control(TcpFlags.SYN, seq=0)
            return
        if self.state == SYN_RCVD:
            self._send_control(
                TcpFlags.SYN | TcpFlags.ACK, seq=0, ack=self.rcv_nxt
            )
            return
        if self.fin_offset is not None and self.snd_una == self.fin_offset:
            self._send_control(
                TcpFlags.FIN | TcpFlags.ACK, seq=self.snd_una, ack=self.rcv_nxt
            )
            return
        self._prune_sacked()
        hole = self._first_hole()
        if hole is not None and hole[1] > hole[0]:
            self._send_segment(hole[0], hole[1] - hole[0], retransmit=True)

    def retransmit_all(self) -> int:
        """Go-back-N: resend every unacknowledged segment immediately.

        Used by the proxy at the start of a client's burst slot when the
        connection has stalled: with cumulative ACKs a multi-segment
        hole otherwise refills one MSS per recovery round, and each
        round needs the client awake. Returns segments resent.
        """
        if self.state in (CLOSED, SYN_SENT):
            return 0
        self._rtt_probe = None  # Karn's rule
        self._prune_sacked()
        resent = 0
        cursor = self.snd_una
        limit = self.fin_offset if self.fin_offset is not None else self.snd_nxt
        scoreboard = list(self._sacked) + [(min(self.snd_nxt, limit),) * 2]
        for sacked_start, sacked_end in scoreboard:
            while cursor < min(sacked_start, limit):
                chunk = min(MSS, min(sacked_start, limit) - cursor)
                self._send_segment(cursor, chunk, retransmit=True)
                cursor += chunk
                resent += 1
            cursor = max(cursor, sacked_end)
        if self.fin_offset is not None and self.snd_nxt > self.fin_offset:
            self._send_control(
                TcpFlags.FIN | TcpFlags.ACK, seq=self.fin_offset,
                ack=self.rcv_nxt,
            )
            resent += 1
        if resent:
            self._arm_timer(restart=True)
        return resent

    def _on_rto(self, generation: int) -> None:
        if generation != self._timer_generation or self.state == CLOSED:
            return
        self._timer_armed = False
        if self.bytes_in_flight <= 0:
            return
        self.retries += 1
        if self.retries > MAX_RETRIES:
            self._teardown()
            return
        self.ssthresh = max(2 * MSS, self.bytes_in_flight // 2)
        self.cwnd = MSS
        self.rto = min(RTO_MAX, self.rto * 2.0)
        self.dupacks = 0
        self._retransmit_head()
        self._arm_timer(restart=True)

    def _arm_timer(self, restart: bool = False) -> None:
        if self._timer_armed and not restart:
            return
        self._timer_generation += 1
        self._timer_armed = True
        generation = self._timer_generation
        self.sim.call_at1(self.sim.now + self.rto, self._on_rto, generation)

    def _cancel_timer(self) -> None:
        self._timer_generation += 1
        self._timer_armed = False

    # -- teardown -----------------------------------------------------------

    def _teardown(self) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self._cancel_timer()
        self.node.unregister_tcp_connection(self)
        if self.on_close is not None and not self._closed_notified:
            self._closed_notified = True
            self.on_close(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TcpConnection {self.local}->{self.remote} {self.state} "
            f"una={self.snd_una} nxt={self.snd_nxt} rcv={self.rcv_nxt}>"
        )


def _ephemeral_port(node: Node) -> int:
    """Allocate a free ephemeral port on ``node``."""
    counter = getattr(node, "_ephemeral_port", 49152)
    for _ in range(16384):
        port = counter
        counter += 1
        if counter >= 65536:
            counter = 49152
        node._ephemeral_port = counter
        if all(local.port != port for (local, _r) in node.tcp_connections):
            return port
    raise ConnectionError_(f"no free ephemeral ports on {node.name}")
