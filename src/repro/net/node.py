"""Hosts and network interfaces.

A :class:`Node` owns one or more :class:`Interface` objects, a routing
table, transport demultiplexing tables (UDP sockets, TCP listeners and
connections) and an ordered list of *taps*. Taps see every packet that
reaches the node before normal processing and may consume it — this is
the mechanism the transparent proxy uses to play the role the paper
implemented with the Linux bridge + IPQ.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import AddressError, NetworkError, SocketError
from repro.net.addr import Endpoint
from repro.net.packet import Packet
from repro.obs.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator
    from repro.sim.trace import TraceRecorder

#: A tap inspects ``(packet, interface)`` and returns True to consume the
#: packet (stop all further processing) or False to let it continue.
Tap = Callable[[Packet, "Interface"], bool]


class Interface:
    """A network attachment point of a node.

    The ``channel`` attribute is set when the interface is attached to a
    :class:`~repro.net.link.Link` or
    :class:`~repro.net.medium.WirelessMedium`.
    """

    def __init__(self, node: "Node", name: str) -> None:
        self.node = node
        self.name = name
        self.channel = None  # set by Link.attach / WirelessMedium.attach
        #: Optional gate consulted before the medium delivers a frame
        #: (clients wire this to their WNIC power state).
        self.rx_gate: Optional[Callable[[Packet], bool]] = None
        #: Promiscuous interfaces receive frames regardless of address
        #: (the monitoring station).
        self.promiscuous = False

    def send(self, packet: Packet) -> None:
        """Hand ``packet`` to the attached channel for transmission."""
        if self.channel is None:
            raise NetworkError(
                f"interface {self.node.name}/{self.name} is not attached"
            )
        self.channel.transmit(self, packet)

    def can_receive(self, packet: Packet) -> bool:
        """Whether a frame arriving now would actually be heard."""
        if self.rx_gate is not None and not self.rx_gate(packet):
            return False
        return True

    def deliver(self, packet: Packet) -> None:
        """Called by the channel when a frame arrives at this interface."""
        self.node.on_receive(self, packet)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Interface {self.node.name}/{self.name}>"


class Node:
    """A host: addresses, interfaces, routing, transport dispatch."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        ip: str,
        trace: Optional["TraceRecorder"] = None,
        obs: Optional[Recorder] = None,
    ) -> None:
        if not ip:
            raise AddressError("node needs an ip")
        self.sim = sim
        self.name = name
        self.ip = ip
        # The recorder is the instrumentation funnel; ``trace`` is kept
        # as a bare-TraceRecorder convenience (wrapped on the spot).
        self.obs = obs if obs is not None else Recorder.wrap(trace)
        self.trace = self.obs.trace if trace is None else trace
        self.interfaces: dict[str, Interface] = {}
        self.forwarding = False
        self.taps: list[Tap] = []
        #: Observers notified of every packet this node originates
        #: (client daemons use this to wake the WNIC for transmissions).
        self.tx_observers: list[Callable[[Packet], None]] = []
        self._routes: dict[str, Interface] = {}
        self._default_route: Optional[Interface] = None
        # transport demux tables
        self.udp_sockets: dict[int, list] = {}  # port -> [UdpSocket]
        self.tcp_listeners: dict[int, object] = {}  # port -> TcpListener
        self.tcp_connections: dict[tuple[Endpoint, Endpoint], object] = {}
        # counters useful for tests and reports
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_dropped_no_route = 0
        self.packets_dropped_no_handler = 0

    # -- topology -------------------------------------------------------------

    def add_interface(self, name: str) -> Interface:
        """Create an interface called ``name`` on this node."""
        if name in self.interfaces:
            raise NetworkError(f"duplicate interface {name!r} on {self.name}")
        iface = Interface(self, name)
        self.interfaces[name] = iface
        return iface

    def add_route(self, dst_ip: str, iface: Interface) -> None:
        """Route packets for ``dst_ip`` out of ``iface``."""
        self._routes[dst_ip] = iface

    def remove_route(self, dst_ip: str) -> None:
        """Drop the specific route for ``dst_ip`` (no-op if absent)."""
        self._routes.pop(dst_ip, None)

    def set_default_route(self, iface: Interface) -> None:
        """Fallback interface for destinations without a specific route."""
        self._default_route = iface

    def route_for(self, dst_ip: str) -> Optional[Interface]:
        """The interface used to reach ``dst_ip`` (None if unroutable)."""
        return self._routes.get(dst_ip, self._default_route)

    # -- sending ----------------------------------------------------------------

    def send_packet(self, packet: Packet) -> bool:
        """Route and transmit ``packet``; returns False if unroutable."""
        for observer in self.tx_observers:
            observer(packet)
        iface = self.route_for(packet.dst.ip)
        if iface is None:
            self.packets_dropped_no_route += 1
            self.obs.event(
                self.sim.now, "node.drop.no-route", node=self.name,
                dst=packet.dst.ip,
            )
            return False
        self.packets_sent += 1
        iface.send(packet)
        return True

    # -- receiving --------------------------------------------------------------

    def on_receive(self, iface: Interface, packet: Packet) -> None:
        """Entry point for every frame delivered to this node."""
        for tap in self.taps:
            if tap(packet, iface):
                return
        if packet.is_broadcast or packet.dst.ip == self.ip:
            self.packets_received += 1
            self.dispatch_transport(packet)
        elif self.try_dispatch(packet):
            self.packets_received += 1
        elif self.forwarding:
            self.forward(iface, packet)
        else:
            self.packets_dropped_no_handler += 1

    def forward(self, in_iface: Interface, packet: Packet) -> None:
        """Forward a transit packet toward its destination."""
        out_iface = self.route_for(packet.dst.ip)
        if out_iface is None or out_iface is in_iface:
            self.packets_dropped_no_route += 1
            return
        self.packets_forwarded += 1
        out_iface.send(packet)

    # -- transport demux -----------------------------------------------------------

    def try_dispatch(self, packet: Packet) -> bool:
        """Dispatch ``packet`` to a matching local socket, if any.

        Unlike :meth:`dispatch_transport` this does not require the
        destination address to be this node's — it matches spoofed
        connections too (the proxy's client-side sockets are keyed by
        the *server's* endpoint).
        """
        if packet.proto == "tcp":
            conn = self.tcp_connections.get((packet.dst, packet.src))
            if conn is not None:
                conn.on_packet(packet)
                return True
            listener = self.tcp_listeners.get(packet.dst.port)
            if listener is not None and packet.dst.ip == self.ip:
                listener.on_packet(packet)
                return True
            return False
        sockets = self.udp_sockets.get(packet.dst.port)
        if not sockets:
            return False
        if packet.is_broadcast or packet.dst.ip == self.ip:
            for socket in list(sockets):
                socket.on_packet(packet)
            return True
        # UDP sockets can be bound to spoofed addresses too.
        delivered = False
        for socket in list(sockets):
            if socket.matches(packet.dst):
                socket.on_packet(packet)
                delivered = True
        return delivered

    def dispatch_transport(self, packet: Packet) -> None:
        """Deliver a packet addressed to this node (or broadcast)."""
        if not self.try_dispatch(packet):
            self.packets_dropped_no_handler += 1
            self.obs.event(
                self.sim.now, "node.drop.no-handler", node=self.name,
                proto=packet.proto, dst_port=packet.dst.port,
            )

    # -- socket registration ---------------------------------------------------------

    def register_udp(self, socket) -> None:
        """Register a UDP socket for its bound port."""
        self.udp_sockets.setdefault(socket.local.port, []).append(socket)

    def unregister_udp(self, socket) -> None:
        """Remove a UDP socket registration."""
        sockets = self.udp_sockets.get(socket.local.port, [])
        if socket in sockets:
            sockets.remove(socket)

    def register_tcp_connection(self, conn) -> None:
        """Register a TCP connection keyed by (local, remote) endpoints."""
        key = (conn.local, conn.remote)
        if key in self.tcp_connections:
            raise SocketError(f"duplicate TCP connection {key} on {self.name}")
        self.tcp_connections[key] = conn

    def unregister_tcp_connection(self, conn) -> None:
        """Remove a TCP connection registration."""
        self.tcp_connections.pop((conn.local, conn.remote), None)

    def register_tcp_listener(self, listener) -> None:
        """Register a TCP listener on its port."""
        if listener.port in self.tcp_listeners:
            raise SocketError(
                f"duplicate TCP listener on port {listener.port} on {self.name}"
            )
        self.tcp_listeners[listener.port] = listener

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.name} ip={self.ip}>"
