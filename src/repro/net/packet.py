"""Packet model.

Packets carry sizes and header metadata, never actual payload bytes —
the evaluation only needs timing, volume and marking. The IP
type-of-service mark (the paper's end-of-burst signal) is a mutable
boolean set by the proxy's bursting path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Flag, auto
from typing import Any, Optional

from repro.errors import NetworkError
from repro.net.addr import BROADCAST_IP, Endpoint, FlowKey

#: IPv4 header bytes.
IP_HEADER = 20
#: UDP header bytes.
UDP_HEADER = 8
#: TCP header bytes (no options).
TCP_HEADER = 20
#: Link-layer framing overhead (802.11 MAC + LLC, also used for Ethernet
#: for simplicity; the wired links are never the bottleneck).
LINK_HEADER = 34

#: Standard maximum segment size used by the TCP model.
MSS = 1460

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart the global packet-id sequence.

    Called once per scenario build so packet ids — which end up in
    traces and saved captures — are a pure function of (config, seed)
    rather than of whatever ran earlier in the process. Ids are only
    ever compared within one scenario, so the reset cannot confuse a
    concurrently-alive one.
    """
    global _packet_ids
    _packet_ids = itertools.count(1)


class TcpFlags(Flag):
    """TCP control flags used by the simplified stack."""

    NONE = 0
    SYN = auto()
    ACK = auto()
    FIN = auto()
    RST = auto()


class Packet:
    """A single IP packet (UDP datagram or TCP segment).

    A hand-rolled ``__slots__`` class (not a dataclass): packets are
    the most-allocated object in the simulator after events, and their
    sizes are read several times per hop, so ``transport_header`` /
    ``ip_size`` / ``wire_size`` / ``is_broadcast`` are precomputed
    attributes rather than property chains. Addresses and sizes are
    treated as immutable after construction (``spoofed`` copies);
    ``tos_marked`` and ``meta`` stay mutable.

    Attributes:
        proto: "udp" or "tcp".
        src/dst: transport endpoints. The proxy's spoof table rewrites
            these to keep the proxy invisible.
        payload_size: application bytes carried (0 for pure ACKs).
        seq: TCP: first payload byte's stream offset; UDP: datagram index.
        ack: TCP cumulative acknowledgement (next expected byte).
        flags: TCP control flags.
        tos_marked: IP TOS bit the proxy sets on the last packet of a
            client's burst.
        sack_blocks: up to 3 received-but-not-yet-cumulative TCP ranges.
        meta: free-form metadata (stream ids, schedule payloads, ...).
        created_at: simulated time the packet was created.
    """

    __slots__ = (
        "proto", "src", "dst", "payload_size", "seq", "ack", "flags",
        "tos_marked", "sack_blocks", "meta", "created_at", "packet_id",
        "transport_header", "ip_size", "wire_size", "is_broadcast",
    )

    def __init__(
        self,
        proto: str,
        src: Endpoint,
        dst: Endpoint,
        payload_size: int = 0,
        seq: int = 0,
        ack: int = 0,
        flags: TcpFlags = TcpFlags.NONE,
        tos_marked: bool = False,
        sack_blocks: tuple = (),
        meta: Optional[dict[str, Any]] = None,
        created_at: float = 0.0,
        packet_id: Optional[int] = None,
    ) -> None:
        if proto == "udp":
            transport = UDP_HEADER
        elif proto == "tcp":
            transport = TCP_HEADER
        else:
            raise NetworkError(f"unknown protocol: {proto!r}")
        if payload_size < 0:
            raise NetworkError(f"negative payload size: {payload_size!r}")
        self.proto = proto
        self.src = src
        self.dst = dst
        self.payload_size = payload_size
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.tos_marked = tos_marked
        self.sack_blocks = sack_blocks
        self.meta = meta if meta is not None else {}
        self.created_at = created_at
        self.packet_id = next(_packet_ids) if packet_id is None else packet_id
        #: Bytes of transport header / at the IP layer / on the wire.
        self.transport_header = transport
        ip_size = IP_HEADER + transport + payload_size
        self.ip_size = ip_size
        self.wire_size = LINK_HEADER + ip_size
        #: True for link-local broadcast packets (schedule messages).
        self.is_broadcast = dst.ip == BROADCAST_IP

    # -- helpers ---------------------------------------------------------------

    @property
    def flow(self) -> FlowKey:
        """Directional flow key of this packet."""
        return FlowKey(self.proto, self.src, self.dst)

    @property
    def end_seq(self) -> int:
        """TCP: stream offset one past the last payload byte."""
        return self.seq + self.payload_size

    def spoofed(
        self,
        src: Optional[Endpoint] = None,
        dst: Optional[Endpoint] = None,
    ) -> "Packet":
        """A copy with rewritten addresses (the IPQ header rewrite)."""
        return Packet(
            proto=self.proto,
            src=src or self.src,
            dst=dst or self.dst,
            payload_size=self.payload_size,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            tos_marked=self.tos_marked,
            meta=dict(self.meta),
            created_at=self.created_at,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = " [MARK]" if self.tos_marked else ""
        return (
            f"<{self.proto} #{self.packet_id} {self.src}->{self.dst} "
            f"seq={self.seq} ack={self.ack} len={self.payload_size}"
            f" {self.flags}{mark}>"
        )
