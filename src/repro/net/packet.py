"""Packet model.

Packets carry sizes and header metadata, never actual payload bytes —
the evaluation only needs timing, volume and marking. The IP
type-of-service mark (the paper's end-of-burst signal) is a mutable
boolean set by the proxy's bursting path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Flag, auto
from typing import Any, Optional

from repro.errors import NetworkError
from repro.net.addr import BROADCAST_IP, Endpoint, FlowKey

#: IPv4 header bytes.
IP_HEADER = 20
#: UDP header bytes.
UDP_HEADER = 8
#: TCP header bytes (no options).
TCP_HEADER = 20
#: Link-layer framing overhead (802.11 MAC + LLC, also used for Ethernet
#: for simplicity; the wired links are never the bottleneck).
LINK_HEADER = 34

#: Standard maximum segment size used by the TCP model.
MSS = 1460

_packet_ids = itertools.count(1)


def reset_packet_ids() -> None:
    """Restart the global packet-id sequence.

    Called once per scenario build so packet ids — which end up in
    traces and saved captures — are a pure function of (config, seed)
    rather than of whatever ran earlier in the process. Ids are only
    ever compared within one scenario, so the reset cannot confuse a
    concurrently-alive one.
    """
    global _packet_ids
    _packet_ids = itertools.count(1)


class TcpFlags(Flag):
    """TCP control flags used by the simplified stack."""

    NONE = 0
    SYN = auto()
    ACK = auto()
    FIN = auto()
    RST = auto()


@dataclass(slots=True)
class Packet:
    """A single IP packet (UDP datagram or TCP segment).

    Attributes:
        proto: "udp" or "tcp".
        src/dst: transport endpoints. The proxy's spoof table rewrites
            these to keep the proxy invisible.
        payload_size: application bytes carried (0 for pure ACKs).
        seq: TCP: first payload byte's stream offset; UDP: datagram index.
        ack: TCP cumulative acknowledgement (next expected byte).
        flags: TCP control flags.
        tos_marked: IP TOS bit the proxy sets on the last packet of a
            client's burst.
        meta: free-form metadata (stream ids, schedule payloads, ...).
        created_at: simulated time the packet was created.
    """

    proto: str
    src: Endpoint
    dst: Endpoint
    payload_size: int = 0
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags.NONE
    tos_marked: bool = False
    #: TCP SACK option: up to 3 received-but-not-yet-cumulative ranges.
    sack_blocks: tuple = ()
    meta: dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.proto not in ("udp", "tcp"):
            raise NetworkError(f"unknown protocol: {self.proto!r}")
        if self.payload_size < 0:
            raise NetworkError(f"negative payload size: {self.payload_size!r}")

    # -- sizes ---------------------------------------------------------------

    @property
    def transport_header(self) -> int:
        """Transport header bytes for this packet's protocol."""
        return UDP_HEADER if self.proto == "udp" else TCP_HEADER

    @property
    def ip_size(self) -> int:
        """Bytes at the IP layer (headers + payload)."""
        return IP_HEADER + self.transport_header + self.payload_size

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including link framing."""
        return LINK_HEADER + self.ip_size

    # -- helpers ---------------------------------------------------------------

    @property
    def is_broadcast(self) -> bool:
        """True for link-local broadcast packets (schedule messages)."""
        return self.dst.ip == BROADCAST_IP

    @property
    def flow(self) -> FlowKey:
        """Directional flow key of this packet."""
        return FlowKey(self.proto, self.src, self.dst)

    @property
    def end_seq(self) -> int:
        """TCP: stream offset one past the last payload byte."""
        return self.seq + self.payload_size

    def spoofed(
        self,
        src: Optional[Endpoint] = None,
        dst: Optional[Endpoint] = None,
    ) -> "Packet":
        """A copy with rewritten addresses (the IPQ header rewrite)."""
        return Packet(
            proto=self.proto,
            src=src or self.src,
            dst=dst or self.dst,
            payload_size=self.payload_size,
            seq=self.seq,
            ack=self.ack,
            flags=self.flags,
            tos_marked=self.tos_marked,
            meta=dict(self.meta),
            created_at=self.created_at,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = " [MARK]" if self.tos_marked else ""
        return (
            f"<{self.proto} #{self.packet_id} {self.src}->{self.dst} "
            f"seq={self.seq} ack={self.ack} len={self.payload_size}"
            f" {self.flags}{mark}>"
        )
