"""Scripted web browsing (the paper's multi-TCP-stream workload, §4.2).

The paper "used a script (generated prior to the experiments) to ensure
that the traffic pattern remained identical across different
experiments". :class:`WebScript` is that script: a seeded sequence of
page visits, each with a main object plus several embedded objects and
a think time. Objects are fetched HTTP/1.0 style — one TCP connection
per object, server closes when done — with up to two connections in
flight, which yields the "multiple concurrent TCP streams per client"
the paper describes.

Payloads never exist: the client sends a fixed-size request; the server
replies with the scripted object size and closes. Both sides derive
object sizes from the same script, so no application header parsing is
needed (the proxy must work without understanding protocols anyway —
that is the point of its transparency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.addr import Endpoint
from repro.net.node import Node
from repro.net.tcp import TcpConnection, TcpListener

#: HTTP request size (headers only).
REQUEST_BYTES = 350
#: Web server port.
HTTP_PORT = 80
#: Max concurrent object fetches per client (HTTP/1.0 browsers used 2-4).
MAX_CONCURRENT = 2


@dataclass(frozen=True, slots=True)
class PageVisit:
    """One page: object sizes in fetch order, then a think time."""

    object_sizes: tuple[int, ...]
    think_s: float

    @property
    def total_bytes(self) -> int:
        return sum(self.object_sizes)


@dataclass(frozen=True, slots=True)
class WebScript:
    """A reproducible browsing session."""

    visits: tuple[PageVisit, ...]

    @property
    def total_bytes(self) -> int:
        return sum(visit.total_bytes for visit in self.visits)

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        n_pages: int = 30,
        mean_think_s: float = 4.0,
        mean_object_kb: float = 12.0,
        max_object_kb: float = 150.0,
        mean_objects_per_page: float = 5.0,
    ) -> "WebScript":
        """Draw a script: lognormal object sizes, geometric object counts,
        exponential think times — the classic web traffic shape."""
        if n_pages <= 0:
            raise ConfigurationError("need at least one page")
        visits = []
        for _ in range(n_pages):
            n_objects = 1 + int(rng.geometric(1.0 / mean_objects_per_page))
            sizes = []
            for _ in range(n_objects):
                size_kb = float(
                    np.exp(rng.normal(np.log(mean_object_kb), 1.0))
                )
                size_kb = min(max_object_kb, max(1.0, size_kb))
                sizes.append(int(size_kb * 1024))
            think = float(rng.exponential(mean_think_s))
            visits.append(PageVisit(tuple(sizes), think))
        return cls(tuple(visits))


class WebServerApp:
    """Serves scripted objects: read a request, stream the size, close.

    The response size comes from the request packet's metadata — the
    client knows its own script — which stands in for the URL path a
    real server would parse.
    """

    def __init__(self, server: Node, port: int = HTTP_PORT) -> None:
        self.server = server
        self.port = port
        self.requests_served = 0
        self.bytes_served = 0
        TcpListener(server, port, self._on_accept)
        self._conn_meta: dict[TcpConnection, int] = {}

    def _on_accept(self, conn: TcpConnection) -> None:
        state = {"request_bytes": 0, "size": None}

        def on_data(nbytes: int, packet) -> None:
            state["request_bytes"] += nbytes
            if state["size"] is None:
                size = packet.meta.get("object_size")
                if size is not None:
                    state["size"] = int(size)
            if (
                state["request_bytes"] >= REQUEST_BYTES
                and state["size"] is not None
            ):
                self.requests_served += 1
                self.bytes_served += state["size"]
                conn.send(state["size"])
                conn.close()

        conn.on_data = on_data


class WebClientApp:
    """Runs a :class:`WebScript` against a web server."""

    def __init__(
        self,
        client: Node,
        server_endpoint: Endpoint,
        script: WebScript,
        start_at: float = 0.0,
        stop_at: Optional[float] = None,
    ) -> None:
        self.client = client
        self.sim = client.sim
        self.server_endpoint = server_endpoint
        self.script = script
        self.start_at = start_at
        self.stop_at = stop_at
        self.pages_loaded = 0
        self.objects_loaded = 0
        self.bytes_received = 0
        self.page_latencies: list[float] = []
        self.object_latencies: list[float] = []
        self.sim.process(self._browse())

    def _fetch_object(self, size: int):
        """Fetch one object on a fresh connection; returns its latency.

        Completion is detected by byte count (the browser knows the
        content length), not by the FIN — the FIN trails the marked
        last data packet and is typically exchanged lazily while the
        WNIC sleeps.
        """
        sim = self.sim
        started = sim.now
        done = sim.event()

        received = {"bytes": 0}

        def on_data(nbytes: int, packet) -> None:
            received["bytes"] += nbytes
            self.bytes_received += nbytes
            if received["bytes"] >= size and not done.triggered:
                done.succeed(sim.now - started)

        def on_close(conn) -> None:
            if not done.triggered:
                done.succeed(sim.now - started)

        conn = TcpConnection.connect(
            self.client,
            self.server_endpoint,
            on_data=on_data,
            on_close=on_close,
        )

        def send_request(_conn) -> None:
            conn.send(REQUEST_BYTES)

        conn.on_established = send_request
        # The object size rides in segment metadata (stand-in for the URL).
        original_tx = conn.on_segment_tx

        def tag_request(packet) -> None:
            packet.meta["object_size"] = size
            if original_tx is not None:
                original_tx(packet)

        conn.on_segment_tx = tag_request
        latency = yield done
        self.objects_loaded += 1
        self.object_latencies.append(latency)
        return latency

    def _browse(self):
        sim = self.sim
        if self.start_at > sim.now:
            yield sim.timeout(self.start_at - sim.now)
        for visit in self.script.visits:
            if self.stop_at is not None and sim.now >= self.stop_at:
                return
            page_started = sim.now
            pending = list(visit.object_sizes)
            # Fetch with limited concurrency.
            while pending:
                batch = pending[:MAX_CONCURRENT]
                pending = pending[MAX_CONCURRENT:]
                fetches = [
                    self.sim.process(self._fetch_object(size))
                    for size in batch
                ]
                yield sim.all_of(fetches)
            self.pages_loaded += 1
            self.page_latencies.append(sim.now - page_started)
            yield sim.timeout(visit.think_s)

    @property
    def mean_object_latency(self) -> float:
        """Average per-object end-to-end latency (Figure 7 right axis)."""
        if not self.object_latencies:
            return 0.0
        return sum(self.object_latencies) / len(self.object_latencies)
