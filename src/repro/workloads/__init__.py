"""Workload generators reproducing the paper's client activity (§4.1).

* :mod:`~repro.workloads.video` — unicast VBR video streams with the
  paper's effective bitrates (34/80/225/450 kbps for nominal
  56/128/256/512 kbps) and RealServer-style loss adaptation;
* :mod:`~repro.workloads.web` — scripted web browsing generating
  multiple concurrent TCP streams per client;
* :mod:`~repro.workloads.ftp` — bulk TCP downloads.
"""

from repro.workloads.ftp import FtpClientApp, FtpServerApp
from repro.workloads.video import (
    EFFECTIVE_BITRATE_BPS,
    VideoClientApp,
    VideoServerApp,
    VideoStreamConfig,
)
from repro.workloads.web import WebClientApp, WebServerApp, WebScript

__all__ = [
    "EFFECTIVE_BITRATE_BPS",
    "FtpClientApp",
    "FtpServerApp",
    "VideoClientApp",
    "VideoServerApp",
    "VideoStreamConfig",
    "WebClientApp",
    "WebScript",
    "WebServerApp",
]
