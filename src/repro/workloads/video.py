"""VBR video streaming (the paper's RealServer / RealOne workload).

The paper streams a 1:59 trailer encoded at nominal 56/128/256/512 kbps
whose *effective* bitrates are 34/80/225/450 kbps. We synthesize the
same load: a unicast UDP packet train whose rate varies per half-second
segment (lognormal factors around the effective rate, emulating VBR
GOP structure), seeded per client so every run is reproducible.

RealServer's adaptation — the cause of the paper's 512 kbps anomaly,
where streams downshift once the shared medium saturates and the
"lossy" connection is blamed — is reproduced by
:class:`VideoClientApp` sending periodic receiver reports upstream and
:class:`VideoServerApp` dropping to the next lower tier when reported
loss exceeds a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.addr import Endpoint
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.udp import UdpSocket
from repro.units import kbps

#: nominal (kbps) -> effective bits/s, straight from the paper (§4.1).
EFFECTIVE_BITRATE_BPS = {
    56: kbps(34),
    128: kbps(80),
    256: kbps(225),
    512: kbps(450),
}
#: Downshift order used by the adaptation logic.
TIERS = (512, 256, 128, 56)

#: UDP ports.
VIDEO_PORT = 5004
FEEDBACK_PORT = 5005

#: Receiver reports every this many seconds.
FEEDBACK_INTERVAL_S = 2.0
#: Reported loss above this triggers a downshift.
ADAPT_LOSS_THRESHOLD = 0.05


@dataclass
class VideoStreamConfig:
    """One client's stream parameters."""

    nominal_kbps: int = 56
    duration_s: float = 119.0  # the 1:59 trailer
    segment_s: float = 0.5  # VBR granularity
    packet_payload: int = 700  # typical RealVideo datagram
    rate_sigma: float = 0.35  # lognormal VBR spread
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.nominal_kbps not in EFFECTIVE_BITRATE_BPS:
            raise ConfigurationError(
                f"unknown tier {self.nominal_kbps}; "
                f"choose from {sorted(EFFECTIVE_BITRATE_BPS)}"
            )
        if self.duration_s <= 0 or self.segment_s <= 0:
            raise ConfigurationError("durations must be positive")

    @property
    def effective_bps(self) -> float:
        return EFFECTIVE_BITRATE_BPS[self.nominal_kbps]

    @property
    def total_bytes(self) -> int:
        """Nominal stream volume (before VBR noise and adaptation)."""
        return int(self.effective_bps * self.duration_s / 8)


class VideoServerApp:
    """Streams one unicast video to one client over UDP."""

    def __init__(
        self,
        server: Node,
        client_endpoint: Endpoint,
        config: VideoStreamConfig,
        rng: np.random.Generator,
        stream_id: int = 0,
        start_at: float = 0.0,
    ) -> None:
        self.server = server
        self.sim = server.sim
        self.client_endpoint = client_endpoint
        self.config = config
        self.rng = rng
        self.stream_id = stream_id
        self.start_at = start_at
        self.current_tier = config.nominal_kbps
        self.downshifts = 0
        self.bytes_sent = 0
        self.packets_sent = 0
        self._seq = 0
        self._socket = UdpSocket(server, 20000 + stream_id)
        self.feedback_endpoint = Endpoint(server.ip, FEEDBACK_PORT + stream_id)
        self._feedback_socket = UdpSocket(
            server,
            FEEDBACK_PORT + stream_id,
            on_receive=self._on_feedback,
        )
        self.done = False
        self._end_at = 0.0
        self._segment_left = 0
        self._spacing = 0.0
        # Same single push at construction as the old process bootstrap.
        self.sim.call_later(0.0, self._start)

    def _on_feedback(self, packet: Packet) -> None:
        if not self.config.adaptive:
            return
        loss = packet.meta.get("loss_fraction", 0.0)
        if loss > ADAPT_LOSS_THRESHOLD:
            index = TIERS.index(self.current_tier)
            if index + 1 < len(TIERS):
                self.current_tier = TIERS[index + 1]
                self.downshifts += 1

    # The stream is a callback chain (one timer per packet) rather than
    # a generator process. Per tick the chain makes exactly one heap
    # push at the instant the old ``yield sim.timeout(spacing)`` did,
    # and the per-segment VBR draw happens at the same tick it did in
    # the generator, so the packet timeline — and the shared RNG stream
    # — are byte-identical.

    def _start(self) -> None:
        sim = self.sim
        if self.start_at > sim.now:
            sim.call_later(self.start_at - sim.now, self._begin)
        else:
            self._begin()

    def _begin(self) -> None:
        self._end_at = self.sim.now + self.config.duration_s
        self._tick()

    def _tick(self) -> None:
        sim = self.sim
        config = self.config
        if sim.now >= self._end_at:
            self.done = True
            return
        if self._segment_left == 0:
            rate = EFFECTIVE_BITRATE_BPS[self.current_tier]
            factor = float(
                np.exp(self.rng.normal(0.0, config.rate_sigma))
            )
            segment_bytes = max(
                config.packet_payload,
                int(rate * factor * config.segment_s / 8),
            )
            n_packets = max(1, round(segment_bytes / config.packet_payload))
            self._segment_left = n_packets
            self._spacing = config.segment_s / n_packets
        self._socket.sendto(
            config.packet_payload,
            self.client_endpoint,
            seq=self._seq,
            meta={"stream": "video", "tier": self.current_tier},
        )
        self._seq += 1
        self.packets_sent += 1
        self.bytes_sent += config.packet_payload
        self._segment_left -= 1
        sim.call_later(self._spacing, self._tick)


class VideoClientApp:
    """Receives the stream, tracks loss, reports upstream."""

    def __init__(
        self,
        client: Node,
        server_endpoint: Endpoint,
        feedback_endpoint: Optional[Endpoint] = None,
        local_port: int = VIDEO_PORT,
        report_offset_s: float = 0.0,
    ) -> None:
        self.client = client
        self.sim = client.sim
        self.server_endpoint = server_endpoint
        self.feedback_endpoint = feedback_endpoint
        self.report_offset_s = report_offset_s
        self.packets_received = 0
        self.bytes_received = 0
        self.highest_seq = -1
        self._window_received = 0
        self._window_highest = -1
        self._window_base = -1
        self._socket = UdpSocket(client, local_port, on_receive=self._on_packet)
        self._feedback_socket = (
            UdpSocket(client, local_port + 1000) if feedback_endpoint else None
        )
        if feedback_endpoint is not None:
            self.sim.process(self._report_loop())

    def _on_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.payload_size
        self.highest_seq = max(self.highest_seq, packet.seq)
        self._window_received += 1
        self._window_highest = max(self._window_highest, packet.seq)

    @property
    def loss_fraction(self) -> float:
        """Lifetime loss estimate from sequence gaps."""
        expected = self.highest_seq + 1
        if expected <= 0:
            return 0.0
        return max(0.0, 1.0 - self.packets_received / expected)

    def _report_loop(self):
        sim = self.sim
        # Stagger the first report: real players' RTCP timers are phased
        # by when each stream started, not synchronized to each other
        # (synchronized reports would collide with schedule broadcasts).
        yield sim.timeout(self.report_offset_s % FEEDBACK_INTERVAL_S)
        while True:
            yield sim.timeout(FEEDBACK_INTERVAL_S)
            expected = self._window_highest - self._window_base
            loss = 0.0
            if expected > 0:
                loss = max(0.0, 1.0 - self._window_received / expected)
            self._feedback_socket.sendto(
                64,
                self.feedback_endpoint,
                meta={"loss_fraction": loss},
            )
            self._window_base = self._window_highest
            self._window_received = 0
