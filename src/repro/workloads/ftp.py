"""Bulk FTP-style downloads (the paper's third traffic type)."""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.net.addr import Endpoint
from repro.net.node import Node
from repro.net.tcp import TcpConnection, TcpListener

#: Control-channel request size.
REQUEST_BYTES = 120
#: FTP data port.
FTP_PORT = 21


class FtpServerApp:
    """Serves one file per connection: read request, stream, close."""

    def __init__(self, server: Node, port: int = FTP_PORT) -> None:
        self.server = server
        self.port = port
        self.files_served = 0
        self.bytes_served = 0
        TcpListener(server, port, self._on_accept)

    def _on_accept(self, conn: TcpConnection) -> None:
        state = {"request_bytes": 0, "size": None, "sent": False}

        def on_data(nbytes: int, packet) -> None:
            state["request_bytes"] += nbytes
            if state["size"] is None:
                size = packet.meta.get("file_size")
                if size is not None:
                    state["size"] = int(size)
            if (
                not state["sent"]
                and state["request_bytes"] >= REQUEST_BYTES
                and state["size"] is not None
            ):
                state["sent"] = True
                self.files_served += 1
                self.bytes_served += state["size"]
                conn.send(state["size"])
                conn.close()

        conn.on_data = on_data


class FtpClientApp:
    """Downloads one file of a configured size."""

    def __init__(
        self,
        client: Node,
        server_endpoint: Endpoint,
        file_size: int,
        start_at: float = 0.0,
    ) -> None:
        if file_size <= 0:
            raise ConfigurationError(f"file size must be positive: {file_size!r}")
        self.client = client
        self.sim = client.sim
        self.server_endpoint = server_endpoint
        self.file_size = file_size
        self.start_at = start_at
        self.bytes_received = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.sim.process(self._download())

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def transfer_time_s(self) -> Optional[float]:
        """Wall time of the transfer, once finished."""
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at

    def _download(self):
        sim = self.sim
        if self.start_at > sim.now:
            yield sim.timeout(self.start_at - sim.now)
        self.started_at = sim.now
        done = sim.event()

        def on_data(nbytes: int, packet) -> None:
            self.bytes_received += nbytes
            # Complete on byte count: the FIN trails the marked last
            # data packet and may only be exchanged lazily.
            if self.bytes_received >= self.file_size and not done.triggered:
                done.succeed(sim.now)

        def on_close(conn) -> None:
            if not done.triggered:
                done.succeed(sim.now)

        conn = TcpConnection.connect(
            self.client,
            self.server_endpoint,
            on_data=on_data,
            on_close=on_close,
        )
        conn.on_established = lambda c: conn.send(REQUEST_BYTES)
        original_tx = conn.on_segment_tx

        def tag_request(packet) -> None:
            packet.meta["file_size"] = self.file_size
            if original_tx is not None:
                original_tx(packet)

        conn.on_segment_tx = tag_request
        self.finished_at = yield done
