"""Drivers regenerating every figure of the paper's evaluation.

Each function expands its experiment grid into a
:class:`~repro.sweep.SweepSpec`, hands it to a
:class:`~repro.sweep.SweepEngine` (serial and cache-less by default;
callers pass an engine for parallelism and warm-cache reruns), and
shapes the results into plain data rows that the benchmark harness
prints in the paper's format. ``quick=True`` shrinks client counts and
durations for CI; the benchmarks run full scale.

Simulations are never invoked directly here — the ``SWP001`` analysis
rule pins every figure/table driver to the sweep engine, which is what
makes caching and fan-out apply to all of them uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import POLICY_NAMES
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    mixed,
    video_only,
)
from repro.net.channel import ChannelPlan
from repro.sweep import SweepEngine, SweepSpec
from repro.wnic.power import WAVELAN_2_4GHZ

#: Figure 4/5 access patterns (10 clients in the paper).
FIGURE4_PATTERNS = {
    "56K": [56] * 10,
    "256K": [256] * 10,
    "512K": [512] * 10,
    "56K_512K": [56] * 5 + [512] * 5,
    "All": [56] * 5 + [56, 128, 256, 512, 128],
}
#: Figure 5: seven video clients + three web clients.
FIGURE5_PATTERNS = {
    "56K/TCP": [56] * 7,
    "256K/TCP": [256] * 7,
    "512K/TCP": [512] * 7,
    "All/TCP": [56, 56, 128, 128, 256, 256, 512],
}
#: The three burst-interval policies every experiment sweeps.
INTERVALS = {"100ms": 0.1, "500ms": 0.5, "variable": None}


def _scale(pattern: list[int], quick: bool) -> list[int]:
    return pattern[:: 3] if quick else pattern


def _duration(quick: bool) -> float:
    return 30.0 if quick else 119.0


def _engine(engine: Optional[SweepEngine]) -> SweepEngine:
    return engine if engine is not None else SweepEngine()


def figure4(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Figure 4: ten UDP video clients, five access patterns, three
    burst intervals; rows carry avg/min/max savings and loss."""
    configs: list[ExperimentConfig] = []
    labels: list[dict] = []
    for interval_label, interval in INTERVALS.items():
        for pattern_label, pattern in FIGURE4_PATTERNS.items():
            configs.append(
                video_only(
                    _scale(pattern, quick),
                    burst_interval_s=interval,
                    duration_s=_duration(quick),
                    seed=seed,
                )
            )
            labels.append({"interval": interval_label, "pattern": pattern_label})
    outcome = _engine(engine).run(
        SweepSpec.experiments("figure4", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        summary = result.video_summary
        rows.append(
            {
                "figure": "4",
                "interval": label["interval"],
                "pattern": label["pattern"],
                "avg_saved_pct": summary.avg_saved_pct,
                "min_saved_pct": summary.min_saved_pct,
                "max_saved_pct": summary.max_saved_pct,
                "avg_loss_pct": summary.avg_loss_pct,
                "max_loss_pct": summary.max_loss_pct,
                "downshifts": result.downshifts,
            }
        )
    return rows


def figure5(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Figure 5: mixed video + web clients; separate UDP and TCP bars."""
    n_web = 1 if quick else 3
    configs = []
    labels = []
    for interval_label, interval in INTERVALS.items():
        for pattern_label, pattern in FIGURE5_PATTERNS.items():
            configs.append(
                mixed(
                    _scale(pattern, quick),
                    n_web=n_web,
                    burst_interval_s=interval,
                    duration_s=_duration(quick),
                    seed=seed,
                )
            )
            labels.append({"interval": interval_label, "pattern": pattern_label})
    outcome = _engine(engine).run(
        SweepSpec.experiments("figure5", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        rows.append(
            {
                "figure": "5",
                "interval": label["interval"],
                "pattern": label["pattern"],
                "udp_avg_saved_pct": result.video_summary.avg_saved_pct,
                "udp_min_saved_pct": result.video_summary.min_saved_pct,
                "udp_max_saved_pct": result.video_summary.max_saved_pct,
                "tcp_avg_saved_pct": result.tcp_summary.avg_saved_pct,
                "tcp_min_saved_pct": result.tcp_summary.min_saved_pct,
                "tcp_max_saved_pct": result.tcp_summary.max_saved_pct,
                "avg_loss_pct": result.summary.avg_loss_pct,
            }
        )
    return rows


def figure6(
    seed: int = 0,
    quick: bool = False,
    early_amounts_ms: tuple = (0, 2, 4, 6, 8, 10),
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Figure 6: early-transition sweep on a 100 ms interval.

    Wasted energy is split, as in the paper, into the early-wake
    component and the missed-schedule component (both charged at the
    awake-vs-sleep power difference). Missed-packet percentages come
    along for the §4.3 companion numbers (0.97-1.83 %).
    """
    waste_rate_w = WAVELAN_2_4GHZ.idle_w - WAVELAN_2_4GHZ.sleep_w
    n_clients = 2 if quick else 4
    configs = [
        video_only(
            [56] * n_clients,
            burst_interval_s=0.1,
            duration_s=_duration(quick),
            seed=seed,
            early_s=early_ms / 1000.0,
        )
        for early_ms in early_amounts_ms
    ]
    labels = [{"early_ms": early_ms} for early_ms in early_amounts_ms]
    outcome = _engine(engine).run(
        SweepSpec.experiments("figure6", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        early_j = sum(r.early_wait_s for r in result.reports) * waste_rate_w
        miss_j = sum(r.miss_recovery_s for r in result.reports) * waste_rate_w
        missed_schedules = sum(r.missed_schedules for r in result.reports)
        heard = sum(r.schedules_heard for r in result.reports)
        rows.append(
            {
                "figure": "6",
                "early_ms": label["early_ms"],
                "early_waste_j": early_j,
                "missed_schedule_waste_j": miss_j,
                "total_waste_j": early_j + miss_j,
                "missed_schedules": missed_schedules,
                "schedules_heard": heard,
                "missed_pct": result.summary.avg_loss_pct,
                "avg_saved_pct": result.summary.avg_saved_pct,
            }
        )
    return rows


def figure7(
    seed: int = 0,
    quick: bool = False,
    tcp_weights: tuple = (0.10, 0.33, 0.56),
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Figure 7: static schedule with fixed TCP/UDP slots at 500 ms.

    Left panel: per-fidelity video energy *used* (the paper plots
    percentage used, not saved). Right panel: the TCP client's energy
    used and its end-to-end object latency.
    """
    fidelities = [56, 128, 256, 512]
    video_specs = [
        ClientSpec("video", video_kbps=rate)
        for rate in (fidelities if quick else fidelities * 2)
    ]
    configs = [
        ExperimentConfig(
            clients=video_specs + [ClientSpec("web")],
            burst_interval_s=0.5,
            scheduler="static",
            static_tcp_weight=weight,
            duration_s=_duration(quick),
            seed=seed,
        )
        for weight in tcp_weights
    ]
    labels = [{"tcp_weight": weight} for weight in tcp_weights]
    outcome = _engine(engine).run(
        SweepSpec.experiments("figure7", configs, labels)
    )
    rows = []
    for config, label, result in zip(configs, labels, outcome.results):
        weight = label["tcp_weight"]
        per_fidelity: dict[int, list[float]] = {f: [] for f in fidelities}
        for report, spec in zip(result.reports, config.clients):
            if spec.kind == "video":
                per_fidelity[spec.video_kbps].append(
                    100.0 - report.energy_saved_pct
                )
        tcp_report = result.reports[-1]
        rows.append(
            {
                "figure": "7",
                "tcp_weight_pct": round(weight * 100),
                "video_energy_used_pct": {
                    f: sum(v) / len(v) for f, v in per_fidelity.items() if v
                },
                "tcp_energy_used_pct": 100.0 - tcp_report.energy_saved_pct,
                "tcp_latency_ms": tcp_report.extra.get(
                    "mean_object_latency_s", 0.0
                )
                * 1000.0,
                "tcp_objects": tcp_report.extra.get("objects_loaded", 0),
            }
        )
    return rows


#: Channel plan the Pareto sweep runs its simulations under: bursty
#: per-client fading deep enough that channel awareness matters.
PARETO_CHANNEL = ChannelPlan(
    p_good_bad=0.15, p_bad_good=0.35, loss_bad=0.85, epoch_s=0.25
)


def pareto(
    seed: int = 0,
    quick: bool = False,
    policies: tuple = POLICY_NAMES,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Energy × delay Pareto front of the scheduling-policy family.

    Two engine-routed sweeps share one result set:

    * **sim rows** — full testbed runs under :data:`PARETO_CHANNEL`,
      one per policy; energy is the paper's savings percentage, delay
      is the proxy's byte-weighted mean queueing delay.
    * **model rows** — the discrete (queue, channel) model of
      :mod:`repro.core.policy` averaged over random instances, one row
      per policy **plus the clairvoyant DP optimum** — the lower-bound
      anchor no online policy can beat.
    """
    unknown = sorted(set(policies) - set(POLICY_NAMES))
    if unknown:
        raise ConfigurationError(
            f"unknown pareto policies: {', '.join(unknown)}"
        )
    n_clients = 3 if quick else 6
    # 56 kbps video queues ~700 B per 100 ms interval, so this backlog
    # threshold lets the joint policy ride out ~4 bad intervals before
    # pushing through the fade — distinct from both "always send"
    # (dynamic) and "wait for max_defer" (channel).
    joint_threshold = 3000
    configs = [
        video_only(
            [56] * n_clients,
            burst_interval_s=0.1,
            duration_s=_duration(quick),
            seed=seed,
            policy=policy,
            policy_threshold_bytes=joint_threshold,
            channel=PARETO_CHANNEL,
        )
        for policy in policies
    ]
    labels = [{"policy": policy} for policy in policies]
    outcome = _engine(engine).run(
        SweepSpec.experiments("pareto", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        rows.append(
            {
                "figure": "pareto",
                "source": "sim",
                "policy": label["policy"],
                "avg_saved_pct": result.summary.avg_saved_pct,
                "mean_queue_delay_ms": result.mean_queue_delay_s * 1000.0,
                "avg_loss_pct": result.summary.avg_loss_pct,
                "policy_grants": result.policy_grants,
                "policy_defers": result.policy_defers,
            }
        )

    n_instances = 12 if quick else 48
    model_policies = list(policies) + ["optimal"]
    params = [
        {
            "policy": policy,
            "seed": seed,
            "n_instances": n_instances,
            "n_clients": 3,
            "horizon": 8,
        }
        for policy in model_policies
    ]
    model_labels = [{"policy": policy} for policy in model_policies]
    model_outcome = _engine(engine).run(
        SweepSpec.from_tasks(
            "pareto-model", "policy-model", params, model_labels
        )
    )
    for label, result in zip(model_labels, model_outcome.results):
        rows.append(
            {
                "figure": "pareto",
                "source": "model",
                "policy": label["policy"],
                "mean_total_cost": result["mean_total_cost"],
                "mean_energy_cost": result["mean_energy_cost"],
                "mean_delay_slots": result["mean_delay_slots"],
            }
        )
    return rows


#: Campus grid axes: cell counts × per-epoch roam probabilities.
CAMPUS_CELLS = (1, 2, 4)
CAMPUS_ROAM_RATES = (0.0, 0.02, 0.1)


def campus_grid(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Campus extension: energy saved × handoff count over a cell-count
    × roam-rate grid (sharded proxies, roaming video clients)."""
    from repro.campus import CampusTopology, MobilityPlan

    n_clients = 6 if quick else 16
    configs: list[ExperimentConfig] = []
    labels: list[dict] = []
    for n_cells in CAMPUS_CELLS:
        for roam_rate in CAMPUS_ROAM_RATES:
            if n_cells == 1 and roam_rate > 0:
                continue  # nowhere to roam
            campus = None
            if n_cells > 1:
                campus = CampusTopology(
                    n_cells=n_cells,
                    mobility=(
                        MobilityPlan(roam_rate=roam_rate)
                        if roam_rate > 0
                        else None
                    ),
                )
            configs.append(
                ExperimentConfig(
                    clients=[ClientSpec("video", video_kbps=56)] * n_clients,
                    burst_interval_s=0.5,
                    duration_s=_duration(quick),
                    start_stagger_s=0.25,
                    seed=seed,
                    campus=campus,
                )
            )
            labels.append({"cells": n_cells, "roam_rate": roam_rate})
    outcome = _engine(engine).run(
        SweepSpec.experiments("campus", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        summary = result.video_summary
        rows.append(
            {
                "figure": "campus",
                "cells": label["cells"],
                "roam_rate": label["roam_rate"],
                "avg_saved_pct": summary.avg_saved_pct,
                "min_saved_pct": summary.min_saved_pct,
                "avg_loss_pct": summary.avg_loss_pct,
                "handoffs": result.handoffs,
                "handoff_bytes": result.handoff_bytes_transferred
                + result.handoff_bytes_dropped,
            }
        )
    return rows
