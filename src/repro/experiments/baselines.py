"""Baseline comparison: 802.11b power-save mode vs the paper's proxy.

The paper's related-work section argues (citing Chandra & Vahdat) that
802.11b PSM "is not a good match for multimedia". This driver makes
the comparison concrete on this codebase: the same CBR-ish UDP stream
delivered to (a) a PSM station behind a PSM access point, (b) a
power-aware client behind the scheduling proxy, (c) a naive always-on
client — measuring energy saved *and* per-packet delivery latency.

The three policy runs fan out through the sweep engine (task
``psm-baseline``), so they cache and parallelize like every other
driver; ``SWP001`` keeps it that way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.proxy import TransparentProxy
from repro.core.scheduler import DynamicScheduler
from repro.energy.analyzer import EnergyAnalyzer
from repro.net.access_point import AccessPoint
from repro.net.addr import Endpoint
from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.net.sniffer import MonitoringStation
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator, TraceRecorder
from repro.sweep import SweepEngine, SweepSpec
from repro.units import kbps, mbps, ms
from repro.wnic.power import WAVELAN_2_4GHZ
from repro.wnic.psm import PsmAccessPoint, PsmClient
from repro.wnic.states import Wnic

CLIENT_IP = "10.0.1.1"
SERVER_IP = "10.0.2.1"


@dataclass(frozen=True, slots=True)
class BaselineResult:
    """One policy's outcome."""

    policy: str
    energy_saved_pct: float
    mean_latency_ms: float
    p95_latency_ms: float
    packets_delivered: int
    packets_missed: int


def _run_one(policy: str, duration_s: float, rate_bps: float, seed: int) -> BaselineResult:
    sim = Simulator()
    streams = RngStreams(seed)
    trace = TraceRecorder()

    medium = WirelessMedium(sim, rng=streams.get("backoff"), trace=trace)
    ap_cls = PsmAccessPoint if policy == "psm" else AccessPoint
    ap = ap_cls(sim, "ap", "10.0.0.254", rng=streams.get("ap"), trace=trace)
    medium.attach(ap.wireless, gateway=True)
    monitor = MonitoringStation(sim)
    monitor.attach_to(medium)

    client = Node(sim, "client", CLIENT_IP, trace=trace)
    wl0 = client.add_interface("wl0")
    medium.attach(wl0)
    client.set_default_route(wl0)
    wnic = Wnic(sim, "client", trace=trace)

    server = Node(sim, "server", SERVER_IP, trace=trace)
    server_iface = server.add_interface("eth0")
    server.set_default_route(server_iface)

    if policy == "proxy":
        proxy = TransparentProxy(sim, "proxy", "10.0.0.1", {CLIENT_IP}, trace=trace)
        Link(sim, mbps(100), ms(0.1)).attach(proxy.air, ap.wired)
        Link(sim, mbps(100), ms(0.1)).attach(proxy.lan, server_iface)
        proxy.wire_routes({SERVER_IP})
        scheduler = DynamicScheduler(proxy, calibrate(medium), interval_s=0.1)
        proxy.attach_scheduler(scheduler)
        proxy.start()
        PowerAwareClient(client, wnic)
    else:
        Link(sim, mbps(100), ms(0.1)).attach(server_iface, ap.wired)
        if policy == "psm":
            wl0.rx_gate = wnic.can_receive
            PsmClient(client, wnic, ap)
        # "naive": wnic stays awake, no gate.

    latencies: list[float] = []
    UdpSocket(
        client, 5004,
        on_receive=lambda p: latencies.append(sim.now - p.created_at),
    )
    sender = UdpSocket(server, 20000)
    packet_gap = 700 * 8 / rate_bps

    def stream():
        while sim.now < duration_s:
            sender.sendto(700, Endpoint(CLIENT_IP, 5004))
            yield sim.timeout(packet_gap)

    sim.process(stream())
    sim.run(until=duration_s + 1.0)

    analyzer = EnergyAnalyzer(
        monitor.frames, WAVELAN_2_4GHZ, duration_s=sim.now, trace=trace
    )
    report = analyzer.analyze("client", CLIENT_IP, wnic)
    mean_latency = sum(latencies) / len(latencies) if latencies else 0.0
    p95 = sorted(latencies)[int(len(latencies) * 0.95)] if latencies else 0.0
    return BaselineResult(
        policy=policy,
        energy_saved_pct=report.energy_saved_pct,
        mean_latency_ms=mean_latency * 1000.0,
        p95_latency_ms=p95 * 1000.0,
        packets_delivered=len(latencies),
        packets_missed=report.packets_missed,
    )


def psm_comparison(
    seed: int = 0, quick: bool = False, rate_kbps: float = 225.0,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Run the three policies on the same stream; returns one row each."""
    duration = 20.0 if quick else 60.0
    policies = ("naive", "psm", "proxy")
    if engine is None:
        engine = SweepEngine()
    outcome = engine.run(
        SweepSpec.from_tasks(
            "psm_comparison",
            "psm-baseline",
            [
                {
                    "policy": policy,
                    "duration_s": duration,
                    "rate_bps": kbps(rate_kbps),
                    "seed": seed,
                }
                for policy in policies
            ],
            labels=[{"policy": policy} for policy in policies],
        )
    )
    return [
        {
            "experiment": "psm-comparison",
            "policy": result.policy,
            "energy_saved_pct": result.energy_saved_pct,
            "mean_latency_ms": result.mean_latency_ms,
            "p95_latency_ms": result.p95_latency_ms,
            "packets_delivered": result.packets_delivered,
            "packets_missed": result.packets_missed,
        }
        for result in outcome.results
    ]
