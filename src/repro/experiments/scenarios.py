"""Topology builders reproducing the paper's testbed (§4.1).

The physical layout::

    servers --- 100 Mb/s LAN --- proxy --- 100 Mb/s --- AP ))) clients
                                                         )))  monitor

Every stochastic element draws from named streams of one seeded
:class:`~repro.sim.random.RngStreams`, so a scenario is a pure function
of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.campus import (
    CampusTopology,
    Cell,
    HandoffCoordinator,
    MobilityModel,
)
from repro.core.proxy import TransparentProxy
from repro.faults import FaultController, FaultCounters, FaultPlan
from repro.net.access_point import AccessPoint
from repro.net.channel import ChannelModel, ChannelPlan
from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.net.packet import reset_packet_ids
from repro.net.sniffer import MonitoringStation
from repro.obs import NULL_RECORDER, Recorder, SimRecorder
from repro.sim import RngStreams, Simulator, TraceRecorder
from repro.units import mbps, ms
from repro.wnic.states import Wnic

#: Address plan (mirrors the paper's single-AP cell).
PROXY_IP = "10.0.0.1"
AP_IP = "10.0.0.254"
VIDEO_SERVER_IP = "10.0.2.1"
WEB_SERVER_IP = "10.0.2.2"
FTP_SERVER_IP = "10.0.2.3"
CLIENT_IP_BASE = "10.0.1."


def client_ip(index: int) -> str:
    """The address of client ``index`` (0-based)."""
    return f"{CLIENT_IP_BASE}{index + 1}"


@dataclass
class ScenarioConfig:
    """Knobs of the physical testbed."""

    n_clients: int = 10
    seed: int = 0
    wired_rate_bps: float = mbps(100)
    wired_latency_s: float = ms(0.1)
    medium_rate_bps: float = mbps(11)
    medium_frame_overhead_s: float = 0.0008
    medium_backoff_s: float = 0.0004
    medium_loss_rate: float = 0.0005  # sporadic channel loss
    ap_jitter_mean_s: float = 0.0009
    ap_spike_prob: float = 0.03
    ap_spike_max_s: float = 0.006
    servers: tuple[str, ...] = (VIDEO_SERVER_IP, WEB_SERVER_IP, FTP_SERVER_IP)
    tcp_mode: str = "split"  # see TransparentProxy
    #: Optional deterministic fault-injection plan (see repro.faults).
    faults: Optional[FaultPlan] = None
    #: Optional per-client channel model (see repro.net.channel). Draws
    #: on exclusive ``channel*`` streams: installing one never perturbs
    #: fault-plan or backoff replays.
    channel: Optional[ChannelPlan] = None
    #: Observability mode: "full" (trace + metrics + spans), "trace"
    #: (trace rows only, the pre-obs baseline), "metrics" (metrics only
    #: — no per-event trace rows, the 1k-client smoke mode), or "off"
    #: (NullRecorder; no trace, no metrics — postmortem analysis
    #: degrades gracefully).
    obs_mode: str = "full"
    #: Optional multi-cell campus layout (see repro.campus). None — or
    #: a trivial topology — builds the legacy single-AP testbed
    #: byte-identically.
    campus: Optional[CampusTopology] = None


@dataclass
class ClientHandle:
    """One mobile client: node + card (+ daemon, attached later)."""

    index: int
    node: Node
    wnic: Wnic
    daemon: object = None


@dataclass
class Scenario:
    """A fully wired testbed, ready for workloads and a scheduler."""

    config: ScenarioConfig
    sim: Simulator
    streams: RngStreams
    trace: Optional[TraceRecorder]
    medium: WirelessMedium
    ap: AccessPoint
    proxy: TransparentProxy
    servers: dict[str, Node]
    clients: list[ClientHandle]
    monitor: MonitoringStation
    lan_hub: Node = None
    #: Scenario-wide drop/fault accounting (always present).
    counters: FaultCounters = None
    #: Installed fault controller, or None when no plan was given.
    faults: Optional[FaultController] = None
    #: Installed channel model, or None when no plan was given.
    channel: Optional[ChannelModel] = None
    #: The shared instrumentation recorder (NULL_RECORDER when off).
    obs: Recorder = NULL_RECORDER
    #: The campus layout the scenario was built under (None = legacy).
    campus: Optional[CampusTopology] = None
    #: One entry per cell; ``cells[0]`` aliases the legacy
    #: medium/ap/monitor/proxy fields above.
    cells: list[Cell] = field(default_factory=list)
    #: Roaming state machine (None outside multi-cell runs).
    mobility: Optional[MobilityModel] = None
    #: Shard migration coordinator (None outside multi-cell runs).
    handoff: Optional[HandoffCoordinator] = None

    @property
    def video_server(self) -> Node:
        return self.servers[VIDEO_SERVER_IP]

    @property
    def web_server(self) -> Node:
        return self.servers[WEB_SERVER_IP]

    @property
    def ftp_server(self) -> Node:
        return self.servers[FTP_SERVER_IP]


def build_scenario(config: Optional[ScenarioConfig] = None) -> Scenario:
    """Assemble the testbed of §4.1 from a configuration.

    With a non-trivial ``config.campus`` the build replicates the cell
    (medium + AP + monitor + proxy shard) ``n_cells`` times behind one
    server LAN hub and partitions the clients round-robin across cells.
    Cell 0 keeps the legacy names, addresses and RNG streams, so a
    1-cell campus is byte-identical to the pre-campus testbed.
    """
    config = config or ScenarioConfig()
    campus = config.campus
    n_cells = 1 if campus is None else campus.n_cells
    if n_cells > config.n_clients:
        raise ConfigurationError(
            f"campus with {n_cells} cells needs at least {n_cells} "
            f"clients: {config.n_clients}"
        )
    reset_packet_ids()
    sim = Simulator()
    streams = RngStreams(seed=config.seed)
    if config.obs_mode == "full":
        recorder: Recorder = SimRecorder(trace=TraceRecorder())
    elif config.obs_mode == "trace":
        recorder = SimRecorder(
            trace=TraceRecorder(), record_metrics=False, record_spans=False
        )
    elif config.obs_mode == "metrics":
        recorder = SimRecorder(
            trace=TraceRecorder(), record_events=False, record_spans=False
        )
    elif config.obs_mode == "off":
        recorder = NULL_RECORDER
    else:
        raise ConfigurationError(f"unknown obs_mode: {config.obs_mode!r}")
    trace = recorder.trace
    counters = FaultCounters()

    #: Per-cell initial client partition (round-robin by index).
    cell_clients: list[set[str]] = [
        {client_ip(i) for i in range(config.n_clients) if i % n_cells == k}
        for k in range(n_cells)
    ]

    # -- wireless cells -----------------------------------------------------
    # Cell 0 uses the legacy stream names, node names and addresses;
    # extra cells suffix the streams with "@c{k}" and take addresses
    # from the 10.0.20{k} blocks.
    cells: list[Cell] = []
    for k in range(n_cells):
        suffix = "" if k == 0 else f"@c{k}"
        label = f"c{k}" if n_cells > 1 else ""
        loss_rng = streams.get(f"medium-loss{suffix}")
        drop = None
        if config.medium_loss_rate > 0:
            rate = config.medium_loss_rate

            def drop(packet, _rng=loss_rng, _rate=rate):
                return bool(_rng.random() < _rate)

        medium = WirelessMedium(
            sim,
            rate_bps=config.medium_rate_bps,
            frame_overhead_s=config.medium_frame_overhead_s,
            max_backoff_s=config.medium_backoff_s,
            rng=streams.get(f"medium-backoff{suffix}"),
            obs=recorder,
            drop=drop,
            counters=counters,
        )
        if label:
            medium.set_cell(label)
        ap = AccessPoint(
            sim,
            "ap" if k == 0 else f"ap{k}",
            AP_IP if k == 0 else f"10.0.{200 + k}.254",
            rng=streams.get(f"ap-jitter{suffix}"),
            obs=recorder,
            jitter_mean_s=config.ap_jitter_mean_s,
            spike_prob=config.ap_spike_prob,
            spike_max_s=config.ap_spike_max_s,
        )
        medium.attach(ap.wireless, gateway=True)

        monitor = MonitoringStation(
            sim, name="monitor" if k == 0 else f"monitor{k}"
        )
        monitor.attach_to(medium)

        proxy = TransparentProxy(
            sim,
            "proxy" if k == 0 else f"proxy{k}",
            PROXY_IP if k == 0 else f"10.0.{200 + k}.1",
            cell_clients[k],
            obs=recorder,
            tcp_mode=config.tcp_mode,
        )
        Link(
            sim, config.wired_rate_bps, config.wired_latency_s,
            counters=counters,
        ).attach(proxy.air, ap.wired)
        cells.append(
            Cell(
                index=k, label=label, medium=medium, ap=ap,
                monitor=monitor, proxy=proxy,
            )
        )

    # -- server LAN (shared by every cell) -----------------------------------
    hub = Node(sim, "lan-hub", "10.0.2.254", obs=recorder)
    hub.forwarding = True
    uplinks = []
    for k, cell in enumerate(cells):
        uplink = hub.add_interface("uplink" if k == 0 else f"uplink{k}")
        Link(
            sim, config.wired_rate_bps, config.wired_latency_s,
            counters=counters,
        ).attach(cell.proxy.lan, uplink)
        uplinks.append(uplink)
    hub.set_default_route(uplinks[0])

    servers: dict[str, Node] = {}
    for server_addr in config.servers:
        server = Node(sim, f"server-{server_addr}", server_addr, obs=recorder)
        server_iface = server.add_interface("eth0")
        hub_iface = hub.add_interface(f"port-{server_addr}")
        Link(
            sim, config.wired_rate_bps, config.wired_latency_s,
            counters=counters,
        ).attach(server_iface, hub_iface)
        server.set_default_route(server_iface)
        hub.add_route(server_addr, hub_iface)
        servers[server_addr] = server

    for cell in cells:
        cell.proxy.wire_routes(set(config.servers))
        cell.proxy.set_default_route(cell.proxy.lan)

    # -- clients ------------------------------------------------------------
    clients: list[ClientHandle] = []
    client_ifaces: dict[str, "object"] = {}
    for index in range(config.n_clients):
        ip = client_ip(index)
        node = Node(sim, f"client-{index}", ip, obs=recorder)
        iface = node.add_interface("wl0")
        cells[index % n_cells].medium.attach(iface)
        node.set_default_route(iface)
        wnic = Wnic(sim, node.name, obs=recorder)
        clients.append(ClientHandle(index=index, node=node, wnic=wnic))
        client_ifaces[ip] = iface
        if n_cells > 1:
            hub.add_route(ip, uplinks[index % n_cells])

    # -- fault injection ----------------------------------------------------
    # The controller's streams are cell 0's (legacy names); the other
    # cells share the same judge, so churn composes with roaming no
    # matter which cell a client is in when its outage window opens.
    controller = None
    if config.faults is not None:
        controller = FaultController(
            config.faults,
            medium=cells[0].medium,
            streams=streams,
            ip_of=client_ip,
            trace=trace,
        ).install()
        for cell in cells[1:]:
            cell.medium.faults = cells[0].medium.faults

    # -- per-client channel model -------------------------------------------
    channel_model = None
    if config.channel is not None:
        all_client_ips = {client_ip(i) for i in range(config.n_clients)}
        channel_model = ChannelModel(
            config.channel,
            streams,
            sorted(all_client_ips),
            obs=recorder,
        )
        for cell in cells:
            cell.medium.channel = channel_model
            cell.proxy.channel = channel_model

    # -- campus machinery ----------------------------------------------------
    coordinator = None
    mobility = None
    if n_cells > 1:
        assert campus is not None
        coordinator = HandoffCoordinator(
            sim,
            cells,
            hub,
            uplinks,
            client_ifaces,
            campus.handoff,
            obs=recorder,
            counters=counters,
        )
        mobility = MobilityModel(
            sim,
            campus.mobility,
            n_cells,
            [client_ip(i) for i in range(config.n_clients)],
            streams,
            on_roam=coordinator.handoff,
            obs=recorder,
        )

    return Scenario(
        config=config,
        sim=sim,
        streams=streams,
        trace=trace,
        medium=cells[0].medium,
        ap=cells[0].ap,
        proxy=cells[0].proxy,
        servers=servers,
        clients=clients,
        monitor=cells[0].monitor,
        lan_hub=hub,
        counters=counters,
        faults=controller,
        channel=channel_model,
        obs=recorder,
        campus=campus,
        cells=cells,
        mobility=mobility,
        handoff=coordinator,
    )
