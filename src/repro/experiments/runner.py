"""Experiment runner: configuration → scenario → workloads → reports.

The runner is the one place where all the pieces meet: it wires the
testbed (:mod:`~repro.experiments.scenarios`), the scheduling policy,
the client daemons and the workloads, runs the simulation, and feeds
the monitoring station's capture through the energy analyzer — the
exact pipeline of the paper's §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.campus import CampusTopology
from repro.core.bandwidth_model import calibrate
from repro.core.client import DEFAULT_FALLBACK_AFTER_MISSES, PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator, FixedClockCompensator
from repro.core.policy import POLICY_NAMES, make_policy
from repro.core.scheduler import DynamicScheduler
from repro.core.static_schedule import StaticClient, StaticScheduler, build_layout
from repro.energy.analyzer import EnergyAnalyzer
from repro.energy.optimal import optimal_energy_saved_pct
from repro.energy.report import ClientReport, ExperimentSummary, summarize
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.net.addr import Endpoint
from repro.net.channel import ChannelPlan
from repro.obs import NULL_RECORDER, Recorder
from repro.units import mib
from repro.wnic.power import WAVELAN_2_4GHZ, PowerModel
from repro.workloads.ftp import FTP_PORT, FtpClientApp, FtpServerApp
from repro.workloads.video import (
    VIDEO_PORT,
    VideoClientApp,
    VideoServerApp,
    VideoStreamConfig,
)
from repro.workloads.web import HTTP_PORT, WebClientApp, WebScript, WebServerApp

from repro.experiments.scenarios import (
    FTP_SERVER_IP,
    ScenarioConfig,
    VIDEO_SERVER_IP,
    WEB_SERVER_IP,
    build_scenario,
    client_ip,
)


@dataclass(frozen=True, slots=True)
class ClientSpec:
    """What one client does during the experiment."""

    kind: str  # "video" | "web" | "ftp"
    video_kbps: int = 56
    ftp_bytes: int = mib(2)
    web_pages: int = 40

    def __post_init__(self) -> None:
        if self.kind not in ("video", "web", "ftp"):
            raise ConfigurationError(f"unknown client kind: {self.kind!r}")


@dataclass
class ExperimentConfig:
    """Full description of one experiment run."""

    clients: list[ClientSpec] = field(
        default_factory=lambda: [ClientSpec("video")] * 10
    )
    #: Fixed burst interval in seconds, or None for the variable policy.
    burst_interval_s: Optional[float] = 0.5
    scheduler: str = "dynamic"  # "dynamic" | "static"
    static_tcp_weight: float = 0.0
    early_s: float = 0.006
    compensator: str = "adaptive"  # "adaptive" | "fixed"
    fixed_clock_offset_error_s: float = 0.0
    duration_s: float = 119.0
    warmup_s: float = 0.5
    start_stagger_s: float = 1.0  # paper: requests spaced ~1 s apart
    seed: int = 0
    reuse_schedules: bool = False
    adaptive_video: bool = True
    power: PowerModel = WAVELAN_2_4GHZ
    scenario: Optional[ScenarioConfig] = None
    #: Deterministic fault-injection plan (see :mod:`repro.faults`).
    #: Threaded into the scenario, the scheduler's slot-reclamation
    #: timeout and every client's fallback/clock-error wiring.
    faults: Optional[FaultPlan] = None
    #: Slot-admission policy ("dynamic" | "channel" | "joint"); only
    #: meaningful with the dynamic scheduler. "dynamic" reproduces the
    #: paper byte-for-byte.
    policy: str = "dynamic"
    #: Backlog threshold (bytes) for the joint policy's bad-channel arm.
    policy_threshold_bytes: int = 1
    #: Max consecutive intervals the channel policy defers a client.
    policy_max_defer: int = 2
    #: Per-client channel model plan (see :mod:`repro.net.channel`).
    channel: Optional[ChannelPlan] = None
    #: Multi-cell campus topology (see :mod:`repro.campus`). None (or a
    #: trivial topology) reproduces the single-cell testbed exactly.
    campus: Optional[CampusTopology] = None
    #: False reproduces the paper's postmortem mode: clients receive
    #: even while "asleep", and drops are computed offline (§4.3).
    enforce_sleep_drops: bool = True
    #: False leaves clients naive (always awake) — baselines/ablations.
    power_aware_clients: bool = True
    #: Observability mode: "full", "trace" (rows only), "metrics"
    #: (counters only — the 1k-client smoke mode), or "off"
    #: (NullRecorder). Only consulted when ``scenario`` is None;
    #: an explicit ScenarioConfig carries its own obs_mode.
    obs_mode: str = "full"

    def __post_init__(self) -> None:
        if self.scheduler not in ("dynamic", "static"):
            raise ConfigurationError(f"unknown scheduler: {self.scheduler!r}")
        if self.compensator not in ("adaptive", "fixed"):
            raise ConfigurationError(f"unknown compensator: {self.compensator!r}")
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(f"unknown policy: {self.policy!r}")
        if self.policy != "dynamic" and self.scheduler != "dynamic":
            raise ConfigurationError(
                "slot-admission policies require the dynamic scheduler"
            )
        if not self.clients:
            raise ConfigurationError("experiment needs at least one client")
        if (
            self.campus is not None
            and self.campus.n_cells > 1
            and self.scheduler != "dynamic"
        ):
            raise ConfigurationError(
                "multi-cell campus scheduling requires the dynamic scheduler"
            )


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    reports: list[ClientReport]
    summary: ExperimentSummary
    video_summary: ExperimentSummary
    tcp_summary: ExperimentSummary
    peak_proxy_buffer_bytes: int
    schedules_sent: int
    schedules_reused: int
    medium_frames: int
    medium_misses: int
    downshifts: int
    duration_s: float
    #: Unified per-fault/drop counters (empty dict when nothing dropped).
    fault_counters: dict = field(default_factory=dict)
    #: Burst slots reclaimed from / restored to silent clients.
    slots_reclaimed: int = 0
    slots_restored: int = 0
    #: Slot-admission policy that ran ("dynamic" unless configured).
    policy: str = "dynamic"
    #: Slots granted / deferred by the admission policy.
    policy_grants: int = 0
    policy_defers: int = 0
    #: Byte-weighted mean time data sat in the proxy's client queues.
    mean_queue_delay_s: float = 0.0
    #: Campus shape and handoff accounting (cells == 1 outside campus
    #: runs; the byte counters follow the configured handoff policy).
    cells: int = 1
    handoffs: int = 0
    handoff_bytes_transferred: int = 0
    handoff_bytes_dropped: int = 0
    #: Deterministic metrics snapshot (None unless obs_mode == "full").
    metrics: Optional[dict] = None
    #: The run's recorder, for exporting events/timelines postmortem.
    obs: Recorder = NULL_RECORDER

    @property
    def clients(self) -> list[ClientReport]:
        """Alias used throughout the examples."""
        return self.reports

    def report_for(self, index: int) -> ClientReport:
        return self.reports[index]


def video_only(
    bitrates_kbps: list[int],
    burst_interval_s: Optional[float] = 0.5,
    **overrides,
) -> ExperimentConfig:
    """The Figure 4 configurations: N video clients."""
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=rate) for rate in bitrates_kbps],
        burst_interval_s=burst_interval_s,
        **overrides,
    )


def mixed(
    video_bitrates_kbps: list[int],
    n_web: int,
    burst_interval_s: Optional[float] = 0.5,
    **overrides,
) -> ExperimentConfig:
    """The Figure 5 configurations: video + web clients."""
    clients = [ClientSpec("video", video_kbps=r) for r in video_bitrates_kbps]
    clients += [ClientSpec("web")] * n_web
    return ExperimentConfig(
        clients=clients, burst_interval_s=burst_interval_s, **overrides
    )


def run_experiment(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment end to end and analyze it."""
    scenario_config = config.scenario or ScenarioConfig(
        n_clients=len(config.clients), seed=config.seed,
        obs_mode=config.obs_mode,
    )
    if scenario_config.n_clients != len(config.clients):
        raise ConfigurationError(
            "scenario.n_clients must match len(config.clients)"
        )
    if config.faults is not None:
        if (
            scenario_config.faults is not None
            and scenario_config.faults != config.faults
        ):
            raise ConfigurationError(
                "fault plans given on both ExperimentConfig and "
                "ScenarioConfig disagree"
            )
        scenario_config.faults = config.faults
    if config.channel is not None:
        if (
            scenario_config.channel is not None
            and scenario_config.channel != config.channel
        ):
            raise ConfigurationError(
                "channel plans given on both ExperimentConfig and "
                "ScenarioConfig disagree"
            )
        scenario_config.channel = config.channel
    if config.campus is not None:
        if (
            scenario_config.campus is not None
            and scenario_config.campus != config.campus
        ):
            raise ConfigurationError(
                "campus topologies given on both ExperimentConfig and "
                "ScenarioConfig disagree"
            )
        scenario_config.campus = config.campus
    plan = scenario_config.faults
    scenario = build_scenario(scenario_config)
    sim = scenario.sim
    cost_model = calibrate(scenario.medium)

    # -- scheduling policy ---------------------------------------------------
    # One scheduler per proxy shard; single-cell runs see exactly the
    # legacy wiring (one cell, one scheduler).
    if config.scheduler == "dynamic":
        schedulers = []
        for cell in scenario.cells:
            sched = DynamicScheduler(
                cell.proxy,
                cost_model,
                interval_s=config.burst_interval_s,
                reuse_schedules=config.reuse_schedules,
                silence_timeout_s=(
                    plan.silence_timeout_s if plan is not None else None
                ),
                policy=make_policy(
                    config.policy,
                    threshold=config.policy_threshold_bytes,
                    max_defer=config.policy_max_defer,
                ),
            )
            cell.scheduler = sched
            schedulers.append(sched)
        scheduler = schedulers[0]
    else:
        if len(scenario.cells) > 1:
            raise ConfigurationError(
                "multi-cell campus scheduling requires the dynamic scheduler"
            )
        if config.burst_interval_s is None:
            raise ConfigurationError("static scheduling needs a fixed interval")
        udp_ips = [
            client_ip(i)
            for i, spec in enumerate(config.clients)
            if spec.kind == "video"
        ]
        tcp_ips = [
            client_ip(i)
            for i, spec in enumerate(config.clients)
            if spec.kind != "video"
        ]
        layout = build_layout(
            udp_ips or [client_ip(i) for i in range(len(config.clients))],
            interval_s=config.burst_interval_s,
            tcp_weight=config.static_tcp_weight,
            tcp_clients=tcp_ips,
        )
        scheduler = StaticScheduler(scenario.proxy, cost_model, layout)
        schedulers = [scheduler]
    for cell, sched in zip(scenario.cells, schedulers):
        cell.proxy.attach_scheduler(sched)
        cell.proxy.start()
    if scenario.mobility is not None:
        scenario.mobility.start()

    # -- client daemons -----------------------------------------------------
    for handle, spec in zip(scenario.clients, config.clients):
        if not config.power_aware_clients:
            continue  # naive clients: card stays in high-power mode
        if config.scheduler == "dynamic":
            if config.compensator == "adaptive":
                compensator = AdaptiveCompensator(early_s=config.early_s)
            else:
                compensator = FixedClockCompensator(
                    early_s=config.early_s,
                    clock_offset_estimate_s=config.fixed_clock_offset_error_s,
                )
            if scenario.faults is not None:
                compensator = scenario.faults.compensator_for(
                    handle.index, compensator
                )
            handle.daemon = PowerAwareClient(
                handle.node, handle.wnic, compensator, obs=scenario.obs,
                enforce_sleep_drops=config.enforce_sleep_drops,
                fallback_after_misses=(
                    plan.fallback_after_misses
                    if plan is not None
                    else DEFAULT_FALLBACK_AFTER_MISSES
                ),
            )
        else:
            handle.daemon = StaticClient(
                handle.node, handle.wnic, early_s=config.early_s,
                obs=scenario.obs,
            )

    # -- workloads ------------------------------------------------------------
    video_apps: dict[int, tuple[VideoServerApp, VideoClientApp]] = {}
    web_apps: dict[int, WebClientApp] = {}
    ftp_apps: dict[int, FtpClientApp] = {}
    if any(spec.kind == "web" for spec in config.clients):
        WebServerApp(scenario.web_server)
    if any(spec.kind == "ftp" for spec in config.clients):
        FtpServerApp(scenario.ftp_server)

    for index, spec in enumerate(config.clients):
        handle = scenario.clients[index]
        start_at = config.warmup_s + index * config.start_stagger_s
        if spec.kind == "video":
            stream_config = VideoStreamConfig(
                nominal_kbps=spec.video_kbps,
                duration_s=config.duration_s,
                adaptive=config.adaptive_video,
            )
            server_app = VideoServerApp(
                scenario.video_server,
                Endpoint(handle.node.ip, VIDEO_PORT),
                stream_config,
                rng=scenario.streams.get(f"video:{index}"),
                stream_id=index,
                start_at=start_at,
            )
            client_app = VideoClientApp(
                handle.node,
                Endpoint(VIDEO_SERVER_IP, VIDEO_PORT),
                feedback_endpoint=server_app.feedback_endpoint
                if config.adaptive_video
                else None,
                report_offset_s=0.05 + 0.293 * index,
            )
            video_apps[index] = (server_app, client_app)
        elif spec.kind == "web":
            script = WebScript.generate(
                scenario.streams.get(f"web:{index}"), n_pages=spec.web_pages
            )
            web_apps[index] = WebClientApp(
                handle.node,
                Endpoint(WEB_SERVER_IP, HTTP_PORT),
                script,
                start_at=start_at,
                stop_at=config.warmup_s + config.duration_s,
            )
        else:
            ftp_apps[index] = FtpClientApp(
                handle.node,
                Endpoint(FTP_SERVER_IP, FTP_PORT),
                file_size=spec.ftp_bytes,
                start_at=start_at,
            )

    # -- run --------------------------------------------------------------------
    horizon = config.warmup_s + config.duration_s + 2.0
    sim.run(until=horizon)

    # -- analyze -------------------------------------------------------------------
    if len(scenario.cells) > 1:
        # One monitor per cell: merge the captures into a single
        # campus-wide timeline (ties broken by cell index, then by
        # capture order within the cell), and hand the analyzer the
        # roaming timeline so broadcast receive energy is only charged
        # to clients resident in the frame's cell.
        keyed = [
            ((frame.end, cell.index, position), frame)
            for cell in scenario.cells
            for position, frame in enumerate(cell.monitor.frames)
        ]
        keyed.sort(key=lambda item: item[0])
        frames = tuple(frame for _, frame in keyed)
        residency = (
            scenario.mobility.residency()
            if scenario.mobility is not None
            else None
        )
    else:
        frames = scenario.monitor.frames
        residency = None
    analyzer = EnergyAnalyzer(
        frames,
        config.power,
        duration_s=sim.now,
        trace=scenario.trace,
        residency=residency,
    )
    effective_rate = cost_model.effective_rate_bps(mss=700)
    reports: list[ClientReport] = []
    downshifts = 0
    for index, spec in enumerate(config.clients):
        handle = scenario.clients[index]
        optimal_pct = None
        extra: dict = {}
        if spec.kind == "video":
            server_app, client_app = video_apps[index]
            downshifts += server_app.downshifts
            optimal_pct = optimal_energy_saved_pct(
                server_app.bytes_sent, sim.now, effective_rate, config.power
            )
            extra = {
                "app_bytes": client_app.bytes_received,
                "downshifts": server_app.downshifts,
                "app_loss": client_app.loss_fraction,
            }
        elif spec.kind == "web":
            app = web_apps[index]
            optimal_pct = optimal_energy_saved_pct(
                app.bytes_received,
                sim.now,
                cost_model.effective_rate_bps(),
                config.power,
            )
            extra = {
                "app_bytes": app.bytes_received,
                "pages_loaded": app.pages_loaded,
                "objects_loaded": app.objects_loaded,
                "mean_object_latency_s": app.mean_object_latency,
            }
        else:
            app = ftp_apps[index]
            optimal_pct = optimal_energy_saved_pct(
                app.bytes_received,
                sim.now,
                cost_model.effective_rate_bps(),
                config.power,
            )
            extra = {
                "app_bytes": app.bytes_received,
                "done": app.done,
                "transfer_time_s": app.transfer_time_s,
            }
        counters = getattr(handle.daemon, "counters", None) or {}
        if counters.get("fallbacks") or counters.get("resyncs"):
            extra["fallbacks"] = counters["fallbacks"]
            extra["resyncs"] = counters["resyncs"]
        reports.append(
            analyzer.analyze(
                name=handle.node.name,
                ip=handle.node.ip,
                wnic=handle.wnic,
                kind=spec.kind,
                optimal_saved_pct=optimal_pct,
                missed_schedules=counters.get("missed_schedules", 0),
                schedules_heard=counters.get("schedules_heard", 0),
                early_wait_s=counters.get(
                    "early_wait_s", getattr(handle.daemon, "early_wait_s", 0.0)
                ),
                miss_recovery_s=counters.get("miss_recovery_s", 0.0),
                extra=extra,
            )
        )

    video_reports = [r for r in reports if r.kind == "video"]
    tcp_reports = [r for r in reports if r.kind in ("web", "ftp")]
    drop_totals = scenario.counters.totals()

    # -- final observability rollups ----------------------------------------
    obs = scenario.obs
    obs.gauge_set("sim.duration_s", sim.now)
    for handle in scenario.clients:
        awake = handle.wnic.awake_time(sim.now)
        obs.gauge_set(
            "wnic.residency_s", awake,
            client=handle.node.ip, state="awake",
        )
        obs.gauge_set(
            "wnic.residency_s", sim.now - awake,
            client=handle.node.ip, state="sleep",
        )
        obs.gauge_set(
            "wnic.wake_count", handle.wnic.wake_count,
            client=handle.node.ip,
        )
    for reason, count in sorted(drop_totals.items()):
        obs.inc("drops", count, reason=reason)
    metrics = (
        obs.metrics.snapshot()
        if obs.metrics is not None and getattr(obs, "record_metrics", False)
        else None
    )
    delay_byte_s = 0.0
    dequeued_bytes = 0
    for cell in scenario.cells:
        cell_delay, cell_dequeued = cell.proxy.queue_delay_totals()
        delay_byte_s += cell_delay
        dequeued_bytes += cell_dequeued
    return ExperimentResult(
        config=config,
        reports=reports,
        summary=summarize(reports, drops=drop_totals),
        video_summary=summarize(video_reports),
        tcp_summary=summarize(tcp_reports),
        peak_proxy_buffer_bytes=sum(
            cell.proxy.peak_buffered_bytes for cell in scenario.cells
        ),
        schedules_sent=sum(
            getattr(s, "schedules_sent", 0) for s in schedulers
        ),
        schedules_reused=sum(
            getattr(s, "schedules_reused", 0) for s in schedulers
        ),
        medium_frames=sum(
            cell.medium.frames_sent for cell in scenario.cells
        ),
        medium_misses=sum(
            cell.medium.frames_missed for cell in scenario.cells
        ),
        downshifts=downshifts,
        duration_s=sim.now,
        fault_counters=drop_totals,
        slots_reclaimed=sum(
            getattr(s, "slots_reclaimed", 0) for s in schedulers
        ),
        slots_restored=sum(
            getattr(s, "slots_restored", 0) for s in schedulers
        ),
        policy=config.policy,
        policy_grants=sum(
            getattr(s, "policy_grants", 0) for s in schedulers
        ),
        policy_defers=sum(
            getattr(s, "policy_defers", 0) for s in schedulers
        ),
        mean_queue_delay_s=(
            delay_byte_s / dequeued_bytes if dequeued_bytes else 0.0
        ),
        cells=len(scenario.cells),
        handoffs=(
            scenario.handoff.handoffs if scenario.handoff is not None else 0
        ),
        handoff_bytes_transferred=(
            scenario.handoff.bytes_transferred
            if scenario.handoff is not None
            else 0
        ),
        handoff_bytes_dropped=(
            scenario.handoff.bytes_dropped
            if scenario.handoff is not None
            else 0
        ),
        metrics=metrics,
        obs=obs,
    )
