"""Experiment harness: scenario builders, runners, figures and tables.

Each experiment id (E1..E11) in DESIGN.md maps to a driver here; the
``benchmarks/`` tree calls these drivers and prints the same rows and
series the paper reports.
"""

from repro.experiments import baselines, figures, report_gen, tables
from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    ExperimentResult,
    mixed,
    run_experiment,
    video_only,
)
from repro.experiments.scenarios import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "ClientSpec",
    "ExperimentConfig",
    "ExperimentResult",
    "Scenario",
    "ScenarioConfig",
    "baselines",
    "build_scenario",
    "figures",
    "mixed",
    "report_gen",
    "run_experiment",
    "tables",
    "video_only",
]
