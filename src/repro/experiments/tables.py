"""Drivers for the paper's non-figure results and the ablations.

Covers the TCP-only experiment (§4.2, text), the optimal comparison
(§4.3), static-vs-dynamic (§4.3), the packet-drop experiments (§4.3,
Netfilter and DummyNet), the proxy memory claim (§3.2.2), the §5
schedule-reuse future-work extension, and the split-connection
ablation motivating the proxy's double-connection design (§2, §3.2).
"""

from __future__ import annotations

from typing import Optional

from repro.core.bandwidth_model import calibrate
from repro.energy.optimal import optimal_energy_saved_pct
from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    run_experiment,
    video_only,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.net.addr import Endpoint
from repro.net.node import Node
from repro.net.shaper import DummyNetPipe
from repro.net.tcp import TcpConnection, TcpListener
from repro.sim import RngStreams, Simulator
from repro.units import mbps, mib, ms
from repro.wnic.power import WAVELAN_2_4GHZ


def _duration(quick: bool) -> float:
    return 30.0 if quick else 119.0


def tcp_only(seed: int = 0, quick: bool = False) -> list[dict]:
    """E2 — §4.2 text: all clients browsing the web (70-80 % savings)."""
    rows = []
    n = 3 if quick else 10
    for label, interval in (("100ms", 0.1), ("500ms", 0.5), ("variable", None)):
        config = ExperimentConfig(
            clients=[ClientSpec("web")] * n,
            burst_interval_s=interval,
            duration_s=_duration(quick),
            seed=seed,
        )
        result = run_experiment(config)
        rows.append(
            {
                "experiment": "tcp-only",
                "interval": label,
                "avg_saved_pct": result.tcp_summary.avg_saved_pct,
                "min_saved_pct": result.tcp_summary.min_saved_pct,
                "max_saved_pct": result.tcp_summary.max_saved_pct,
                "avg_loss_pct": result.tcp_summary.avg_loss_pct,
                "pages_loaded": sum(
                    r.extra.get("pages_loaded", 0) for r in result.reports
                ),
            }
        )
    return rows


def optimal_comparison(seed: int = 0, quick: bool = False) -> list[dict]:
    """E4 — §4.3: measured savings versus the closed-form optimum.

    Paper values: optimal 90/83/77 %, measured 77/66/53 % for the
    56K/256K/512K video-only experiments at 500 ms.
    """
    rows = []
    n = 4 if quick else 10
    for rate, paper_optimal, paper_measured in (
        (56, 90.0, 77.0),
        (256, 83.0, 66.0),
        (512, 77.0, 53.0),
    ):
        config = video_only(
            [rate] * n, burst_interval_s=0.5,
            duration_s=_duration(quick), seed=seed,
        )
        result = run_experiment(config)
        optima = [
            r.optimal_saved_pct for r in result.reports
            if r.optimal_saved_pct is not None
        ]
        rows.append(
            {
                "experiment": "optimal-comparison",
                "stream": f"{rate}K",
                "optimal_pct": sum(optima) / len(optima),
                "measured_pct": result.video_summary.avg_saved_pct,
                "gap_pct": sum(optima) / len(optima)
                - result.video_summary.avg_saved_pct,
                "paper_optimal_pct": paper_optimal,
                "paper_measured_pct": paper_measured,
            }
        )
    return rows


def static_vs_dynamic(seed: int = 0, quick: bool = False) -> list[dict]:
    """E7 — §4.3: static TDMA beats dynamic for identical streams."""
    rows = []
    n = 4 if quick else 10
    for rate in (56, 256, 512):
        cells = {}
        for scheduler in ("static", "dynamic"):
            config = ExperimentConfig(
                clients=[ClientSpec("video", video_kbps=rate)] * n,
                burst_interval_s=0.1,
                scheduler=scheduler,
                duration_s=_duration(quick),
                seed=seed,
                adaptive_video=False,
            )
            result = run_experiment(config)
            saved = [r.energy_saved_pct for r in result.reports]
            mean = sum(saved) / len(saved)
            variance = sum((s - mean) ** 2 for s in saved) / len(saved)
            cells[scheduler] = (mean, variance)
        rows.append(
            {
                "experiment": "static-vs-dynamic",
                "stream": f"{rate}K",
                "static_avg_saved_pct": cells["static"][0],
                "static_variance": cells["static"][1],
                "dynamic_avg_saved_pct": cells["dynamic"][0],
                "dynamic_variance": cells["dynamic"][1],
            }
        )
    return rows


def drop_effect_netfilter(seed: int = 0, quick: bool = False) -> list[dict]:
    """E9a — §4.3: dropping packets while asleep versus receiving them.

    The paper configured Netfilter to really drop packets destined to a
    sleeping card and found transfers took no more than ~10 % longer.
    We run the same FTP download twice per early-transition setting:
    once with the physical receive gate enforced, once with it disabled
    (the paper's default postmortem mode), and compare transfer times.
    The aggressive ``early=0`` row forces misses so the comparison
    exercises real drops.
    """
    rows = []
    size = mib(1) if quick else mib(4)
    # The paper's setup is the single client ("we ran separate
    # experiments with one client and Netfilter"); the contended
    # variant adds background video so the transfer spans many
    # sleep/wake cycles and drops actually occur.
    background = [ClientSpec("video", video_kbps=256)] * (2 if quick else 4)
    for label_cfg, extra_clients in (
        ("single-client", []),
        ("contended", background),
    ):
        times = {}
        for enforce, label in (
            (True, "drops_enforced"), (False, "receive_anyway"),
        ):
            config = ExperimentConfig(
                clients=extra_clients + [ClientSpec("ftp", ftp_bytes=size)],
                burst_interval_s=0.5,
                duration_s=60.0 if quick else 119.0,
                seed=seed,
                enforce_sleep_drops=enforce,
            )
            result = run_experiment(config)
            times[label] = result.reports[-1].extra.get("transfer_time_s")
        slowdown = None
        if times["receive_anyway"] and times["drops_enforced"]:
            slowdown = times["drops_enforced"] / times["receive_anyway"] - 1.0
        rows.append(
            {
                "experiment": "drop-effect-netfilter",
                "setup": label_cfg,
                "transfer_s_drops_enforced": times["drops_enforced"],
                "transfer_s_receive_anyway": times["receive_anyway"],
                "slowdown_fraction": slowdown,
            }
        )
    return rows


def drop_effect_dummynet(
    seed: int = 0, transfer_bytes: int = mib(2)
) -> dict:
    """E9b — §4.3: a 4 Mb/s DummyNet pipe, 2 ms RTT, 5 % drop rate."""

    def run(plr: float) -> float:
        sim = Simulator()
        rng = RngStreams(seed=seed).get("dummynet")
        a = Node(sim, "client", "10.0.0.1")
        b = Node(sim, "server", "10.0.0.2")
        pipe = DummyNetPipe(sim, mbps(4), delay_s=ms(1), plr=plr, rng=rng)
        pipe.attach(a.add_interface("e"), b.add_interface("e"))
        a.set_default_route(a.interfaces["e"])
        b.set_default_route(b.interfaces["e"])

        def on_accept(conn):
            conn.on_established = lambda c: (c.send(transfer_bytes), c.close())

        TcpListener(b, 80, on_accept)
        finished = []
        client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
        done_probe = {"t": None}

        def on_data(n, p, c=client):
            if client.bytes_delivered >= transfer_bytes and done_probe["t"] is None:
                done_probe["t"] = sim.now

        client.on_data = on_data
        sim.run(until=600.0)
        return done_probe["t"] if done_probe["t"] is not None else float("inf")

    clean = run(0.0)
    lossy = run(0.05)
    return {
        "experiment": "drop-effect-dummynet",
        "transfer_s_clean": clean,
        "transfer_s_5pct_loss": lossy,
        "slowdown_fraction": lossy / clean - 1.0,
    }


def memory_footprint(seed: int = 0, quick: bool = False) -> dict:
    """E10 — §3.2.2: the proxy buffer stays small (≤512 KB claimed)."""
    clients = [ClientSpec("video", video_kbps=512)] * (4 if quick else 8)
    clients += [ClientSpec("web")] * 2
    config = ExperimentConfig(
        clients=clients,
        burst_interval_s=0.5,
        duration_s=_duration(quick),
        seed=seed,
    )
    result = run_experiment(config)
    return {
        "experiment": "memory-footprint",
        "peak_buffer_bytes": result.peak_proxy_buffer_bytes,
        "claimed_bound_bytes": 512 * 1024,
        "within_claim": result.peak_proxy_buffer_bytes <= 512 * 1024,
    }


def schedule_reuse(seed: int = 0, quick: bool = False) -> list[dict]:
    """E11 — §5 future work: skip the schedule wake when unchanged."""
    rows = []
    n = 4 if quick else 10
    for reuse in (False, True):
        config = video_only(
            [56] * n, burst_interval_s=0.1,
            duration_s=_duration(quick), seed=seed,
            reuse_schedules=reuse,
        )
        result = run_experiment(config)
        rows.append(
            {
                "experiment": "schedule-reuse",
                "reuse_enabled": reuse,
                "avg_saved_pct": result.summary.avg_saved_pct,
                "schedules_sent": result.schedules_sent,
                "schedules_reused": result.schedules_reused,
                "avg_loss_pct": result.summary.avg_loss_pct,
            }
        )
    return rows


def compensator_ablation(seed: int = 0, quick: bool = False) -> list[dict]:
    """Ablation — delay-compensation algorithms (§3.3).

    Same workload, four clients, 100 ms interval; only the client-side
    prediction changes:

    * ``adaptive`` — the paper's algorithm plus the min-filter margin;
    * ``adaptive-paper`` — the paper's exact last-arrival anchor;
    * ``fixed-exact`` — absolute proxy timestamps with a perfect clock;
    * ``fixed-skewed`` — absolute timestamps with a 20 ms clock error
      (why unsynchronized clocks force the adaptive design).
    """
    rows = []
    n = 2 if quick else 4
    variants = (
        ("adaptive", "adaptive", 0.0),
        ("fixed-exact", "fixed", 0.0),
        ("fixed-skewed", "fixed", 0.02),
    )
    for label, compensator, clock_error in variants:
        config = ExperimentConfig(
            clients=[ClientSpec("video", video_kbps=128)] * n,
            burst_interval_s=0.1,
            duration_s=_duration(quick),
            seed=seed,
            compensator=compensator,
            fixed_clock_offset_error_s=clock_error,
        )
        result = run_experiment(config)
        rows.append(
            {
                "experiment": "compensator-ablation",
                "variant": label,
                "avg_saved_pct": result.summary.avg_saved_pct,
                "avg_loss_pct": result.summary.avg_loss_pct,
                "missed_schedules": sum(
                    r.missed_schedules for r in result.reports
                ),
            }
        )
    return rows


def split_connection_ablation(seed: int = 0, quick: bool = False) -> list[dict]:
    """Ablation — why the proxy splits connections (§2, §3.2).

    Three ways to move the same FTP download to a scheduled client:

    * ``split``   — the paper's design: double connections, spoofed.
    * ``passthrough`` — one end-to-end connection whose data segments
      are buffered and burst by the proxy: the sender's RTT inflates by
      about half a burst interval, the 64 KB window caps throughput,
      and spurious RTOs pile up. This is the design the paper rejects.
    * ``bridge``  — no proxy involvement, client always awake: the
      baseline transfer time.
    """
    rows = []
    size = mib(1) if quick else mib(2)
    for mode in ("split", "passthrough", "bridge"):
        config = ExperimentConfig(
            clients=[ClientSpec("ftp", ftp_bytes=size)],
            burst_interval_s=0.5,
            duration_s=60.0 if quick else 180.0,
            seed=seed,
            scenario=ScenarioConfig(n_clients=1, seed=seed, tcp_mode=mode),
            power_aware_clients=(mode != "bridge"),
        )
        result = run_experiment(config)
        report = result.reports[0]
        rows.append(
            {
                "experiment": "split-ablation",
                "mode": mode,
                "transfer_time_s": report.extra.get("transfer_time_s"),
                "done": report.extra.get("done"),
                "energy_saved_pct": report.energy_saved_pct,
            }
        )
    return rows
