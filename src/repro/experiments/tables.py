"""Drivers for the paper's non-figure results and the ablations.

Covers the TCP-only experiment (§4.2, text), the optimal comparison
(§4.3), static-vs-dynamic (§4.3), the packet-drop experiments (§4.3,
Netfilter and DummyNet), the proxy memory claim (§3.2.2), the §5
schedule-reuse future-work extension, and the split-connection
ablation motivating the proxy's double-connection design (§2, §3.2).

Like :mod:`~repro.experiments.figures`, every driver expands its runs
into a :class:`~repro.sweep.SweepSpec` and executes through a
:class:`~repro.sweep.SweepEngine` (``SWP001`` forbids calling the
runner directly), so all tables share the sweep cache and fan-out.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    video_only,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.net.addr import Endpoint
from repro.net.node import Node
from repro.net.shaper import DummyNetPipe
from repro.net.tcp import TcpConnection, TcpListener
from repro.sim import RngStreams, Simulator
from repro.sweep import SweepEngine, SweepSpec
from repro.units import mbps, mib, ms


def _duration(quick: bool) -> float:
    return 30.0 if quick else 119.0


def _engine(engine: Optional[SweepEngine]) -> SweepEngine:
    return engine if engine is not None else SweepEngine()


def tcp_only(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """E2 — §4.2 text: all clients browsing the web (70-80 % savings)."""
    n = 3 if quick else 10
    intervals = (("100ms", 0.1), ("500ms", 0.5), ("variable", None))
    configs = [
        ExperimentConfig(
            clients=[ClientSpec("web")] * n,
            burst_interval_s=interval,
            duration_s=_duration(quick),
            seed=seed,
        )
        for _, interval in intervals
    ]
    labels = [{"interval": label} for label, _ in intervals]
    outcome = _engine(engine).run(
        SweepSpec.experiments("tcp_only", configs, labels)
    )
    return [
        {
            "experiment": "tcp-only",
            "interval": label["interval"],
            "avg_saved_pct": result.tcp_summary.avg_saved_pct,
            "min_saved_pct": result.tcp_summary.min_saved_pct,
            "max_saved_pct": result.tcp_summary.max_saved_pct,
            "avg_loss_pct": result.tcp_summary.avg_loss_pct,
            "pages_loaded": sum(
                r.extra.get("pages_loaded", 0) for r in result.reports
            ),
        }
        for label, result in zip(labels, outcome.results)
    ]


def optimal_comparison(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """E4 — §4.3: measured savings versus the closed-form optimum.

    Paper values: optimal 90/83/77 %, measured 77/66/53 % for the
    56K/256K/512K video-only experiments at 500 ms.
    """
    n = 4 if quick else 10
    cells = (
        (56, 90.0, 77.0),
        (256, 83.0, 66.0),
        (512, 77.0, 53.0),
    )
    configs = [
        video_only(
            [rate] * n, burst_interval_s=0.5,
            duration_s=_duration(quick), seed=seed,
        )
        for rate, _, _ in cells
    ]
    labels = [
        {"rate": rate, "paper_optimal": opt, "paper_measured": meas}
        for rate, opt, meas in cells
    ]
    outcome = _engine(engine).run(
        SweepSpec.experiments("optimal_comparison", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        optima = [
            r.optimal_saved_pct for r in result.reports
            if r.optimal_saved_pct is not None
        ]
        rows.append(
            {
                "experiment": "optimal-comparison",
                "stream": f"{label['rate']}K",
                "optimal_pct": sum(optima) / len(optima),
                "measured_pct": result.video_summary.avg_saved_pct,
                "gap_pct": sum(optima) / len(optima)
                - result.video_summary.avg_saved_pct,
                "paper_optimal_pct": label["paper_optimal"],
                "paper_measured_pct": label["paper_measured"],
            }
        )
    return rows


def static_vs_dynamic(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """E7 — §4.3: static TDMA beats dynamic for identical streams."""
    n = 4 if quick else 10
    rates = (56, 256, 512)
    schedulers = ("static", "dynamic")
    configs = [
        ExperimentConfig(
            clients=[ClientSpec("video", video_kbps=rate)] * n,
            burst_interval_s=0.1,
            scheduler=scheduler,
            duration_s=_duration(quick),
            seed=seed,
            adaptive_video=False,
        )
        for rate in rates
        for scheduler in schedulers
    ]
    labels = [
        {"rate": rate, "scheduler": scheduler}
        for rate in rates
        for scheduler in schedulers
    ]
    outcome = _engine(engine).run(
        SweepSpec.experiments("static_vs_dynamic", configs, labels)
    )
    by_cell = {
        (label["rate"], label["scheduler"]): result
        for label, result in zip(labels, outcome.results)
    }
    rows = []
    for rate in rates:
        cells = {}
        for scheduler in schedulers:
            result = by_cell[(rate, scheduler)]
            saved = [r.energy_saved_pct for r in result.reports]
            mean = sum(saved) / len(saved)
            variance = sum((s - mean) ** 2 for s in saved) / len(saved)
            cells[scheduler] = (mean, variance)
        rows.append(
            {
                "experiment": "static-vs-dynamic",
                "stream": f"{rate}K",
                "static_avg_saved_pct": cells["static"][0],
                "static_variance": cells["static"][1],
                "dynamic_avg_saved_pct": cells["dynamic"][0],
                "dynamic_variance": cells["dynamic"][1],
            }
        )
    return rows


def drop_effect_netfilter(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """E9a — §4.3: dropping packets while asleep versus receiving them.

    The paper configured Netfilter to really drop packets destined to a
    sleeping card and found transfers took no more than ~10 % longer.
    We run the same FTP download twice per early-transition setting:
    once with the physical receive gate enforced, once with it disabled
    (the paper's default postmortem mode), and compare transfer times.
    The aggressive ``early=0`` row forces misses so the comparison
    exercises real drops.
    """
    size = mib(1) if quick else mib(4)
    # The paper's setup is the single client ("we ran separate
    # experiments with one client and Netfilter"); the contended
    # variant adds background video so the transfer spans many
    # sleep/wake cycles and drops actually occur.
    background = [ClientSpec("video", video_kbps=256)] * (2 if quick else 4)
    setups = (("single-client", []), ("contended", background))
    gates = ((True, "drops_enforced"), (False, "receive_anyway"))
    configs = []
    labels = []
    for label_cfg, extra_clients in setups:
        for enforce, gate_label in gates:
            configs.append(
                ExperimentConfig(
                    clients=extra_clients + [ClientSpec("ftp", ftp_bytes=size)],
                    burst_interval_s=0.5,
                    duration_s=60.0 if quick else 119.0,
                    seed=seed,
                    enforce_sleep_drops=enforce,
                )
            )
            labels.append({"setup": label_cfg, "gate": gate_label})
    outcome = _engine(engine).run(
        SweepSpec.experiments("drop_effect_netfilter", configs, labels)
    )
    times: dict[str, dict[str, Optional[float]]] = {}
    for label, result in zip(labels, outcome.results):
        times.setdefault(label["setup"], {})[label["gate"]] = (
            result.reports[-1].extra.get("transfer_time_s")
        )
    rows = []
    for label_cfg, _ in setups:
        cell = times[label_cfg]
        slowdown = None
        if cell["receive_anyway"] and cell["drops_enforced"]:
            slowdown = cell["drops_enforced"] / cell["receive_anyway"] - 1.0
        rows.append(
            {
                "experiment": "drop-effect-netfilter",
                "setup": label_cfg,
                "transfer_s_drops_enforced": cell["drops_enforced"],
                "transfer_s_receive_anyway": cell["receive_anyway"],
                "slowdown_fraction": slowdown,
            }
        )
    return rows


def _dummynet_transfer(
    seed: int, transfer_bytes: int, plr: float
) -> float:
    """One TCP transfer over a 4 Mb/s DummyNet pipe; returns the
    completion time (or +inf when it never finishes).

    Module-level so the sweep engine can address it as the
    ``dummynet-transfer`` task from worker processes.
    """
    sim = Simulator()
    rng = RngStreams(seed=seed).get("dummynet")
    a = Node(sim, "client", "10.0.0.1")
    b = Node(sim, "server", "10.0.0.2")
    pipe = DummyNetPipe(sim, mbps(4), delay_s=ms(1), plr=plr, rng=rng)
    pipe.attach(a.add_interface("e"), b.add_interface("e"))
    a.set_default_route(a.interfaces["e"])
    b.set_default_route(b.interfaces["e"])

    def on_accept(conn):
        conn.on_established = lambda c: (c.send(transfer_bytes), c.close())

    TcpListener(b, 80, on_accept)
    client = TcpConnection.connect(a, Endpoint("10.0.0.2", 80))
    done_probe = {"t": None}

    def on_data(n, p, c=client):
        if client.bytes_delivered >= transfer_bytes and done_probe["t"] is None:
            done_probe["t"] = sim.now

    client.on_data = on_data
    sim.run(until=600.0)
    return done_probe["t"] if done_probe["t"] is not None else float("inf")


def drop_effect_dummynet(
    seed: int = 0,
    quick: bool = False,
    transfer_bytes: Optional[int] = None,
    engine: Optional[SweepEngine] = None,
) -> dict:
    """E9b — §4.3: a 4 Mb/s DummyNet pipe, 2 ms RTT, 5 % drop rate."""
    if transfer_bytes is None:
        transfer_bytes = mib(1) if quick else mib(2)
    rates = (0.0, 0.05)
    outcome = _engine(engine).run(
        SweepSpec.from_tasks(
            "drop_effect_dummynet",
            "dummynet-transfer",
            [
                {"seed": seed, "transfer_bytes": transfer_bytes, "plr": plr}
                for plr in rates
            ],
            labels=[{"plr": plr} for plr in rates],
        )
    )
    clean, lossy = outcome.results
    return {
        "experiment": "drop-effect-dummynet",
        "transfer_s_clean": clean,
        "transfer_s_5pct_loss": lossy,
        "slowdown_fraction": lossy / clean - 1.0,
    }


def memory_footprint(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> dict:
    """E10 — §3.2.2: the proxy buffer stays small (≤512 KB claimed)."""
    clients = [ClientSpec("video", video_kbps=512)] * (4 if quick else 8)
    clients += [ClientSpec("web")] * 2
    config = ExperimentConfig(
        clients=clients,
        burst_interval_s=0.5,
        duration_s=_duration(quick),
        seed=seed,
    )
    outcome = _engine(engine).run(
        SweepSpec.experiments("memory_footprint", [config])
    )
    result = outcome.results[0]
    return {
        "experiment": "memory-footprint",
        "peak_buffer_bytes": result.peak_proxy_buffer_bytes,
        "claimed_bound_bytes": 512 * 1024,
        "within_claim": result.peak_proxy_buffer_bytes <= 512 * 1024,
    }


def schedule_reuse(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """E11 — §5 future work: skip the schedule wake when unchanged."""
    n = 4 if quick else 10
    variants = (False, True)
    configs = [
        video_only(
            [56] * n, burst_interval_s=0.1,
            duration_s=_duration(quick), seed=seed,
            reuse_schedules=reuse,
        )
        for reuse in variants
    ]
    labels = [{"reuse": reuse} for reuse in variants]
    outcome = _engine(engine).run(
        SweepSpec.experiments("schedule_reuse", configs, labels)
    )
    return [
        {
            "experiment": "schedule-reuse",
            "reuse_enabled": label["reuse"],
            "avg_saved_pct": result.summary.avg_saved_pct,
            "schedules_sent": result.schedules_sent,
            "schedules_reused": result.schedules_reused,
            "avg_loss_pct": result.summary.avg_loss_pct,
        }
        for label, result in zip(labels, outcome.results)
    ]


def compensator_ablation(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Ablation — delay-compensation algorithms (§3.3).

    Same workload, four clients, 100 ms interval; only the client-side
    prediction changes:

    * ``adaptive`` — the paper's algorithm plus the min-filter margin;
    * ``adaptive-paper`` — the paper's exact last-arrival anchor;
    * ``fixed-exact`` — absolute proxy timestamps with a perfect clock;
    * ``fixed-skewed`` — absolute timestamps with a 20 ms clock error
      (why unsynchronized clocks force the adaptive design).
    """
    n = 2 if quick else 4
    variants = (
        ("adaptive", "adaptive", 0.0),
        ("fixed-exact", "fixed", 0.0),
        ("fixed-skewed", "fixed", 0.02),
    )
    configs = [
        ExperimentConfig(
            clients=[ClientSpec("video", video_kbps=128)] * n,
            burst_interval_s=0.1,
            duration_s=_duration(quick),
            seed=seed,
            compensator=compensator,
            fixed_clock_offset_error_s=clock_error,
        )
        for _, compensator, clock_error in variants
    ]
    labels = [{"variant": label} for label, _, _ in variants]
    outcome = _engine(engine).run(
        SweepSpec.experiments("compensator_ablation", configs, labels)
    )
    return [
        {
            "experiment": "compensator-ablation",
            "variant": label["variant"],
            "avg_saved_pct": result.summary.avg_saved_pct,
            "avg_loss_pct": result.summary.avg_loss_pct,
            "missed_schedules": sum(
                r.missed_schedules for r in result.reports
            ),
        }
        for label, result in zip(labels, outcome.results)
    ]


def split_connection_ablation(
    seed: int = 0, quick: bool = False,
    engine: Optional[SweepEngine] = None,
) -> list[dict]:
    """Ablation — why the proxy splits connections (§2, §3.2).

    Three ways to move the same FTP download to a scheduled client:

    * ``split``   — the paper's design: double connections, spoofed.
    * ``passthrough`` — one end-to-end connection whose data segments
      are buffered and burst by the proxy: the sender's RTT inflates by
      about half a burst interval, the 64 KB window caps throughput,
      and spurious RTOs pile up. This is the design the paper rejects.
    * ``bridge``  — no proxy involvement, client always awake: the
      baseline transfer time.
    """
    size = mib(1) if quick else mib(2)
    modes = ("split", "passthrough", "bridge")
    configs = [
        ExperimentConfig(
            clients=[ClientSpec("ftp", ftp_bytes=size)],
            burst_interval_s=0.5,
            duration_s=60.0 if quick else 180.0,
            seed=seed,
            scenario=ScenarioConfig(n_clients=1, seed=seed, tcp_mode=mode),
            power_aware_clients=(mode != "bridge"),
        )
        for mode in modes
    ]
    labels = [{"mode": mode} for mode in modes]
    outcome = _engine(engine).run(
        SweepSpec.experiments("split_ablation", configs, labels)
    )
    rows = []
    for label, result in zip(labels, outcome.results):
        report = result.reports[0]
        rows.append(
            {
                "experiment": "split-ablation",
                "mode": label["mode"],
                "transfer_time_s": report.extra.get("transfer_time_s"),
                "done": report.extra.get("done"),
                "energy_saved_pct": report.energy_saved_pct,
            }
        )
    return rows
