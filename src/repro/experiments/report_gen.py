"""Generate EXPERIMENTS.md from the benchmark results.

``pytest benchmarks/ --benchmark-only`` persists each experiment's rows
under ``benchmarks/results/*.json``; this module renders them next to
the paper's reported values so the comparison document is regenerated,
not hand-maintained. Usable via ``python -m repro report``.

``refresh_results`` re-runs every driver without the benchmark harness
— all of them fan out through one shared
:class:`~repro.sweep.SweepEngine`, so a refresh is parallel and
warm-cache reruns cost nothing (``python -m repro report --refresh``).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Callable, Optional, Union

PathLike = Union[str, pathlib.Path]

#: results-file name -> "module:function" of the driver that produces it.
RESULT_DRIVERS: dict[str, str] = {
    "figure4": "repro.experiments.figures:figure4",
    "figure5": "repro.experiments.figures:figure5",
    "figure6": "repro.experiments.figures:figure6",
    "figure7": "repro.experiments.figures:figure7",
    "pareto": "repro.experiments.figures:pareto",
    "campus": "repro.experiments.figures:campus_grid",
    "tcp_only": "repro.experiments.tables:tcp_only",
    "optimal_comparison": "repro.experiments.tables:optimal_comparison",
    "static_vs_dynamic": "repro.experiments.tables:static_vs_dynamic",
    "drop_effect_netfilter": "repro.experiments.tables:drop_effect_netfilter",
    "drop_effect_dummynet": "repro.experiments.tables:drop_effect_dummynet",
    "memory_footprint": "repro.experiments.tables:memory_footprint",
    "schedule_reuse": "repro.experiments.tables:schedule_reuse",
    "compensator_ablation": "repro.experiments.tables:compensator_ablation",
    "split_ablation": "repro.experiments.tables:split_connection_ablation",
    "psm_baseline": "repro.experiments.baselines:psm_comparison",
}


def refresh_results(
    results_dir: PathLike = "benchmarks/results",
    quick: bool = False,
    seed: int = 1,
    engine: Any = None,
    only: Optional[list[str]] = None,
) -> list[pathlib.Path]:
    """Re-run every driver and persist its rows; returns written paths.

    All drivers share ``engine`` (one is created when None), so a
    refresh inherits its cache and ``--jobs`` fan-out; the engine's
    accumulated reports say how much actually executed.
    """
    import importlib

    from repro.sweep import SweepEngine

    if engine is None:
        engine = SweepEngine()
    results_dir = pathlib.Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for name, target in RESULT_DRIVERS.items():
        if only is not None and name not in only:
            continue
        module_name, _, attr = target.partition(":")
        driver: Callable = getattr(importlib.import_module(module_name), attr)
        rows = driver(seed=seed, quick=quick, engine=engine)
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(rows, indent=2, default=str) + "\n")
        written.append(path)
    return written

#: Paper-reported reference values, quoted from the text and figures.
PAPER_FIGURE4_500MS = {"56K": 77.0, "256K": 66.0, "512K": 53.0}
PAPER_OPTIMAL = {"56K": 90.0, "256K": 83.0, "512K": 77.0}
PAPER_TCP_ONLY = "70-80% (all intervals)"
PAPER_MIXED_RANGE = "just over 50% to just under 90%"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    if isinstance(value, dict):
        return " ".join(f"{k}:{_fmt(v)}" for k, v in value.items())
    if value is None:
        return "-"
    return str(value)


def _table(rows: list[dict], columns: list[str], headers: Optional[list[str]] = None) -> str:
    headers = headers or columns
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(col)) for col in columns) + " |"
        )
    return "\n".join(lines)


def _load(results_dir: pathlib.Path, name: str):
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return [data] if isinstance(data, dict) else data


def generate_report(results_dir: pathlib.Path) -> str:
    """Render the full EXPERIMENTS.md text from saved results."""
    sections: list[str] = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated from `benchmarks/results/*.json` "
        "(run `pytest benchmarks/ --benchmark-only`, then "
        "`python -m repro report`). Absolute numbers are not expected to"
        " match a 2004 hardware testbed; the shapes — who wins, by what"
        " factor, where crossovers fall — are the reproduction target."
        " All runs: 119 s traces, seed 1, WaveLAN power model.",
        "",
    ]

    figure4 = _load(results_dir, "figure4")
    if figure4:
        sections += [
            "## Figure 4 — ten UDP video clients",
            "",
            "Paper (500 ms): 56K saves **77 %**, 256K **66 %**, 512K "
            "**53 %**; mixed patterns ≈ **69 %**; 100 ms is worse than "
            "500 ms everywhere (early-transition penalty); ten 512K "
            "streams exceed the cell and trigger RealServer adaptation.",
            "",
            _table(
                figure4,
                ["interval", "pattern", "avg_saved_pct", "min_saved_pct",
                 "max_saved_pct", "avg_loss_pct", "downshifts"],
            ),
            "",
            "Shape check: savings fall with fidelity at every interval; "
            "500 ms beats 100 ms for every pattern; loss stays near the "
            "paper's <2 % bar; the 512K runs downshift. The variable "
            "policy tracks queue-drain time, so at these loads it sits "
            "at its 100 ms floor — matching the paper's note that its "
            "maximum is only reached when several streams have high "
            "bandwidth.",
            "",
        ]

    tcp_only = _load(results_dir, "tcp_only")
    if tcp_only:
        sections += [
            "## §4.2 TCP-only (no paper graph)",
            "",
            f"Paper (text): {PAPER_TCP_ONLY}.",
            "",
            _table(
                tcp_only,
                ["interval", "avg_saved_pct", "min_saved_pct",
                 "max_saved_pct", "avg_loss_pct", "pages_loaded"],
            ),
            "",
            "The 500 ms row lands inside the paper's band; 100 ms and "
            "variable sit a few points below it because every fresh TCP "
            "connection holds the card awake through its handshake — a "
            "cost that recurs 10× more often per saved sleep at the "
            "short interval.",
            "",
        ]

    figure5 = _load(results_dir, "figure5")
    if figure5:
        sections += [
            "## Figure 5 — seven video + three web clients",
            "",
            f"Paper: savings range {PAPER_MIXED_RANGE}; TCP clients "
            "show lower variance (no adaptation).",
            "",
            _table(
                figure5,
                ["interval", "pattern", "udp_avg_saved_pct",
                 "udp_min_saved_pct", "udp_max_saved_pct",
                 "tcp_avg_saved_pct", "avg_loss_pct"],
            ),
            "",
            "All non-saturated cells fall inside the paper's range. The "
            "(100 ms, 512K/TCP) cell saturates the medium — 7×450 kbps "
            "effective plus web traffic — and the backlogged web clients "
            "stay awake almost continuously; the paper's low end "
            "(~50 %) relied on RealServer adaptation freeing more "
            "bandwidth than our loss-triggered model does there.",
            "",
        ]

    optimal = _load(results_dir, "optimal_comparison")
    if optimal:
        sections += [
            "## §4.3 comparison to the theoretical optimum",
            "",
            "Paper: optimal **90/83/77 %** vs measured **77/66/53 %** "
            "(56K/256K/512K); 'savings within 10-15 % of optimal are "
            "common'.",
            "",
            _table(
                optimal,
                ["stream", "optimal_pct", "measured_pct", "gap_pct",
                 "paper_optimal_pct", "paper_measured_pct"],
            ),
            "",
        ]

    figure6 = _load(results_dir, "figure6")
    if figure6:
        sections += [
            "## Figure 6 — early transition amount",
            "",
            "Paper: total wasted energy is U-shaped in the early amount "
            "with the best value at **6 ms**; missed packets range "
            "1.83 % (0 ms) to 0.97 % (10 ms).",
            "",
            _table(
                figure6,
                ["early_ms", "early_waste_j", "missed_schedule_waste_j",
                 "total_waste_j", "missed_schedules", "missed_pct",
                 "avg_saved_pct"],
            ),
            "",
            "The U-shape reproduces: early-wake waste grows with the "
            "amount while missed-schedule waste collapses. Our AP-delay "
            "calibration is milder than the real testbed's, so the "
            "minimum lands at 2-4 ms instead of 6 ms, and 0 ms costs "
            "2.65 % of packets (paper: 1.83 %).",
            "",
        ]

    static = _load(results_dir, "static_vs_dynamic")
    if static:
        sections += [
            "## §4.3 static vs dynamic schedule (identical streams, 100 ms)",
            "",
            "Paper: 'both average energy usage and variance is lowered "
            "by using a static schedule'.",
            "",
            _table(
                static,
                ["stream", "static_avg_saved_pct", "static_variance",
                 "dynamic_avg_saved_pct", "dynamic_variance"],
            ),
            "",
        ]

    figure7 = _load(results_dir, "figure7")
    if figure7:
        sections += [
            "## Figure 7 — static TCP/UDP slots at 500 ms",
            "",
            "Paper: small TCP slots starve TCP (latency grows toward "
            "seconds), large slots waste energy on every TCP client; "
            "video energy grows with fidelity.",
            "",
            _table(
                figure7,
                ["tcp_weight_pct", "video_energy_used_pct",
                 "tcp_energy_used_pct", "tcp_latency_ms", "tcp_objects"],
            ),
            "",
        ]

    pareto = _load(results_dir, "pareto")
    if pareto:
        sim_rows = [r for r in pareto if r.get("source") == "sim"]
        model_rows = [r for r in pareto if r.get("source") == "model"]
        sections += [
            "## Extension — policy Pareto front (energy × delay)",
            "",
            "Beyond the paper: per-client Gilbert–Elliott channels and a "
            "family of slot-admission policies (DESIGN.md §14). "
            "`dynamic` is the paper's policy (admit every backlogged "
            "client), `channel` defers bad-channel clients a bounded "
            "number of intervals, `joint` additionally lets a deep "
            "backlog override a bad channel. Each policy trades queueing "
            "delay against energy wasted transmitting into fades.",
            "",
        ]
        if sim_rows:
            sections += [
                "Full-testbed runs under the Pareto channel plan "
                "(energy = savings vs naive, delay = byte-weighted mean "
                "time in the proxy queues):",
                "",
                _table(
                    sim_rows,
                    ["policy", "avg_saved_pct", "mean_queue_delay_ms",
                     "avg_loss_pct", "policy_grants", "policy_defers"],
                ),
                "",
            ]
        if model_rows:
            sections += [
                "Discrete (queue, channel) model averaged over random "
                "instances, with the clairvoyant DP optimum as the "
                "lower-bound anchor (`optimal` — no online policy can "
                "beat it; the differential suite under `tests/core/` "
                "asserts exactly that):",
                "",
                _table(
                    model_rows,
                    ["policy", "mean_total_cost", "mean_energy_cost",
                     "mean_delay_slots"],
                ),
                "",
            ]

    campus = _load(results_dir, "campus")
    if campus:
        # Roam rates like 0.02 must not round away to 0.0 in the table.
        campus = [
            dict(row, roam_rate=f"{row['roam_rate']:g}") for row in campus
        ]
        sections += [
            "## Extension — multi-AP campus with roaming clients",
            "",
            "Beyond the paper: N independent cells (each its own medium, "
            "AP, and proxy scheduler shard), clients roaming between "
            "them on a seeded epoch grid, and a handoff coordinator "
            "migrating queue state and schedule membership between "
            "shards (DESIGN.md §15). Energy saved × handoff count over "
            "the cell-count × roam-rate grid:",
            "",
            _table(
                campus,
                ["cells", "roam_rate", "avg_saved_pct", "min_saved_pct",
                 "avg_loss_pct", "handoffs", "handoff_bytes"],
            ),
            "",
            "Sharding alone (roam 0.0) is free — per-cell schedules see "
            "fewer contenders, so savings tick *up* with cell count "
            "while staying loss-free, and a 1-cell campus is "
            "byte-identical to the classic testbed (pinned by the "
            "differential suite under `tests/campus/`). Roaming buys "
            "mobility at a bounded energy cost: each handoff spends a "
            "radio gap plus queue migration, so savings fall and a "
            "high roam rate leaks some loss, but the transfer policy "
            "keeps the backlog (handoff_bytes) instead of dropping it.",
            "",
        ]

    netfilter = _load(results_dir, "drop_effect_netfilter")
    dummynet = _load(results_dir, "drop_effect_dummynet")
    if netfilter or dummynet:
        sections += [
            "## §4.3 packet-drop validation",
            "",
            "Paper: really dropping packets while the card sleeps "
            "(Netfilter) lengthened transfers by **no more than ~10 %**; "
            "a DummyNet pipe at 4 Mb/s / 2 ms RTT / 5 % loss behaved "
            "similarly.",
            "",
        ]
        if netfilter:
            sections += [
                _table(
                    netfilter,
                    ["setup", "transfer_s_drops_enforced",
                     "transfer_s_receive_anyway", "slowdown_fraction"],
                ),
                "",
            ]
        if dummynet:
            sections += [
                _table(
                    dummynet,
                    ["transfer_s_clean", "transfer_s_5pct_loss",
                     "slowdown_fraction"],
                ),
                "",
                "**Known gap:** our TCP implements NewReno + SACK with "
                "delayed ACKs, but no tail-loss probes: at a 5 % random "
                "drop rate the losses that land on the last packet in "
                "flight (or on a retransmission) still cost a ≥200 ms "
                "RTO each, so the slowdown exceeds the paper's ~10 %. "
                "The Netfilter single-client row — the paper's actual "
                "configuration — reproduces the ≤10 % claim.",
                "",
            ]

    memory = _load(results_dir, "memory_footprint")
    if memory:
        sections += [
            "## §3.2.2 proxy memory",
            "",
            "Paper: 'even if one second of data (to all clients) had to "
            "be buffered, 512 KB would be sufficient'.",
            "",
            _table(
                memory,
                ["peak_buffer_bytes", "claimed_bound_bytes", "within_claim"],
            ),
            "",
            "Under the saturating 8×512K+web load our peak exceeds the "
            "paper's envelope because TCP backlog (bounded by 64 KiB of "
            "window per connection) rides in the queues alongside the "
            "one-interval UDP buffering; it stays within 2× of the "
            "claim and far below any practical constraint.",
            "",
        ]

    reuse = _load(results_dir, "schedule_reuse")
    if reuse:
        sections += [
            "## §5 future work — schedule reuse",
            "",
            "Paper (proposal only): if the schedule repeats, clients "
            "can skip the schedule wake-up.",
            "",
            _table(
                reuse,
                ["reuse_enabled", "avg_saved_pct", "schedules_sent",
                 "schedules_reused", "avg_loss_pct"],
            ),
            "",
            "Implemented and safe (no loss penalty). Under VBR video the "
            "layout rarely repeats exactly, so reuse fires sparsely; CBR "
            "workloads reuse far more often (see the unit tests).",
            "",
        ]

    ablation = _load(results_dir, "split_ablation")
    if ablation:
        sections += [
            "## Ablation — why connections are split (§2, §3.2)",
            "",
            "The same FTP download via the paper's split design, via a "
            "buffering non-split proxy (the rejected design: buffering "
            "inflates RTT, the end-to-end window throttles), and direct.",
            "",
            _table(
                ablation,
                ["mode", "transfer_time_s", "done", "energy_saved_pct"],
            ),
            "",
        ]

    compensators = _load(results_dir, "compensator_ablation")
    if compensators:
        sections += [
            "## Ablation — delay compensation (§3.3)",
            "",
            _table(
                compensators,
                ["variant", "avg_saved_pct", "avg_loss_pct",
                 "missed_schedules"],
            ),
            "",
            "The adaptive algorithm needs no clock synchronization yet "
            "matches the perfectly-synchronized strawman; a 20 ms clock "
            "error destroys the absolute-timestamp variant.",
            "",
        ]

    replay = _load(results_dir, "replay_sweep")
    if replay:
        sections += [
            "## §4.1 methodology — postmortem policy replay",
            "",
            "One live capture, replayed offline against different early "
            "amounts (how the paper's simulator produced Figure 6).",
            "",
            _table(
                replay,
                ["early_ms", "replay_saved_pct",
                 "replay_missed_schedules", "replay_frames_missed",
                 "replay_early_wait_s"],
            ),
            "",
        ]

    psm = _load(results_dir, "psm_baseline")
    if psm:
        sections += [
            "## Extension — 802.11b PSM baseline (§2)",
            "",
            "Paper (citing prior work): PSM 'is not a good match' for "
            "streaming. Same 225 kbps stream under three policies:",
            "",
            _table(
                psm,
                ["policy", "energy_saved_pct", "mean_latency_ms",
                 "p95_latency_ms", "packets_delivered", "packets_missed"],
            ),
            "",
            "PSM saves comparable energy but loses packets racing its "
            "beacon-buffer machinery against the stream; the proxy's "
            "explicit schedule delivers everything.",
            "",
        ]

    sweep = _load(results_dir, "sweep")
    if sweep:
        sweep = [
            {
                **row,
                "wall_s": (
                    f"{row['wall_s']:.2f}"
                    if isinstance(row.get("wall_s"), float)
                    and row["wall_s"] < 0.1
                    else row.get("wall_s")
                ),
            }
            for row in sweep
        ]
        sections += [
            "## Reproduction cost — cold vs warm cache",
            "",
            "The sweep engine (DESIGN.md §10) content-addresses every "
            "run by (task, canonical config JSON, code fingerprint): a "
            "cold invocation simulates and populates the cache, a warm "
            "rerun of the same artifact replays results from disk "
            "without a single simulation. Figure-4 grid, quick sizing, "
            "after the kernel speed program (DESIGN.md §11):",
            "",
            _table(
                sweep,
                ["mode", "jobs", "wall_s", "executed", "cache_hits",
                 "speedup_vs_cold"],
            ),
            "",
            "The kernel rewrite cut the cold serial sweep from the "
            "10.8 s recorded in the previous `BENCH_sweep.json` entry "
            "to 5.9 s (~1.8×), and the warm worker pool (persistent "
            "preloaded workers, chunked dispatch) lifted `--jobs 2` "
            "from 0.86× of serial — parallel fan-out used to *lose* to "
            "process spawn/import cost — to break-even on this "
            "single-CPU host, where a genuine speedup is impossible by "
            "construction; the CI perf-smoke job requires an outright "
            "win on ≥2 CPUs. Trajectory rows now carry the code "
            "fingerprint and host CPU count, so entries recorded on "
            "different machines or against different code compare "
            "honestly.",
            "",
            "Any source change under `src/repro/` rotates the code "
            "fingerprint and cold-starts every key, so a warm cache can "
            "never serve stale physics.",
            "",
        ]

    overhead = _load(results_dir, "obs_overhead")
    if overhead:
        sections += [
            "## Observability overhead",
            "",
            "Wall-clock cost of the instrumentation facade on the "
            "schedule-reuse workload (min of 3 runs per mode; `null` = "
            "NullRecorder hooks, `trace` = pre-obs baseline, `full` = "
            "trace + metrics + spans). The NullRecorder budget is 5%.",
            "",
            _table(
                overhead,
                ["t_null_s", "t_trace_s", "t_full_s",
                 "null_overhead_pct", "full_overhead_pct"],
            ),
            "",
        ]

    sections += [
        "## Live-runtime load test (`repro loadtest`)",
        "",
        "The asyncio runtime (DESIGN.md §12) runs the same proxy design "
        "on real loopback sockets, production-hardened: watermark "
        "backpressure, admission control, heartbeat liveness with slot "
        "reclaim/eviction, and a supervised scheduler. The load-test "
        "harness drives N concurrent clients through it and reports "
        "req/s, p50/p99 request latency, schedule-broadcast jitter, and "
        "peak per-client queue depth against the backpressure watermark "
        "(the command exits non-zero if any queue ever overshot the "
        "high watermark by more than one 64 KiB read chunk).",
        "",
        "```bash",
        "python -m repro loadtest --clients 50 --requests 2 "
        "--bytes 64000",
        "",
        "# under chaos: ChaosShim reinterprets the FaultPlan vocabulary",
        "# on the wall clock (iid control-datagram loss, schedule-only",
        "# blackouts, origin kill windows, client vanish/rejoin)",
        "python -m repro loadtest --clients 8 --fault-loss 0.2 \\",
        "    --fault-blackout 0.3:0.6 --fault-churn 0:0.4 \\",
        "    --silence-timeout 0.3 --evict-timeout 0.8 --json",
        "```",
        "",
        "Wall-clock numbers vary by machine, so no measured table is "
        "pinned here; the invariants are asserted by "
        "`tests/runtime/` instead (50 concurrent clients within the "
        "watermark, survivors unaffected by a vanished client, dead "
        "clients evicted within the liveness window, zero leaked "
        "tasks/sockets after teardown). The runtime records through "
        "`repro.obs` under the simulator's instrument names "
        "(`scheduler.queue_bytes`, `proxy.bursts`, `drops`, ...), so a "
        "live metrics snapshot diffs name-for-name against a simulated "
        "one; live-only instruments are namespaced `runtime.*`.",
        "",
        "## Inspecting a run's timeline (Perfetto)",
        "",
        "Every run can export its observability stream; the exports are "
        "deterministic (same `(plan, seed)` → byte-identical files — "
        "pinned by the golden suite under `tests/obs/goldens/`).",
        "",
        "```bash",
        "# a Figure-4-style run: 10 video clients, 500 ms bursts",
        "python -m repro trace \\",
        "    --clients video:56,video:56,video:56,video:56,video:56,"
        "video:56,video:56,video:56,video:56,video:56 \\",
        "    --interval 500ms --duration 30 --seed 1 "
        "--trace-out figure4.trace.json",
        "",
        "# or alongside a normal run",
        "python -m repro run --clients video:56,web --interval 100ms \\",
        "    --duration 10 --metrics-out metrics.json "
        "--events-out events.jsonl --trace-out timeline.json",
        "```",
        "",
        "Open the trace file at <https://ui.perfetto.dev> (or "
        "`chrome://tracing`): one track per client plus `proxy` and "
        "`medium` rows. Schedule intervals and per-client burst slots "
        "render as slices on the proxy/client tracks, client burst "
        "phases and WNIC awake stretches show when each card was "
        "actually up, and medium frames appear as transmission slices — "
        "so an under-filled burst or a late wake-up is visible at a "
        "glance. The metrics snapshot (`--metrics-out`) carries the "
        "aggregate view: queue depths, burst fill ratios, slot "
        "utilization, schedule lateness, WNIC residency and fault-drop "
        "counters.",
        "",
    ]

    return "\n".join(sections)


def write_report(
    results_dir: PathLike = "benchmarks/results",
    output: PathLike = "EXPERIMENTS.md",
) -> pathlib.Path:
    """Render and write EXPERIMENTS.md; returns the output path."""
    output = pathlib.Path(output)
    output.write_text(generate_report(pathlib.Path(results_dir)) + "\n")
    return output
