"""repro — reproduction of "Dynamic, Power-Aware Scheduling for Mobile
Clients Using a Transparent Proxy" (Gundlach et al., ICPP 2004).

The package implements the paper's transparent, power-aware burst-
scheduling proxy together with every substrate its evaluation depends
on: a deterministic discrete-event simulator, a network model (wired and
wireless links, access point, UDP and a simplified TCP), a WNIC power
model, multimedia/web/ftp workload generators, a postmortem energy
analyzer, and the full experiment harness for every table and figure in
the paper. A secondary :mod:`repro.runtime` package demonstrates the same
proxy mechanism over real asyncio sockets.

Quickstart::

    from repro.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig(
        n_video_clients=10, video_bitrates_kbps=[56] * 10,
        burst_interval="500ms", seed=1,
    )
    result = run_experiment(config)
    for client in result.clients:
        print(client.name, f"{client.energy_saved_pct:.1f}% saved")
"""

from repro._version import __version__

__all__ = ["__version__"]
