"""Unit helpers and physical constants used throughout the library.

The simulator's time unit is the **second** (a plain float). Data sizes
are **bytes** (ints), and rates are **bits per second** (floats). These
helpers keep literals in the code readable and make unit mistakes
grep-able: writing ``ms(100)`` is harder to get wrong than ``0.1``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------


def ms(value: float) -> float:
    """Milliseconds expressed in seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Microseconds expressed in seconds."""
    return value * 1e-6


def seconds(value: float) -> float:
    """Identity helper for symmetry; seconds are the native unit."""
    return float(value)


def minutes(value: float) -> float:
    """Minutes expressed in seconds."""
    return value * 60.0


# --------------------------------------------------------------------------
# Data sizes
# --------------------------------------------------------------------------

KB = 1024
MB = 1024 * 1024


def kib(value: float) -> int:
    """Kibibytes expressed in bytes (rounded)."""
    return int(value * KB)


def mib(value: float) -> int:
    """Mebibytes expressed in bytes (rounded)."""
    return int(value * MB)


# --------------------------------------------------------------------------
# Rates
# --------------------------------------------------------------------------


def bps(value: float) -> float:
    """Bits per second (identity helper)."""
    return float(value)


def kbps(value: float) -> float:
    """Kilobits per second expressed in bits per second.

    Network rates use decimal prefixes (1 kbps = 1000 bit/s), matching
    how the paper quotes stream bitrates (56 kbps, 512 kbps, ...).
    """
    return value * 1e3


def mbps(value: float) -> float:
    """Megabits per second expressed in bits per second."""
    return value * 1e6


def bytes_per_second(rate_bps: float) -> float:
    """Convert a bit rate into a byte rate."""
    return rate_bps / 8.0


def transmit_time(size_bytes: int, rate_bps: float) -> float:
    """Serialization delay of ``size_bytes`` at ``rate_bps``.

    Raises:
        ConfigurationError: if the rate is not positive.
    """
    if rate_bps <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_bps!r}")
    return (size_bytes * 8.0) / rate_bps


# --------------------------------------------------------------------------
# Energy
# --------------------------------------------------------------------------


def mj(value: float) -> float:
    """Millijoules expressed in joules."""
    return value * 1e-3


def joules(value: float) -> float:
    """Identity helper; joules are the native energy unit."""
    return float(value)
