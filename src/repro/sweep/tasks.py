"""The registry of task functions a sweep may execute.

Tasks are addressed by *name*, not by function object: the name is part
of the cache key, and it is what travels to worker processes (which
re-resolve it locally), so no callable ever needs to be pickled.
Registered targets are ``"module:qualname"`` strings resolved lazily —
this keeps :mod:`repro.sweep` importable from the experiment drivers it
orchestrates without import cycles.

Every task function must be a module-level callable whose keyword
parameters are canonicalizable (see :mod:`repro.sweep.canonical`) and
whose return value pickles cleanly.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Optional

from repro.errors import SweepError

#: task name -> "module:qualname" of the callable to invoke.
_TASKS: dict[str, str] = {
    "experiment": "repro.experiments.runner:run_experiment",
    "psm-baseline": "repro.experiments.baselines:_run_one",
    "dummynet-transfer": "repro.experiments.tables:_dummynet_transfer",
    "replay-early": "repro.sweep.tasks:_replay_early",
    "policy-model": "repro.sweep.tasks:_policy_model",
}


def register_task(name: str, target: str, replace: bool = False) -> None:
    """Register ``name`` -> ``"module:qualname"`` (tests, extensions)."""
    if ":" not in target:
        raise SweepError(
            f"task target {target!r} must be 'module:qualname'"
        )
    if name in _TASKS and not replace:
        raise SweepError(f"task {name!r} already registered")
    _TASKS[name] = target


def task_targets(names: Any) -> dict[str, str]:
    """The ``name -> "module:qualname"`` entries behind ``names``.

    Shipped with every warm-pool chunk so long-lived workers resolve
    tasks registered after they spawned (per-worker registry sync).
    Unknown names fail here, in the parent, before any dispatch.
    """
    targets = {}
    for name in sorted(names):
        try:
            targets[name] = _TASKS[name]
        except KeyError:
            raise SweepError(
                f"unknown sweep task {name!r}; "
                f"known: {', '.join(sorted(_TASKS))}"
            ) from None
    return targets


def resolve_task(name: str) -> Callable[..., Any]:
    """The callable behind a task name; raises on unknown names."""
    try:
        target = _TASKS[name]
    except KeyError:
        raise SweepError(
            f"unknown sweep task {name!r}; known: {', '.join(sorted(_TASKS))}"
        ) from None
    module_name, _, qualname = target.partition(":")
    module = importlib.import_module(module_name)
    fn = module
    for part in qualname.split("."):
        fn = getattr(fn, part)
    if not callable(fn):
        raise SweepError(f"task {name!r} target {target!r} is not callable")
    return fn


def sanitize_result(result: Any) -> Any:
    """Make a task result cache/IPC-safe.

    ``ExperimentResult`` carries the run's live :class:`~repro.obs`
    recorder for postmortem timeline export; that stream is neither
    needed by any driver row nor cheap to pickle, so transported
    results carry the shared ``NULL_RECORDER`` instead (the metrics
    snapshot dict — plain data — stays). Everything else passes
    through untouched.
    """
    import dataclasses

    from repro.experiments.runner import ExperimentResult
    from repro.obs import NULL_RECORDER

    if isinstance(result, ExperimentResult):
        return dataclasses.replace(result, obs=NULL_RECORDER)
    return result


def _policy_model(
    policy: str,
    seed: int = 0,
    n_instances: int = 32,
    n_clients: int = 3,
    horizon: int = 8,
    threshold: int = 1,
    max_defer: int = 2,
) -> dict:
    """Average one policy over random discrete (queue, channel) instances.

    ``policy`` is a :data:`~repro.core.policy.POLICY_NAMES` member run
    online via :func:`~repro.core.policy.rollout`, or ``"optimal"`` for
    the clairvoyant DP oracle of :func:`~repro.energy.optimal.dp_optimal`
    — the model-side rows of the Pareto figure. Instances are seeded
    ``seed .. seed + n_instances - 1``, so the same parameters always
    average the same instance population.
    """
    from repro.core.policy import make_policy, random_instance, rollout
    from repro.energy.optimal import dp_optimal

    total = energy = delay = 0.0
    served = arrived = 0
    for i in range(n_instances):
        instance = random_instance(
            seed + i, n_clients=n_clients, horizon=horizon
        )
        if policy == "optimal":
            outcome = dp_optimal(instance).outcome
        else:
            outcome = rollout(
                instance,
                make_policy(policy, threshold=threshold, max_defer=max_defer),
            )
        total += outcome.total_cost
        energy += outcome.energy_cost
        delay += outcome.mean_delay_slots
        served += outcome.served
        arrived += outcome.arrived
    n = float(n_instances)
    return {
        "policy": policy,
        "n_instances": n_instances,
        "mean_total_cost": total / n,
        "mean_energy_cost": energy / n,
        "mean_delay_slots": delay / n,
        "served": served,
        "arrived": arrived,
    }


def _replay_early(
    frames: Any,
    client_ip: str,
    power: Any,
    early_s: float,
    duration_s: Optional[float] = None,
    client_kwargs: Optional[dict] = None,
) -> Any:
    """Replay one early-transition amount over a recorded capture.

    The adaptive compensator is built *inside* the task so the sweep
    parameters stay declarative (no callables in the cache key).
    """
    from repro.core.delay_comp import AdaptiveCompensator
    from repro.energy.replay import replay_policy
    from repro.net.sniffer import FrameRecord

    rebuilt = [
        frame if isinstance(frame, FrameRecord) else FrameRecord(**frame)
        for frame in frames
    ]
    return replay_policy(
        rebuilt,
        client_ip,
        AdaptiveCompensator(early_s=early_s),
        power,
        duration_s=duration_s,
        client_kwargs=client_kwargs,
    )
