"""The registry of task functions a sweep may execute.

Tasks are addressed by *name*, not by function object: the name is part
of the cache key, and it is what travels to worker processes (which
re-resolve it locally), so no callable ever needs to be pickled.
Registered targets are ``"module:qualname"`` strings resolved lazily —
this keeps :mod:`repro.sweep` importable from the experiment drivers it
orchestrates without import cycles.

Every task function must be a module-level callable whose keyword
parameters are canonicalizable (see :mod:`repro.sweep.canonical`) and
whose return value pickles cleanly.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Optional

from repro.errors import SweepError

#: task name -> "module:qualname" of the callable to invoke.
_TASKS: dict[str, str] = {
    "experiment": "repro.experiments.runner:run_experiment",
    "psm-baseline": "repro.experiments.baselines:_run_one",
    "dummynet-transfer": "repro.experiments.tables:_dummynet_transfer",
    "replay-early": "repro.sweep.tasks:_replay_early",
}


def register_task(name: str, target: str, replace: bool = False) -> None:
    """Register ``name`` -> ``"module:qualname"`` (tests, extensions)."""
    if ":" not in target:
        raise SweepError(
            f"task target {target!r} must be 'module:qualname'"
        )
    if name in _TASKS and not replace:
        raise SweepError(f"task {name!r} already registered")
    _TASKS[name] = target


def task_targets(names: Any) -> dict[str, str]:
    """The ``name -> "module:qualname"`` entries behind ``names``.

    Shipped with every warm-pool chunk so long-lived workers resolve
    tasks registered after they spawned (per-worker registry sync).
    Unknown names fail here, in the parent, before any dispatch.
    """
    targets = {}
    for name in sorted(names):
        try:
            targets[name] = _TASKS[name]
        except KeyError:
            raise SweepError(
                f"unknown sweep task {name!r}; "
                f"known: {', '.join(sorted(_TASKS))}"
            ) from None
    return targets


def resolve_task(name: str) -> Callable[..., Any]:
    """The callable behind a task name; raises on unknown names."""
    try:
        target = _TASKS[name]
    except KeyError:
        raise SweepError(
            f"unknown sweep task {name!r}; known: {', '.join(sorted(_TASKS))}"
        ) from None
    module_name, _, qualname = target.partition(":")
    module = importlib.import_module(module_name)
    fn = module
    for part in qualname.split("."):
        fn = getattr(fn, part)
    if not callable(fn):
        raise SweepError(f"task {name!r} target {target!r} is not callable")
    return fn


def sanitize_result(result: Any) -> Any:
    """Make a task result cache/IPC-safe.

    ``ExperimentResult`` carries the run's live :class:`~repro.obs`
    recorder for postmortem timeline export; that stream is neither
    needed by any driver row nor cheap to pickle, so transported
    results carry the shared ``NULL_RECORDER`` instead (the metrics
    snapshot dict — plain data — stays). Everything else passes
    through untouched.
    """
    import dataclasses

    from repro.experiments.runner import ExperimentResult
    from repro.obs import NULL_RECORDER

    if isinstance(result, ExperimentResult):
        return dataclasses.replace(result, obs=NULL_RECORDER)
    return result


def _replay_early(
    frames: Any,
    client_ip: str,
    power: Any,
    early_s: float,
    duration_s: Optional[float] = None,
    client_kwargs: Optional[dict] = None,
) -> Any:
    """Replay one early-transition amount over a recorded capture.

    The adaptive compensator is built *inside* the task so the sweep
    parameters stay declarative (no callables in the cache key).
    """
    from repro.core.delay_comp import AdaptiveCompensator
    from repro.energy.replay import replay_policy
    from repro.net.sniffer import FrameRecord

    rebuilt = [
        frame if isinstance(frame, FrameRecord) else FrameRecord(**frame)
        for frame in frames
    ]
    return replay_policy(
        rebuilt,
        client_ip,
        AdaptiveCompensator(early_s=early_s),
        power,
        duration_s=duration_s,
        client_kwargs=client_kwargs,
    )
