"""Persistent warm worker pool for sweep fan-out.

The engine used to build a fresh ``ProcessPoolExecutor`` per sweep, so
every invocation paid worker startup plus the ``repro`` import graph
before its first run — on the quick grids that overhead swamped the
simulations and made ``--jobs 2`` *slower* than serial. The warm pool
fixes the three cost centers:

* **persistence** — one pool per process, created on first parallel
  sweep and reused by every later one (shut down at interpreter exit);
* **preloaded workers** — each worker imports the experiment modules
  once at spawn, so the first dispatched run starts simulating
  immediately;
* **registry sync** — task names are resolved per worker; every chunk
  carries the ``name -> "module:qualname"`` entries it needs, so tasks
  registered after the pool spawned (tests, extensions) still resolve
  in long-lived workers.

Dispatch is *chunked*: the engine groups short runs into one submission
so a 15-run grid costs a handful of pickling round trips instead of 15.
Chunking is pure transport — tasks are pure functions of their
parameters, so grouping cannot leak into results (the byte-identity
contract of :mod:`repro.sweep.engine`).
"""

from __future__ import annotations

import atexit
import importlib
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Optional

#: Modules every worker imports at spawn. Covers the registered task
#: targets (see ``repro.sweep.tasks._TASKS``) and their transitive
#: simulation imports.
PRELOAD_MODULES: tuple[str, ...] = (
    "repro.experiments.runner",
    "repro.experiments.baselines",
    "repro.experiments.tables",
    "repro.sweep.engine",
)

#: Target chunks per worker: >1 so stragglers rebalance, small enough
#: that chunking still amortizes dispatch overhead.
CHUNKS_PER_WORKER = 4


def _warm_worker(registry: dict[str, str], modules: tuple[str, ...]) -> None:
    """Worker initializer: preload heavy modules, seed the registry."""
    for name in modules:
        importlib.import_module(name)
    from repro.sweep import tasks

    for name, target in registry.items():
        tasks._TASKS.setdefault(name, target)


def _run_chunk(
    items: list[tuple[str, dict]], registry: dict[str, str]
) -> list[tuple[bool, Any, float]]:
    """Worker entry: execute a chunk of runs, one result triple each.

    Returns ``(ok, payload, wall_s)`` per item — the wall clock is
    measured here, in the worker, so per-run timings stay honest under
    chunking. Failures are caught per run (`_execute_run` never
    raises), so one bad run cannot poison its chunkmates.
    """
    from repro.sweep import tasks
    from repro.sweep.engine import _execute_run

    for name, target in registry.items():
        tasks._TASKS[name] = target
    out = []
    for task, params in items:
        started = time.perf_counter()
        ok, payload = _execute_run(task, params)
        out.append((ok, payload, time.perf_counter() - started))
    return out


class WarmPool:
    """A reusable process pool with preloaded, registry-synced workers."""

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ---------------------------------------------------------

    def _make_executor(self) -> ProcessPoolExecutor:
        from repro.sweep import tasks

        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_warm_worker,
            initargs=(dict(tasks._TASKS), PRELOAD_MODULES),
        )

    @property
    def alive(self) -> bool:
        """True while an executor exists (workers spawned, not shut down)."""
        return self._executor is not None

    def rebuild(self) -> None:
        """Replace a broken executor with a fresh one (same size)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._make_executor()

    def shutdown(self) -> None:
        """Terminate the workers (the next submit re-spawns them)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- dispatch ----------------------------------------------------------

    def submit_chunk(
        self, items: list[tuple[str, dict]], registry: dict[str, str]
    ) -> Future:
        """Submit one chunk of ``(task, params)`` runs."""
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor.submit(_run_chunk, items, registry)


#: The per-process shared pool (lazily created, resized on demand).
_shared: Optional[WarmPool] = None


def shared_pool(workers: int) -> WarmPool:
    """The process-wide warm pool, grown (never shrunk) to ``workers``.

    Reusing a larger-than-requested pool keeps its workers warm; the
    extras just idle. Asking for more workers than the current pool has
    rebuilds it at the larger size.
    """
    global _shared
    if _shared is None:
        _shared = WarmPool(workers)
        atexit.register(_shutdown_shared)
    elif _shared.workers < workers:
        _shared.shutdown()
        _shared = WarmPool(workers)
    return _shared


def _shutdown_shared() -> None:
    if _shared is not None:
        _shared.shutdown()


def chunk_runs(count: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` chunk bounds for ``count`` runs.

    Aims for :data:`CHUNKS_PER_WORKER` chunks per worker so slow chunks
    rebalance across the pool, while short grids still batch several
    runs per dispatch.
    """
    if count <= 0:
        return []
    n_chunks = min(count, max(1, workers * CHUNKS_PER_WORKER))
    size, extra = divmod(count, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        stop = start + size + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


__all__ = [
    "CHUNKS_PER_WORKER",
    "PRELOAD_MODULES",
    "WarmPool",
    "chunk_runs",
    "shared_pool",
]
