"""Content-addressed on-disk cache of sweep run results.

A run is identified by the SHA-256 of

* the registered task name (e.g. ``"experiment"``),
* the canonical JSON of its parameters (config + seed live there), and
* a fingerprint of the ``repro`` package's source code,

so a cache entry can only be replayed by the exact code and
configuration that produced it. Entries are pickled payloads written
atomically (temp file + rename); a corrupted or unreadable entry is
treated as a miss and re-run, never a crash.
"""

from __future__ import annotations

import functools
import hashlib
import os
import pathlib
import pickle
from typing import Any, Optional

from repro._version import __version__
from repro.sweep.canonical import canonical_json

#: Bump when the payload layout changes; old entries then miss cleanly.
CACHE_SCHEMA = 1


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Any code change — a scheduler tweak, an energy-model constant —
    yields a new fingerprint and therefore cold keys, so stale results
    can never masquerade as current ones.
    """
    import repro

    package_root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    digest.update(f"repro=={__version__};schema={CACHE_SCHEMA}".encode())
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def run_key(task: str, params: dict[str, Any]) -> str:
    """The content address of one run (hex SHA-256)."""
    digest = hashlib.sha256()
    digest.update(task.encode())
    digest.update(b"\x00")
    digest.update(canonical_json(params).encode())
    digest.update(b"\x00")
    digest.update(code_fingerprint().encode())
    return digest.hexdigest()


class ResultCache:
    """Pickle-per-key store under ``cache_dir`` (two-level fan-out)."""

    def __init__(self, cache_dir: os.PathLike | str) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        #: Entries that failed to load this session (observability).
        self.corrupt_entries = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.cache_dir / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[tuple[Any]]:
        """The cached result as a 1-tuple, or None on miss.

        The tuple wrapper distinguishes "miss" from a cached ``None``.
        """
        path = self.path_for(key)
        try:
            payload = pickle.loads(path.read_bytes())
        except FileNotFoundError:
            return None
        except Exception as exc:
            self.warn_corrupt(path, exc)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != key
        ):
            self.warn_corrupt(path, None)
            return None
        return (payload["result"],)

    def put(self, key: str, task: str, result: Any) -> pathlib.Path:
        """Atomically persist ``result`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "task": task,
            "result": result,
        }
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)
        return path

    def warn_corrupt(self, path: pathlib.Path, exc: Optional[Exception]) -> None:
        """Record (and survive) an unreadable cache entry."""
        self.corrupt_entries += 1
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass  # cache stays degraded but usable

    def __len__(self) -> int:
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*/*.pkl"))
