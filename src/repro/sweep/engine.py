"""The sweep executor: cache lookup, fan-out, retries, aggregation.

Determinism contract: aggregated results are ordered by spec index and
are **byte-identical** between ``jobs=1`` and ``jobs=N`` — every task is
a pure function of its parameters (the simulator replays from the
seed), execution order cannot leak into results, and cache state only
decides *whether* a run executes, never what it returns. Wall-clock
readings exist only inside the :class:`ExecutionReport`, which is
reporting, not data.
"""

from __future__ import annotations

import pickle
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigurationError, SweepExecutionError
from repro.obs import NULL_RECORDER, Recorder
from repro.sweep.cache import ResultCache, run_key
from repro.sweep.pool import chunk_runs, shared_pool
from repro.sweep.spec import RunSpec, SweepSpec
from repro.sweep.tasks import resolve_task, sanitize_result, task_targets


@dataclass
class RunRecord:
    """What happened to one run (per-run slice of the report)."""

    index: int
    task: str
    key: str
    cached: bool = False
    attempts: int = 0
    wall_s: float = 0.0
    error: Optional[str] = None
    label: dict = field(default_factory=dict)


@dataclass
class ExecutionReport:
    """The accounting of one engine invocation."""

    spec_name: str
    jobs: int
    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    retries: int = 0
    failures: int = 0
    corrupt_cache_entries: int = 0
    wall_s: float = 0.0
    runs: list[RunRecord] = field(default_factory=list)

    @property
    def simulation_runs(self) -> int:
        """How many simulations actually ran (0 on a fully warm cache)."""
        return self.executed

    def as_dict(self) -> dict:
        """JSON-ready summary (per-run detail included)."""
        return {
            "spec": self.spec_name,
            "jobs": self.jobs,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "retries": self.retries,
            "failures": self.failures,
            "corrupt_cache_entries": self.corrupt_cache_entries,
            "wall_s": self.wall_s,
            "runs": [
                {
                    "index": record.index,
                    "task": record.task,
                    "key": record.key,
                    "cached": record.cached,
                    "attempts": record.attempts,
                    "wall_s": record.wall_s,
                    "error": record.error,
                }
                for record in self.runs
            ],
        }

    def summary(self) -> str:
        """One human line: ``15 runs: 12 hits, 3 executed, ...``."""
        return (
            f"{self.spec_name}: {self.total} runs — "
            f"{self.cache_hits} cache hits, {self.executed} executed, "
            f"{self.retries} retries, {self.failures} failures "
            f"(jobs={self.jobs}, {self.wall_s:.2f}s)"
        )


@dataclass
class SweepOutcome:
    """Aggregated results (spec order) plus the execution report."""

    spec: SweepSpec
    results: list[Any]
    report: ExecutionReport

    def rows(self) -> list[dict]:
        """Label dicts zipped with results, for drivers that keep their
        row-building inline."""
        return [
            {**dict(run.label), "result": result}
            for run, result in zip(self.spec.runs, self.results)
        ]


def _execute_run(task: str, params: dict) -> tuple[bool, Any]:
    """Worker entry: run one task, never raise across the boundary.

    Returns ``(ok, payload)`` where payload is the sanitized result or
    a formatted traceback string. Exceptions must not cross process
    boundaries raw — some are unpicklable, and one bad run must not
    take down the pool (per-run failure isolation).
    """
    try:
        fn = resolve_task(task)
        return True, sanitize_result(fn(**params))
    except Exception:  # repro: noqa[ERR002] -- isolation: the traceback crosses the process boundary as data and is re-raised by the engine
        return False, traceback.format_exc()


class SweepEngine:
    """Runs :class:`SweepSpec`s against the cache and a worker pool.

    Args:
        jobs: worker processes; ``1`` (default) runs serially in-process.
        cache: a :class:`ResultCache`, or None to disable caching.
        retries: extra attempts per failing run before it counts as
            failed (bounded, never infinite).
        allow_failures: when True, failed runs yield ``None`` results
            instead of raising :class:`SweepExecutionError`.
        obs: recorder receiving ``sweep.*`` metrics (cache hit/miss,
            retry and failure counters, per-run wall-time histogram).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        retries: int = 1,
        allow_failures: bool = False,
        obs: Recorder = NULL_RECORDER,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.cache = cache
        self.retries = retries
        self.allow_failures = allow_failures
        self.obs = obs
        #: Reports of every spec this engine has run, in order.
        self.reports: list[ExecutionReport] = []

    @property
    def last_report(self) -> Optional[ExecutionReport]:
        return self.reports[-1] if self.reports else None

    def combined_report(self) -> ExecutionReport:
        """All accumulated reports folded into one (name ``combined``)."""
        combined = ExecutionReport(spec_name="combined", jobs=self.jobs)
        for report in self.reports:
            combined.total += report.total
            combined.cache_hits += report.cache_hits
            combined.cache_misses += report.cache_misses
            combined.executed += report.executed
            combined.retries += report.retries
            combined.failures += report.failures
            combined.corrupt_cache_entries += report.corrupt_cache_entries
            combined.wall_s += report.wall_s
            combined.runs.extend(report.runs)
        return combined

    # -- execution ---------------------------------------------------------

    def run(self, spec: SweepSpec) -> SweepOutcome:
        """Execute a spec; results come back in spec order."""
        started = time.perf_counter()
        report = ExecutionReport(
            spec_name=spec.name, jobs=self.jobs, total=len(spec)
        )
        results: list[Any] = [None] * len(spec)
        pending: list[RunSpec] = []

        corrupt_before = self.cache.corrupt_entries if self.cache else 0
        for run in spec:
            key = run_key(run.task, dict(run.params))
            record = RunRecord(
                index=run.index, task=run.task, key=key,
                label=dict(run.label),
            )
            report.runs.append(record)
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                record.cached = True
                report.cache_hits += 1
                results[run.index] = hit[0]
            else:
                report.cache_misses += 1
                pending.append(run)

        if pending:
            if self.jobs == 1 or len(pending) == 1:
                self._run_serial(pending, results, report)
            else:
                self._run_parallel(pending, results, report)

        if self.cache is not None:
            report.corrupt_cache_entries = (
                self.cache.corrupt_entries - corrupt_before
            )
        report.wall_s = time.perf_counter() - started
        self.reports.append(report)
        self._publish_metrics(report)

        failed = [r for r in report.runs if r.error is not None]
        if failed and not self.allow_failures:
            detail = "; ".join(
                f"run {r.index} ({r.task}) after {r.attempts} attempt(s)"
                for r in failed
            )
            first_trace = failed[0].error or ""
            raise SweepExecutionError(
                f"sweep {spec.name!r}: {len(failed)} run(s) failed: "
                f"{detail}\n{first_trace}"
            )
        return SweepOutcome(spec=spec, results=results, report=report)

    # -- serial / parallel backends ---------------------------------------

    def _record_of(self, report: ExecutionReport, index: int) -> RunRecord:
        return next(r for r in report.runs if r.index == index)

    def _finish_run(
        self,
        run: RunSpec,
        ok: bool,
        payload: Any,
        attempts: int,
        wall_s: float,
        results: list[Any],
        report: ExecutionReport,
    ) -> None:
        record = self._record_of(report, run.index)
        record.attempts = attempts
        record.wall_s = wall_s
        report.retries += attempts - 1
        if ok:
            report.executed += 1
            results[run.index] = payload
            if self.cache is not None:
                self.cache.put(record.key, run.task, payload)
        else:
            report.failures += 1
            record.error = payload

    def _run_serial(
        self,
        pending: list[RunSpec],
        results: list[Any],
        report: ExecutionReport,
    ) -> None:
        for run in pending:
            started = time.perf_counter()
            attempts = 0
            ok, payload = False, None
            while attempts <= self.retries and not ok:
                attempts += 1
                ok, payload = _execute_run(run.task, dict(run.params))
            if ok:
                # The same pickle round-trip a result crossing the
                # process boundary takes: without it, serial results
                # share in-process singletons (memoized on aggregate
                # pickling) while parallel ones arrive as independent
                # graphs, and the byte-identity contract breaks.
                payload = pickle.loads(pickle.dumps(payload))
            self._finish_run(
                run, ok, payload, attempts,
                time.perf_counter() - started, results, report,
            )

    def _run_parallel(
        self,
        pending: list[RunSpec],
        results: list[Any],
        report: ExecutionReport,
    ) -> None:
        """Fan pending runs out over the shared warm pool.

        Runs are dispatched in contiguous chunks (one pickling round
        trip for several short runs); chunk composition is pure
        transport and cannot affect results. Failed runs are retried as
        single-run chunks for isolation; a dead worker (OOM, signal)
        breaks the whole chunk, so the pool is rebuilt and each of the
        chunk's runs retries individually.
        """
        workers = min(self.jobs, len(pending))
        pool = shared_pool(workers)
        registry = task_targets({run.task for run in pending})
        attempts: dict[int, int] = {}

        def submit(runs: list[RunSpec]):
            for run in runs:
                attempts[run.index] = attempts.get(run.index, 0) + 1
            items = [(run.task, dict(run.params)) for run in runs]
            return pool.submit_chunk(items, registry)

        live = {
            submit(pending[start:stop]): pending[start:stop]
            for start, stop in chunk_runs(len(pending), workers)
        }
        while live:
            done, _ = wait(live, return_when=FIRST_COMPLETED)
            for future in done:
                runs = live.pop(future)
                try:
                    triples = future.result()
                except Exception:  # repro: noqa[ERR002] -- a dead worker (OOM, signal) becomes a retryable per-run failure, re-raised after retries
                    pool.rebuild()
                    error = traceback.format_exc()
                    triples = [(False, error, 0.0)] * len(runs)
                for run, (ok, payload, wall_s) in zip(runs, triples):
                    if not ok and attempts[run.index] <= self.retries:
                        live[submit([run])] = [run]
                        continue
                    self._finish_run(
                        run, ok, payload, attempts[run.index], wall_s,
                        results, report,
                    )

    # -- observability -----------------------------------------------------

    def _publish_metrics(self, report: ExecutionReport) -> None:
        obs = self.obs
        obs.inc("sweep.runs", report.total, spec=report.spec_name)
        obs.inc("sweep.cache.hits", report.cache_hits, spec=report.spec_name)
        obs.inc(
            "sweep.cache.misses", report.cache_misses, spec=report.spec_name
        )
        obs.inc("sweep.executed", report.executed, spec=report.spec_name)
        if report.retries:
            obs.inc("sweep.retries", report.retries, spec=report.spec_name)
        if report.failures:
            obs.inc("sweep.failures", report.failures, spec=report.spec_name)
        if report.corrupt_cache_entries:
            obs.inc(
                "sweep.cache.corrupt",
                report.corrupt_cache_entries,
                spec=report.spec_name,
            )
        for record in report.runs:
            if not record.cached:
                obs.observe(
                    "sweep.run_wall_s", record.wall_s, spec=report.spec_name
                )
