"""Canonical, byte-stable JSON encoding of run parameters.

Cache keys hash the *meaning* of a run, not its Python object identity,
so every parameter value must reduce to one canonical JSON text:

* dataclasses become ``{"__dataclass__": "<qualified name>", ...fields}``
  (the type tag keeps two classes with identical fields from colliding);
* mappings are emitted with sorted keys, tuples as lists;
* floats rely on :func:`json.dumps`'s shortest-repr round trip, which is
  stable across runs and platforms for equal values.

Anything that cannot be encoded deterministically (functions, live
simulator objects, arbitrary class instances) raises
:class:`~repro.errors.SweepError` instead of silently producing an
unstable key.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.errors import SweepError

_PRIMITIVES = (str, int, float, bool, type(None))


def canonical_value(obj: Any) -> Any:
    """Reduce ``obj`` to JSON-encodable primitives, deterministically."""
    if isinstance(obj, bool) or obj is None or isinstance(obj, (str, int)):
        return obj
    if isinstance(obj, float):
        # -0.0 == 0.0 but reprs differ; normalize so keys agree.
        return obj + 0.0 if obj == 0.0 else obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded: dict[str, Any] = {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}"
        }
        for field in dataclasses.fields(obj):
            encoded[field.name] = canonical_value(getattr(obj, field.name))
        return encoded
    if isinstance(obj, dict):
        for key in obj:
            if not isinstance(key, _PRIMITIVES):
                raise SweepError(
                    f"cannot canonicalize mapping key {key!r} "
                    f"({type(key).__name__})"
                )
        return {
            str(key): canonical_value(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_value(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        members = [canonical_value(item) for item in obj]
        try:
            return sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
        except TypeError as exc:  # pragma: no cover - defensive
            raise SweepError(f"cannot order set members of {obj!r}") from exc
    raise SweepError(
        f"cannot canonicalize {type(obj).__name__} value {obj!r}; sweep "
        "parameters must be primitives, containers, or dataclasses"
    )


def canonical_json(obj: Any) -> str:
    """The one canonical JSON text of ``obj`` (byte-stable)."""
    return json.dumps(
        canonical_value(obj),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
        allow_nan=False,
    )
