"""Sweep orchestration: cached, parallel, fault-tolerant experiment fan-out.

Every multi-run artifact in the repo (paper figures, tables, the PSM
baseline, the postmortem replay sweep) runs through this subsystem:

* :class:`~repro.sweep.spec.SweepSpec` — a declarative, ordered run
  list (parameter grids × seed replications over ``ExperimentConfig``,
  or arbitrary registered tasks);
* :class:`~repro.sweep.cache.ResultCache` — a content-addressed on-disk
  result store keyed by SHA-256(task, canonical params JSON, code
  fingerprint), so repeated figure/table/report invocations are
  warm-cache instant;
* :class:`~repro.sweep.engine.SweepEngine` — serial (``jobs=1``) or
  warm-pool execution (:mod:`repro.sweep.pool`: persistent preloaded
  workers, chunked dispatch) with per-run failure isolation and
  bounded retries; aggregated output is ordered by spec index and
  byte-identical to the serial path;
* :class:`~repro.sweep.engine.ExecutionReport` — cache hits/misses,
  retries, per-run wall time, surfaced through the obs metrics
  registry and the ``repro sweep`` CLI.

See DESIGN.md §10 for the cache-key derivation and the determinism
argument for process fan-out.
"""

from repro.sweep.cache import ResultCache, code_fingerprint, run_key
from repro.sweep.canonical import canonical_json, canonical_value
from repro.sweep.engine import (
    ExecutionReport,
    RunRecord,
    SweepEngine,
    SweepOutcome,
)
from repro.sweep.pool import WarmPool, shared_pool
from repro.sweep.spec import RunSpec, SweepSpec
from repro.sweep.tasks import register_task, resolve_task, task_targets

__all__ = [
    "ExecutionReport",
    "ResultCache",
    "RunRecord",
    "RunSpec",
    "SweepEngine",
    "SweepOutcome",
    "SweepSpec",
    "WarmPool",
    "canonical_json",
    "canonical_value",
    "code_fingerprint",
    "register_task",
    "resolve_task",
    "run_key",
    "shared_pool",
    "task_targets",
]
