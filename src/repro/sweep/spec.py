"""Declarative sweep specifications.

A :class:`SweepSpec` is an *ordered* list of runs: each
:class:`RunSpec` names a registered task (see
:mod:`repro.sweep.tasks`), its parameters (the cache-key material) and
a free-form label dict the caller uses to tag result rows. Expansion
is pure — the same spec always yields the same runs in the same order,
which is what lets the parallel executor promise output byte-identical
to the serial path.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.errors import SweepError

EXPERIMENT_TASK = "experiment"


@dataclass(frozen=True)
class RunSpec:
    """One unit of work in a sweep."""

    index: int
    task: str
    params: Mapping[str, Any]
    label: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepSpec:
    """An ordered run list plus the name artifacts report under."""

    name: str
    runs: tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        for position, run in enumerate(self.runs):
            if run.index != position:
                raise SweepError(
                    f"sweep {self.name!r}: run at position {position} "
                    f"carries index {run.index}; indices must be dense "
                    "and ordered"
                )

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.runs)

    # -- builders ----------------------------------------------------------

    @classmethod
    def from_tasks(
        cls,
        name: str,
        task: str,
        params_list: Sequence[Mapping[str, Any]],
        labels: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> "SweepSpec":
        """One run per params dict, all against the same task."""
        if labels is not None and len(labels) != len(params_list):
            raise SweepError(
                f"sweep {name!r}: {len(params_list)} runs but "
                f"{len(labels)} labels"
            )
        runs = tuple(
            RunSpec(
                index=index,
                task=task,
                params=dict(params),
                label=dict(labels[index]) if labels is not None else {},
            )
            for index, params in enumerate(params_list)
        )
        return cls(name=name, runs=runs)

    @classmethod
    def experiments(
        cls,
        name: str,
        configs: Sequence[Any],
        labels: Optional[Sequence[Mapping[str, Any]]] = None,
    ) -> "SweepSpec":
        """One :func:`~repro.experiments.runner.run_experiment` per
        ``ExperimentConfig``, in the given order."""
        return cls.from_tasks(
            name,
            EXPERIMENT_TASK,
            [{"config": config} for config in configs],
            labels=labels,
        )

    @classmethod
    def grid(
        cls,
        name: str,
        base: Any,
        axes: Mapping[str, Sequence[Any]],
        seeds: Sequence[int] = (0,),
    ) -> "SweepSpec":
        """The cartesian product of field ``axes`` × ``seeds`` over a
        base ``ExperimentConfig``.

        Axes apply via :func:`dataclasses.replace` in the mapping's
        insertion order; seeds vary fastest. Labels carry each run's
        axis values plus its seed.
        """
        if not dataclasses.is_dataclass(base):
            raise SweepError("grid base must be a dataclass (ExperimentConfig)")
        valid = {f.name for f in dataclasses.fields(base)}
        for axis in axes:
            if axis not in valid:
                raise SweepError(
                    f"grid axis {axis!r} is not a field of "
                    f"{type(base).__name__}"
                )
        if not seeds:
            raise SweepError("grid needs at least one seed")
        configs = []
        labels = []
        axis_names = list(axes)
        for values in itertools.product(*(axes[a] for a in axis_names)):
            overrides = dict(zip(axis_names, values))
            for seed in seeds:
                configs.append(
                    dataclasses.replace(base, seed=seed, **overrides)
                )
                labels.append({**overrides, "seed": seed})
        return cls.experiments(name, configs, labels=labels)
