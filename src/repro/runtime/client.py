"""The live power-aware client shim.

A real deployment would transition actual WNIC power states; on a
development box the shim keeps a :class:`VirtualWnic` — a timestamped
sleep/awake log driven by exactly the schedule/burst/mark events the
paper's daemon reacts to. The log feeds the same energy model as the
simulator, giving a wall-clock estimate of what the card *would* have
saved.

Liveness: the client answers every control datagram with a heartbeat
back to the proxy's control socket, so the proxy observes uplink
liveness even while the TCP data path is idle. A client that vanishes
(process death, radio loss) simply stops heartbeating and ages out of
the schedule — no explicit goodbye required, mirroring the simulated
proxy's passive ``last_uplink`` signal.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional

from repro.errors import OverloadError, ProxyProtocolError, SchedulingError
from repro.obs import NULL_RECORDER, Recorder
from repro.runtime.wire import (
    RuntimeSchedule,
    decode_control,
    decode_status_line,
    encode_heartbeat,
)
from repro.wnic.power import WAVELAN_2_4GHZ, PowerModel


class VirtualWnic:
    """A wall-clock sleep/awake transition log."""

    def __init__(
        self, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self._clock = clock
        self.epoch = clock()
        self.transitions: list[tuple[float, str]] = [(0.0, "idle")]
        self.wake_count = 0

    def _now(self) -> float:
        return self._clock() - self.epoch

    @property
    def is_awake(self) -> bool:
        """True while the virtual card is in a high-power state."""
        return self.transitions[-1][1] != "sleep"

    def sleep(self) -> None:
        """Log a transition to the low-power state (idempotent)."""
        if self.is_awake:
            self.transitions.append((self._now(), "sleep"))

    def wake(self) -> None:
        """Log a transition to the high-power state (idempotent)."""
        if not self.is_awake:
            self.wake_count += 1
            self.transitions.append((self._now(), "idle"))

    def awake_time(self, until: Optional[float] = None) -> float:
        """Total awake seconds since the epoch (up to ``until``).

        ``until`` may point anywhere on the timeline — before, between,
        or after the logged transitions; only awake stretches that
        overlap ``[0, until)`` count.
        """
        end = until if until is not None else self._now()
        if end <= 0:
            return 0.0
        total = 0.0
        for (t0, state), (t1, _s1) in zip(
            self.transitions, self.transitions[1:] + [(end, "end")]
        ):
            if state != "sleep":
                total += max(0.0, min(t1, end) - t0)
        return total

    def wakes_until(self, until: Optional[float] = None) -> int:
        """Number of sleep→awake wake-ups at or before ``until``."""
        end = until if until is not None else self._now()
        count = 0
        previous = "sleep"
        for t, state in self.transitions[1:]:
            if t > end:
                break
            if state != "sleep" and previous == "sleep":
                count += 1
            previous = state
        return count

    def estimated_savings_pct(
        self, power: PowerModel = WAVELAN_2_4GHZ, until: Optional[float] = None
    ) -> float:
        """Energy saved vs an always-idle card (receive time ignored —
        a coarse wall-clock estimate, not the simulator's accounting).

        Only wake-up penalties paid *within* the queried window count,
        so overlapping queries at different ``until`` points stay
        consistent with :meth:`awake_time` over the same window.
        """
        end = until if until is not None else self._now()
        if end <= 0:
            return 0.0
        awake = self.awake_time(end)
        energy = (
            awake * power.idle_w
            + (end - awake) * power.sleep_w
            + self.wakes_until(end) * power.wake_penalty_j
        )
        return 100.0 * (1.0 - energy / (end * power.idle_w))


class AsyncPowerClient:
    """Listens for schedules/marks and drives the virtual WNIC."""

    def __init__(
        self,
        client_id: str,
        early_s: float = 0.006,
        wnic: Optional[VirtualWnic] = None,
        obs: Recorder = NULL_RECORDER,
    ) -> None:
        self.client_id = client_id
        self.early_s = early_s
        self.wnic = wnic or VirtualWnic()
        self.obs = obs
        self.control_port: Optional[int] = None
        self.schedules_heard = 0
        self.marks_heard = 0
        self.heartbeats_sent = 0
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._wake_handle: Optional[asyncio.TimerHandle] = None
        self._last_seq = 0

    async def start(self) -> int:
        """Bind the UDP control socket; returns the control port."""
        loop = asyncio.get_running_loop()
        self._transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _ControlProtocol(self),
            local_addr=("127.0.0.1", 0),
        )
        self.control_port = self._transport.get_extra_info("sockname")[1]
        return self.control_port

    def stop(self) -> None:
        """Close the control socket and cancel pending wake timers."""
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # -- control events ---------------------------------------------------------

    def _on_datagram(self, payload: bytes, addr: tuple[str, int]) -> None:
        try:
            raw = decode_control(payload)
            schedule = (
                RuntimeSchedule.decode(payload)
                if raw["type"] == "schedule"
                else None
            )
        except SchedulingError:
            # Anything on the network can reach this socket; hostile or
            # truncated datagrams must never take the daemon down.
            return
        if schedule is not None:
            self._last_seq = schedule.seq
            self._heartbeat(addr)
            self._on_schedule(schedule)
        elif raw["type"] == "mark":
            self._heartbeat(addr)
            self._on_mark()

    def _heartbeat(self, addr: tuple[str, int]) -> None:
        """Answer the proxy's control socket with a liveness heartbeat."""
        if self._transport is None or self._transport.is_closing():
            return
        try:
            self._transport.sendto(
                encode_heartbeat(self.client_id, self._last_seq), addr
            )
            self.heartbeats_sent += 1
        except OSError:  # pragma: no cover - transient socket issue
            pass

    def _on_schedule(self, schedule: RuntimeSchedule) -> None:
        self.schedules_heard += 1
        self.obs.inc("client.schedules_heard", client=self.client_id)
        self.wnic.wake()
        loop = asyncio.get_running_loop()
        slot = schedule.slot_for(self.client_id)
        arrival = loop.time()
        if self._wake_handle is not None:
            self._wake_handle.cancel()
        if slot is not None and slot.offset_s > 0.004:
            # Sleep until the burst rendezvous point (adaptive anchor:
            # arrival time plus the schedule's relative offset).
            self.wnic.sleep()
            self._wake_handle = loop.call_at(
                arrival + slot.offset_s - self.early_s, self.wnic.wake
            )
        elif slot is None:
            # No traffic: sleep until the next schedule.
            self.wnic.sleep()
            self._wake_handle = loop.call_at(
                arrival + schedule.interval_s - self.early_s, self.wnic.wake
            )

    def _on_mark(self) -> None:
        self.marks_heard += 1
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None
        # Burst over: doze until the next schedule datagram. (The
        # virtual card still "hears" it — the sockets stay open; the
        # sleep/wake log only drives the energy estimate.)
        self.wnic.sleep()

    # -- data path --------------------------------------------------------------

    async def fetch(
        self, proxy_host: str, proxy_port: int, origin: tuple[str, int],
        request: bytes, expect_bytes: int, timeout_s: float = 30.0,
    ) -> bytes:
        """Open a proxied connection and read ``expect_bytes`` back.

        Raises :class:`OverloadError` when the proxy sheds the
        connection at admission, and :class:`ProxyProtocolError` for
        any other refusal (bad handshake, unreachable origin).
        """
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(proxy_host, proxy_port),
            timeout=timeout_s,
        )
        try:
            header = (
                f"CONNECT {origin[0]} {origin[1]} {self.client_id} "
                f"{self.control_port}\n"
            ).encode()
            writer.write(header + request)
            await asyncio.wait_for(writer.drain(), timeout=timeout_s)
            status = await asyncio.wait_for(
                reader.readline(), timeout=timeout_s
            )
            refusal = decode_status_line(status)
            if refusal == "overloaded":
                raise OverloadError("proxy refused admission: overloaded")
            if refusal is not None:
                raise ProxyProtocolError(f"proxy refused connect: {refusal}")
            received = bytearray()
            while len(received) < expect_bytes:
                chunk = await asyncio.wait_for(
                    reader.read(65536), timeout=timeout_s
                )
                if not chunk:
                    break
                received.extend(chunk)
        finally:
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), timeout=timeout_s)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass  # peer reset first; the socket is closed regardless
        return bytes(received)


class _ControlProtocol(asyncio.DatagramProtocol):
    def __init__(self, client: AsyncPowerClient) -> None:
        self.client = client

    def datagram_received(self, data: bytes, addr: Any) -> None:
        self.client._on_datagram(data, addr)
