"""The live power-aware client shim.

A real deployment would transition actual WNIC power states; on a
development box the shim keeps a :class:`VirtualWnic` — a timestamped
sleep/awake log driven by exactly the schedule/burst/mark events the
paper's daemon reacts to. The log feeds the same energy model as the
simulator, giving a wall-clock estimate of what the card *would* have
saved.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Optional

from repro.errors import SchedulingError
from repro.runtime.wire import decode_control, RuntimeSchedule
from repro.wnic.power import WAVELAN_2_4GHZ, PowerModel


class VirtualWnic:
    """A wall-clock sleep/awake transition log."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self.epoch = clock()
        self.transitions: list[tuple[float, str]] = [(0.0, "idle")]
        self.wake_count = 0

    def _now(self) -> float:
        return self._clock() - self.epoch

    @property
    def is_awake(self) -> bool:
        """True while the virtual card is in a high-power state."""
        return self.transitions[-1][1] != "sleep"

    def sleep(self) -> None:
        """Log a transition to the low-power state (idempotent)."""
        if self.is_awake:
            self.transitions.append((self._now(), "sleep"))

    def wake(self) -> None:
        """Log a transition to the high-power state (idempotent)."""
        if not self.is_awake:
            self.wake_count += 1
            self.transitions.append((self._now(), "idle"))

    def awake_time(self, until: Optional[float] = None) -> float:
        """Total awake seconds since the epoch."""
        end = until if until is not None else self._now()
        total = 0.0
        for (t0, state), (t1, _s1) in zip(
            self.transitions, self.transitions[1:] + [(end, "end")]
        ):
            if state != "sleep":
                total += max(0.0, min(t1, end) - t0)
        return total

    def estimated_savings_pct(
        self, power: PowerModel = WAVELAN_2_4GHZ, until: Optional[float] = None
    ) -> float:
        """Energy saved vs an always-idle card (receive time ignored —
        a coarse wall-clock estimate, not the simulator's accounting)."""
        end = until if until is not None else self._now()
        if end <= 0:
            return 0.0
        awake = self.awake_time(end)
        energy = (
            awake * power.idle_w
            + (end - awake) * power.sleep_w
            + self.wake_count * power.wake_penalty_j
        )
        return 100.0 * (1.0 - energy / (end * power.idle_w))


class AsyncPowerClient:
    """Listens for schedules/marks and drives the virtual WNIC."""

    def __init__(
        self,
        client_id: str,
        early_s: float = 0.006,
        wnic: Optional[VirtualWnic] = None,
    ) -> None:
        self.client_id = client_id
        self.early_s = early_s
        self.wnic = wnic or VirtualWnic()
        self.control_port: Optional[int] = None
        self.schedules_heard = 0
        self.marks_heard = 0
        self._transport = None
        self._task: Optional[asyncio.Task] = None
        self._wake_handle: Optional[asyncio.TimerHandle] = None

    async def start(self) -> int:
        """Bind the UDP control socket; returns the control port."""
        loop = asyncio.get_running_loop()
        self._transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _ControlProtocol(self),
            local_addr=("127.0.0.1", 0),
        )
        self.control_port = self._transport.get_extra_info("sockname")[1]
        return self.control_port

    def stop(self) -> None:
        """Close the control socket and cancel pending wake timers."""
        if self._wake_handle is not None:
            self._wake_handle.cancel()
        if self._transport is not None:
            self._transport.close()

    # -- control events ---------------------------------------------------------

    def _on_datagram(self, payload: bytes) -> None:
        try:
            raw = decode_control(payload)
            schedule = (
                RuntimeSchedule.decode(payload)
                if raw["type"] == "schedule"
                else None
            )
        except SchedulingError:
            # Anything on the network can reach this socket; hostile or
            # truncated datagrams must never take the daemon down.
            return
        if schedule is not None:
            self._on_schedule(schedule)
        elif raw["type"] == "mark":
            self._on_mark()

    def _on_schedule(self, schedule: RuntimeSchedule) -> None:
        self.schedules_heard += 1
        self.wnic.wake()
        loop = asyncio.get_running_loop()
        slot = schedule.slot_for(self.client_id)
        arrival = loop.time()
        if self._wake_handle is not None:
            self._wake_handle.cancel()
        if slot is not None and slot.offset_s > 0.004:
            # Sleep until the burst rendezvous point (adaptive anchor:
            # arrival time plus the schedule's relative offset).
            self.wnic.sleep()
            self._wake_handle = loop.call_at(
                arrival + slot.offset_s - self.early_s, self.wnic.wake
            )
        elif slot is None:
            # No traffic: sleep until the next schedule.
            self.wnic.sleep()
            self._wake_handle = loop.call_at(
                arrival + schedule.interval_s - self.early_s, self.wnic.wake
            )

    def _on_mark(self) -> None:
        self.marks_heard += 1
        if self._wake_handle is not None:
            self._wake_handle.cancel()
            self._wake_handle = None
        # Burst over: doze until the next schedule datagram. (The
        # virtual card still "hears" it — the sockets stay open; the
        # sleep/wake log only drives the energy estimate.)
        self.wnic.sleep()

    # -- data path --------------------------------------------------------------

    async def fetch(
        self, proxy_host: str, proxy_port: int, origin: tuple[str, int],
        request: bytes, expect_bytes: int, timeout_s: float = 30.0,
    ) -> bytes:
        """Open a proxied connection and read ``expect_bytes`` back."""
        reader, writer = await asyncio.open_connection(proxy_host, proxy_port)
        header = (
            f"CONNECT {origin[0]} {origin[1]} {self.client_id} "
            f"{self.control_port}\n"
        ).encode()
        writer.write(header + request)
        await writer.drain()
        received = bytearray()
        try:
            while len(received) < expect_bytes:
                chunk = await asyncio.wait_for(
                    reader.read(65536), timeout=timeout_s
                )
                if not chunk:
                    break
                received.extend(chunk)
        finally:
            writer.close()
        return bytes(received)


class _ControlProtocol(asyncio.DatagramProtocol):
    def __init__(self, client: AsyncPowerClient) -> None:
        self.client = client

    def datagram_received(self, data: bytes, addr) -> None:
        self.client._on_datagram(data)
