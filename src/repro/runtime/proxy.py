"""The supervised asyncio transparent proxy.

Clients connect to the proxy's TCP port and send one header line::

    CONNECT <host> <port> <client-id> <control-port>\\n

The proxy answers with a status line (``OK`` or ``ERR <reason>``),
dials the origin server, relays the upstream direction immediately, and
buffers the downstream direction into the client's queue. A scheduler
task broadcasts a schedule datagram to every registered client's UDP
control port each burst interval, then releases each client's buffered
bytes at its rendezvous point, ending the burst with a mark datagram.

This is the paper's §3.2 design with the kernel pieces (bridge, IPQ,
TOS marking) replaced by the userspace substitutions listed in
:mod:`repro.runtime` — production-hardened:

* **Backpressure** — per-client queues are bounded by high/low byte
  watermarks (plus a global cap): past the high watermark the origin
  read pauses, so memory stays bounded and TCP pushes back on the
  origin instead of the proxy buffering without limit.
* **Admission control** — connection/client/byte limits are enforced at
  the CONNECT handshake with an explicit ``ERR overloaded`` status.
* **Connection lifecycle** — origin dials have timeouts and bounded
  exponential-backoff retries, relays have idle timeouts, and a
  liveness reaper mirrors the simulator's slot reclamation: a client
  whose uplink (TCP bytes or control heartbeats) goes silent first
  loses its burst slot, then is evicted outright.
* **Supervision** — the scheduler and reaper run under a
  :class:`~repro.runtime.supervisor.TaskSupervisor` that restarts them
  on unexpected exceptions; a vanished client can never halt
  scheduling for the survivors, and ``stop()`` drains writers and
  leaves zero orphaned tasks or sockets.
* **Observability** — the proxy records through :class:`repro.obs`
  under the *same* instrument names as the simulator
  (``scheduler.queue_bytes``, ``scheduler.slot_lateness_s``,
  ``proxy.schedules_broadcast``, ``proxy.bursts``, ``drops``, ...), so
  live-vs-sim metric diffs line up name-for-name.
"""

from __future__ import annotations

import asyncio
import logging
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError, SchedulingError, SocketError
from repro.obs import BYTES_BUCKETS, NULL_RECORDER, Recorder, SECONDS_BUCKETS
from repro.runtime.supervisor import TaskSupervisor
from repro.runtime.wire import (
    STATUS_OK,
    RuntimeSchedule,
    RuntimeSlot,
    decode_heartbeat,
    encode_mark,
    encode_status_error,
)

log = logging.getLogger("repro.runtime")

#: Upper bound on one relayed read.
CHUNK = 64 * 1024

#: Control-datagram kinds handed to the chaos filter.
KIND_SCHEDULE = "schedule"
KIND_MARK = "mark"


@dataclass
class AsyncProxyConfig:
    """Knobs of the live proxy."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read back from .port
    burst_interval_s: float = 0.1
    #: Estimated drain rate used to size slots (bytes/second).
    drain_rate_bps: float = 12_500_000.0
    schedule_guard_s: float = 0.002
    slot_gap_s: float = 0.001

    # -- admission / backpressure -----------------------------------------
    #: Hard cap on simultaneously registered clients.
    max_clients: int = 256
    #: Hard cap on simultaneously open proxied connections.
    max_connections: int = 1024
    #: Per-client queue high watermark: past this the origin read pauses.
    queue_high_bytes: int = 2 * 1024 * 1024
    #: Per-client low watermark: reads resume once the queue drains here.
    queue_low_bytes: int = 512 * 1024
    #: Global buffered-byte cap across all clients (admission + pause).
    max_buffered_bytes: int = 64 * 1024 * 1024

    # -- connection lifecycle ---------------------------------------------
    #: CONNECT header must arrive within this window.
    handshake_timeout_s: float = 5.0
    #: One origin dial attempt may take at most this long.
    dial_timeout_s: float = 2.0
    #: Extra dial attempts after the first failure.
    dial_retries: int = 2
    #: First retry backoff; doubles per attempt up to the max.
    dial_backoff_base_s: float = 0.05
    dial_backoff_max_s: float = 1.0
    #: A relay direction idle this long is considered finished.
    idle_timeout_s: float = 30.0

    # -- liveness ----------------------------------------------------------
    #: Uplink silence before a client's burst slot is reclaimed.
    silence_timeout_s: float = 2.0
    #: Uplink silence before the client is evicted outright.
    evict_timeout_s: float = 6.0
    #: Reaper poll interval.
    reap_interval_s: float = 0.25

    # -- supervision -------------------------------------------------------
    #: Scheduler/reaper restart backoff after an unexpected crash.
    restart_backoff_s: float = 0.05
    #: Bound on writer drain time during stop().
    drain_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_low_bytes > self.queue_high_bytes:
            raise ConfigurationError(
                f"queue_low_bytes {self.queue_low_bytes} must not exceed "
                f"queue_high_bytes {self.queue_high_bytes}"
            )
        if self.evict_timeout_s < self.silence_timeout_s:
            raise ConfigurationError(
                f"evict_timeout_s {self.evict_timeout_s} must be >= "
                f"silence_timeout_s {self.silence_timeout_s}"
            )


class _Connection:
    """One proxied split connection (client side + origin side)."""

    __slots__ = (
        "state", "client_writer", "origin_writer", "tasks",
        "queued_chunks", "downstream_done", "upstream_done", "closed",
    )

    def __init__(
        self,
        state: "_ClientState",
        client_writer: asyncio.StreamWriter,
        origin_writer: asyncio.StreamWriter,
    ) -> None:
        self.state = state
        self.client_writer = client_writer
        self.origin_writer = origin_writer
        self.tasks: tuple[asyncio.Task, ...] = ()
        self.queued_chunks = 0
        self.downstream_done = False
        self.upstream_done = False
        self.closed = False


class _ClientState:
    """Per-client registration, liveness, and bounded downstream queue."""

    __slots__ = (
        "client_id", "control_addr", "queue", "bytes_pending", "bytes_sent",
        "bursts", "peak_pending", "high", "low", "last_uplink", "silenced",
        "connections", "_writable",
    )

    def __init__(
        self,
        client_id: str,
        control_addr: tuple[str, int],
        high: int,
        low: int,
        now: float,
    ) -> None:
        self.client_id = client_id
        self.control_addr = control_addr
        #: FIFO of (connection, bytes) chunks pending transmission.
        self.queue: deque[tuple[_Connection, bytes]] = deque()
        self.bytes_pending = 0
        self.bytes_sent = 0
        self.bursts = 0
        self.peak_pending = 0
        self.high = high
        self.low = low
        self.last_uplink = now
        self.silenced = False
        self.connections = 0
        self._writable = asyncio.Event()
        self._writable.set()

    def push(self, conn: _Connection, data: bytes) -> None:
        self.queue.append((conn, data))
        conn.queued_chunks += 1
        self.bytes_pending += len(data)
        if self.bytes_pending > self.peak_pending:
            self.peak_pending = self.bytes_pending
        if self.bytes_pending >= self.high:
            self._writable.clear()

    def pop_all(self) -> list[tuple[_Connection, bytes]]:
        chunks = list(self.queue)
        self.queue.clear()
        self.bytes_pending = 0
        self._writable.set()
        return chunks

    async def wait_writable(self) -> None:
        """Backpressure point: origin reads park here above the high
        watermark and resume once a burst drains the queue."""
        await self._writable.wait()

    def release(self) -> None:
        """Unblock any parked reader (eviction/teardown path)."""
        self._writable.set()


class AsyncProxy:
    """The live scheduling proxy."""

    def __init__(
        self,
        config: Optional[AsyncProxyConfig] = None,
        obs: Recorder = NULL_RECORDER,
    ) -> None:
        self.config = config or AsyncProxyConfig()
        self.obs = obs
        self.port: Optional[int] = None
        self.control_port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._control: Optional[asyncio.DatagramTransport] = None
        self._clients: dict[str, _ClientState] = {}
        self._connections: set[_Connection] = set()
        self._handler_tasks: set[asyncio.Task] = set()
        self._supervisor = TaskSupervisor(
            restart_backoff_s=self.config.restart_backoff_s,
            on_restart=self._on_service_restart,
        )
        #: Optional chaos hook: ``filter(payload, addr, kind) -> deliver?``
        self.control_filter: Optional[
            Callable[[bytes, tuple[str, int], str], bool]
        ] = None

        # -- counters / telemetry -----------------------------------------
        self.schedules_sent = 0
        self.connections_split = 0
        self.connections_refused = 0
        self.evictions = 0
        self.slots_reclaimed = 0
        self.slots_restored = 0
        self.scheduler_restarts = 0
        self.peak_buffered_bytes = 0
        #: Recent schedule-broadcast timestamps (loop clock) for jitter.
        self.broadcast_times: deque[float] = deque(maxlen=4096)

        self._buffered_bytes = 0
        self._global_writable = asyncio.Event()
        self._global_writable.set()
        self._seq = 0
        self._planned_srp: Optional[float] = None
        self._epoch = 0.0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener + control socket; start supervised services."""
        if self._server is not None:
            raise ConfigurationError("proxy already started")
        loop = asyncio.get_running_loop()
        self._epoch = loop.time()
        self._control, _protocol = await loop.create_datagram_endpoint(
            lambda: _ProxyControlProtocol(self),
            local_addr=(self.config.host, 0),
        )
        self.control_port = self._control.get_extra_info("sockname")[1]
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._supervisor.supervise("scheduler", self._scheduler)
        self._supervisor.supervise("reaper", self._reaper)

    async def stop(self) -> None:
        """Tear everything down; afterwards no owned task or socket
        remains open (the teardown tests assert exactly this)."""
        if self._server is not None:
            self._server.close()
        await self._supervisor.stop()
        handlers = list(self._handler_tasks)
        for task in handlers:
            task.cancel()
        for task in handlers:
            try:
                await task
            except asyncio.CancelledError:  # repro: noqa[ASY005] -- stop() cancelled this handler itself one line up; absorbing the echo is the reap
                pass  # expected teardown outcome
            except Exception as exc:
                log.debug("handler raised during teardown: %r", exc)
        self._handler_tasks.clear()
        for conn in list(self._connections):
            await self._close_conn_writers(conn)
        self._connections.clear()
        for state in self._clients.values():
            state.release()
        self._clients.clear()
        self._buffered_bytes = 0
        self._global_writable.set()
        if self._server is not None:
            # Not a peer await: close() already ran and every handler
            # task was cancelled and awaited above, so this resolves
            # locally without waiting on any remote socket.
            await self._server.wait_closed()  # repro: noqa[ASY003] -- local bookkeeping after close(); no peer can wedge it
            self._server = None
        if self._control is not None:
            self._control.close()
            self._control = None

    async def _close_conn_writers(self, conn: _Connection) -> None:
        conn.closed = True
        for writer in (conn.client_writer, conn.origin_writer):
            if writer.is_closing():
                continue
            writer.close()
            try:
                await asyncio.wait_for(
                    writer.wait_closed(), self.config.drain_timeout_s
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass  # peer gone or wedged; transport is closed regardless

    def _on_service_restart(self, name: str, exc: BaseException) -> None:
        if name == "scheduler":
            self.scheduler_restarts += 1
        self.obs.inc("runtime.service_restarts", service=name)

    # -- time ----------------------------------------------------------------

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    def _rel(self, t: float) -> float:
        """Proxy-relative time used for obs events (starts at 0)."""
        return t - self._epoch

    # -- connection handling -------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        try:
            await self._handshake(reader, writer)
        except asyncio.CancelledError:  # repro: noqa[ASY005] -- stop() awaits this task right after cancelling it; re-raising would spray the loop handler (see below)
            # Teardown mid-handshake: the accepted socket is not yet
            # owned by a _Connection, so close it here. The cancellation
            # is absorbed, not re-raised: stop() awaits this task right
            # after cancelling it, and asyncio's streams done-callback
            # would call .exception() on a still-cancelled task and
            # spray the loop exception handler.
            if not writer.is_closing():
                writer.close()
        finally:
            if task is not None:
                self._handler_tasks.discard(task)

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            header = await asyncio.wait_for(
                reader.readline(), timeout=self.config.handshake_timeout_s
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            await self._refuse(writer, "bad-connect", count=False)
            return
        parsed = self._parse_connect(header)
        if parsed is None:
            self.obs.inc("drops", reason="bad-connect")
            await self._refuse(writer, "bad-connect")
            return
        host, port, client_id, control_port = parsed
        refusal = self._admission_refusal(client_id)
        if refusal is not None:
            self.obs.inc("drops", reason="overload")
            await self._refuse(writer, refusal)
            return
        try:
            upstream_reader, upstream_writer = await self._dial_origin(
                host, port
            )
        except SocketError:
            # Ghost-client fix: nothing was registered yet, so a failed
            # dial leaves no phantom registration behind.
            self.obs.inc("drops", reason="origin-unreachable")
            await self._refuse(writer, "origin-unreachable")
            return
        state = self._register(client_id, control_port)
        state.connections += 1
        self.connections_split += 1
        conn = _Connection(state, writer, upstream_writer)
        self._connections.add(conn)
        try:
            writer.write(STATUS_OK)
            await asyncio.wait_for(
                writer.drain(), self.config.drain_timeout_s
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            self._abort_conn(conn, "client-reset")
            return
        conn.tasks = (
            self._supervisor.spawn(
                self._relay_upstream(conn, reader),
                name=f"up:{client_id}",
            ),
            self._supervisor.spawn(
                self._buffer_downstream(conn, upstream_reader),
                name=f"down:{client_id}",
            ),
        )

    @staticmethod
    def _parse_connect(
        header: bytes,
    ) -> Optional[tuple[str, int, str, int]]:
        parts = header.decode(errors="replace").split()
        if len(parts) != 5 or parts[0] != "CONNECT":
            return None
        _, host, port_text, client_id, control_text = parts
        try:
            port = int(port_text)
            control_port = int(control_text)
        except ValueError:
            return None
        if not (0 < port < 65536 and 0 < control_port < 65536):
            return None
        if not client_id:
            return None
        return host, port, client_id, control_port

    def _admission_refusal(self, client_id: str) -> Optional[str]:
        """The refusal reason, or None when the connection is admitted."""
        config = self.config
        if len(self._connections) >= config.max_connections:
            return "overloaded"
        if (
            client_id not in self._clients
            and len(self._clients) >= config.max_clients
        ):
            return "overloaded"
        if self._buffered_bytes >= config.max_buffered_bytes:
            return "overloaded"
        return None

    async def _refuse(
        self, writer: asyncio.StreamWriter, reason: str, count: bool = True
    ) -> None:
        if count:
            self.connections_refused += 1
        try:
            writer.write(encode_status_error(reason))
            await asyncio.wait_for(
                writer.drain(), self.config.drain_timeout_s
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # the peer is already gone; nothing to tell it
        writer.close()
        try:
            await asyncio.wait_for(
                writer.wait_closed(), self.config.drain_timeout_s
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass  # refusals are best-effort; the transport is closed

    async def _dial_origin(
        self, host: str, port: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Dial the origin with a timeout and bounded backoff retries."""
        config = self.config
        backoff = config.dial_backoff_base_s
        last: Optional[BaseException] = None
        for attempt in range(config.dial_retries + 1):
            if attempt:
                self.obs.inc("runtime.dial_retries")
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, config.dial_backoff_max_s)
            try:
                return await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    timeout=config.dial_timeout_s,
                )
            except (OSError, asyncio.TimeoutError) as exc:
                last = exc
        raise SocketError(
            f"origin dial {host}:{port} failed after "
            f"{config.dial_retries + 1} attempts: {last!r}"
        )

    def _register(self, client_id: str, control_port: int) -> _ClientState:
        state = self._clients.get(client_id)
        if state is None:
            state = _ClientState(
                client_id,
                (self.config.host, control_port),
                high=self.config.queue_high_bytes,
                low=self.config.queue_low_bytes,
                now=self._now(),
            )
            self._clients[client_id] = state
        else:
            # A reconnecting client may have moved its control socket.
            state.control_addr = (self.config.host, control_port)
        self._touch(state)
        return state

    def _touch(self, state: _ClientState) -> None:
        """Record uplink liveness (TCP bytes or a control heartbeat)."""
        state.last_uplink = self._now()
        if state.silenced:
            state.silenced = False
            self.slots_restored += 1
            self.obs.inc(
                "scheduler.slots_restored", client=state.client_id
            )
            self.obs.event(
                self._rel(state.last_uplink), "scheduler.restore",
                client=state.client_id,
            )

    # -- relays ----------------------------------------------------------------

    async def _relay_upstream(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> None:
        """Client → origin bytes flow immediately (requests are tiny)."""
        try:
            while True:
                try:
                    data = await asyncio.wait_for(
                        reader.read(CHUNK), timeout=self.config.idle_timeout_s
                    )
                except asyncio.TimeoutError:
                    break  # idle uplink: treat as finished
                if not data:
                    break
                self._touch(conn.state)
                conn.origin_writer.write(data)
                try:
                    await asyncio.wait_for(
                        conn.origin_writer.drain(),
                        timeout=self.config.idle_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break  # origin stopped consuming; treat as finished
        except (ConnectionError, OSError):
            pass  # either side reset; the downstream relay cleans up
        finally:
            conn.upstream_done = True
            if not conn.closed and not conn.origin_writer.is_closing():
                # Half-close toward the origin so it still may respond.
                if conn.origin_writer.can_write_eof():
                    try:
                        conn.origin_writer.write_eof()
                    except (ConnectionError, OSError, RuntimeError):
                        pass  # already reset; downstream relay will notice
            self._maybe_finish(conn)

    async def _buffer_downstream(
        self, conn: _Connection, upstream_reader: asyncio.StreamReader
    ) -> None:
        """Origin → client bytes are buffered for the next burst,
        bounded by the per-client and global watermarks."""
        state = conn.state
        try:
            while True:
                await state.wait_writable()
                await self._global_writable.wait()
                if conn.closed:
                    break
                try:
                    data = await asyncio.wait_for(
                        upstream_reader.read(CHUNK),
                        timeout=self.config.idle_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break  # idle origin: nothing more to buffer
                if not data:
                    break
                state.push(conn, data)
                self._account_push(len(data))
        except (ConnectionError, OSError):
            pass  # origin reset; deliver whatever was buffered
        finally:
            conn.downstream_done = True
            self._maybe_finish(conn)

    def _account_push(self, nbytes: int) -> None:
        self._buffered_bytes += nbytes
        if self._buffered_bytes > self.peak_buffered_bytes:
            self.peak_buffered_bytes = self._buffered_bytes
        if self._buffered_bytes >= self.config.max_buffered_bytes:
            self._global_writable.clear()

    def _account_pop(self, nbytes: int) -> None:
        self._buffered_bytes -= nbytes
        if self._buffered_bytes < self.config.max_buffered_bytes:
            self._global_writable.set()

    def _maybe_finish(self, conn: _Connection) -> None:
        """Close a connection once its buffered bytes are delivered."""
        if conn.closed:
            return
        if not conn.downstream_done or conn.queued_chunks > 0:
            return
        conn.closed = True
        self._connections.discard(conn)
        conn.state.connections = max(0, conn.state.connections - 1)
        for writer in (conn.client_writer, conn.origin_writer):
            if not writer.is_closing():
                writer.close()

    def _abort_conn(self, conn: _Connection, reason: str) -> None:
        """Hard-stop a connection (reset, overflow, eviction)."""
        if conn.closed:
            return
        conn.closed = True
        self._connections.discard(conn)
        conn.state.connections = max(0, conn.state.connections - 1)
        self.obs.inc("drops", reason=reason)
        for task in conn.tasks:
            if task is not asyncio.current_task():
                task.cancel()
        for writer in (conn.client_writer, conn.origin_writer):
            transport = writer.transport
            if transport is not None:
                transport.abort()

    # -- liveness --------------------------------------------------------------

    async def _reaper(self) -> None:
        """Reclaim slots of silent clients; evict the long-dead ones."""
        config = self.config
        while True:
            await asyncio.sleep(config.reap_interval_s)
            now = self._now()
            for client_id in list(self._clients):
                state = self._clients[client_id]
                silent_s = now - state.last_uplink
                if (
                    not state.silenced
                    and silent_s > config.silence_timeout_s
                ):
                    state.silenced = True
                    self.slots_reclaimed += 1
                    self.obs.inc(
                        "scheduler.slots_reclaimed", client=client_id
                    )
                    self.obs.event(
                        self._rel(now), "scheduler.reclaim",
                        client=client_id, silent_s=silent_s,
                    )
                if silent_s > config.evict_timeout_s:
                    self._evict(client_id, state, silent_s)

    def _evict(
        self, client_id: str, state: _ClientState, silent_s: float
    ) -> None:
        """Crash-proof slot release: drop the registration, abort its
        connections, and discard its buffered bytes."""
        del self._clients[client_id]
        self.evictions += 1
        dropped = state.pop_all()
        for conn, data in dropped:
            conn.queued_chunks -= 1
            self._account_pop(len(data))
        if dropped:
            self.obs.inc("drops", len(dropped), reason="evicted")
        for conn in list(self._connections):
            if conn.state is state:
                self._abort_conn(conn, "evicted")
        state.release()
        self.obs.inc("runtime.evictions", client=client_id)
        self.obs.event(
            self._rel(self._now()), "runtime.evict",
            client=client_id, silent_s=silent_s,
        )

    # -- scheduling ------------------------------------------------------------

    async def _scheduler(self) -> None:
        """One supervised scheduling loop iteration per burst interval."""
        interval = self.config.burst_interval_s
        while True:
            srp = self._now()
            if self._planned_srp is not None:
                self.obs.observe(
                    "scheduler.srp_lateness_s",
                    max(0.0, srp - self._planned_srp),
                    buckets=SECONDS_BUCKETS,
                )
            schedule = self._build_schedule(self._seq, srp)
            self._broadcast(schedule)
            self.broadcast_times.append(srp)
            self.schedules_sent += 1
            self._seq += 1
            self._planned_srp = srp + interval
            self.obs.inc("proxy.schedules_broadcast")
            self.obs.span(
                self._rel(srp), self._rel(srp + interval), "interval",
                "proxy", seq=schedule.seq, slots=len(schedule.slots),
            )
            for slot in schedule.slots:
                target = srp + slot.offset_s
                delay = target - self._now()
                if delay > 0:
                    await asyncio.sleep(delay)
                # Crash-window fix: the client may have vanished between
                # _build_schedule and its burst; skip it, never KeyError.
                state = self._clients.get(slot.client_id)
                if state is None:
                    self.obs.inc("drops", reason="vanished")
                    continue
                self.obs.observe(
                    "scheduler.slot_lateness_s",
                    max(0.0, self._now() - target),
                    buckets=SECONDS_BUCKETS,
                    client=slot.client_id,
                )
                await self._burst(state, self._seq)
            remaining = srp + interval - self._now()
            if remaining > 0:
                await asyncio.sleep(remaining)

    def _build_schedule(self, seq: int, srp: float) -> RuntimeSchedule:
        config = self.config
        slots = []
        cursor = config.schedule_guard_s
        for client_id in sorted(self._clients):
            state = self._clients[client_id]
            self.obs.observe(
                "scheduler.queue_bytes",
                state.bytes_pending,
                buckets=BYTES_BUCKETS,
                client=client_id,
            )
            if state.bytes_pending <= 0 or state.silenced:
                continue
            duration = state.bytes_pending * 8.0 / config.drain_rate_bps
            slots.append(
                RuntimeSlot(
                    client_id=client_id,
                    offset_s=cursor,
                    duration_s=duration,
                    nbytes=state.bytes_pending,
                )
            )
            cursor += duration + config.slot_gap_s
        return RuntimeSchedule(
            seq=seq, srp=srp, interval_s=config.burst_interval_s,
            slots=tuple(slots),
        )

    def _broadcast(self, schedule: RuntimeSchedule) -> None:
        payload = schedule.encode()
        for state in self._clients.values():
            self._send_control(payload, state.control_addr, KIND_SCHEDULE)

    def _send_control(
        self, payload: bytes, addr: tuple[str, int], kind: str
    ) -> bool:
        """Send one control datagram through the chaos filter hook."""
        if self.control_filter is not None and not self.control_filter(
            payload, addr, kind
        ):
            self.obs.inc("drops", reason=f"chaos-{kind}")
            return False
        if self._control is None:
            return False
        try:
            self._control.sendto(payload, addr)
        except OSError:  # pragma: no cover - transient socket issue
            return False
        return True

    async def _burst(self, state: _ClientState, seq: int) -> None:
        chunks = state.pop_all()
        sent = 0
        touched: list[_Connection] = []
        for conn, data in chunks:
            conn.queued_chunks -= 1
            self._account_pop(len(data))
            touched.append(conn)
            if conn.closed or conn.client_writer.is_closing():
                self.obs.inc("drops", reason="conn-closed")
                continue
            conn.client_writer.write(data)
            try:
                # Bounded drain: _burst runs inside the scheduler
                # coroutine, so one wedged client receiver must not
                # stall scheduling for every other client.
                await asyncio.wait_for(
                    conn.client_writer.drain(), self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                self._abort_conn(conn, "client-stalled")
                continue
            except (ConnectionError, OSError):
                self._abort_conn(conn, "client-reset")
                continue
            sent += len(data)
            state.bytes_sent += len(data)
        state.bursts += 1
        self.obs.inc("proxy.bursts", client=state.client_id)
        self.obs.inc("proxy.burst_bytes", sent, client=state.client_id)
        self.obs.gauge_set(
            "runtime.queue_peak_bytes", state.peak_pending,
            client=state.client_id,
        )
        for conn in touched:
            self._maybe_finish(conn)
        self._send_control(
            encode_mark(state.client_id, seq), state.control_addr, KIND_MARK
        )

    # -- control plane ---------------------------------------------------------

    def _on_control_datagram(
        self, payload: bytes, addr: tuple[str, int]
    ) -> None:
        """Client → proxy control traffic (liveness heartbeats)."""
        try:
            client_id, _seq = decode_heartbeat(payload)
        except SchedulingError:
            # Anything can reach this socket; never let garbage crash
            # the control plane.
            self.obs.inc("drops", reason="bad-control")
            return
        state = self._clients.get(client_id)
        if state is not None:
            self._touch(state)


class _ProxyControlProtocol(asyncio.DatagramProtocol):
    def __init__(self, proxy: AsyncProxy) -> None:
        self.proxy = proxy

    def datagram_received(self, data: bytes, addr: Any) -> None:
        self.proxy._on_control_datagram(data, addr)
