"""The asyncio transparent proxy.

Clients connect to the proxy's TCP port and send one header line::

    CONNECT <host> <port> <client-id> <control-port>\\n

The proxy dials the origin server, relays the upstream direction
immediately, and buffers the downstream direction into the client's
queue. A scheduler task broadcasts a schedule datagram to every
registered client's UDP control port each burst interval, then releases
each client's buffered bytes at its rendezvous point, ending the burst
with a mark datagram.

This is the paper's §3.2 design with the kernel pieces (bridge, IPQ,
TOS marking) replaced by the userspace substitutions listed in
:mod:`repro.runtime`.
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.runtime.wire import RuntimeSchedule, RuntimeSlot, encode_mark

#: Upper bound on one relayed read.
CHUNK = 64 * 1024


@dataclass
class AsyncProxyConfig:
    """Knobs of the live proxy."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read back from .port
    burst_interval_s: float = 0.1
    #: Estimated drain rate used to size slots (bytes/second).
    drain_rate_bps: float = 12_500_000.0
    schedule_guard_s: float = 0.002
    slot_gap_s: float = 0.001


class _ClientState:
    """Per-client registration and buffered downstream data."""

    def __init__(self, client_id: str, control_addr: tuple[str, int]) -> None:
        self.client_id = client_id
        self.control_addr = control_addr
        #: FIFO of (writer, bytes) chunks pending transmission.
        self.queue: list[tuple[asyncio.StreamWriter, bytes]] = []
        self.bytes_pending = 0
        self.bytes_sent = 0
        self.bursts = 0

    def push(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        self.queue.append((writer, data))
        self.bytes_pending += len(data)

    def pop_all(self) -> list[tuple[asyncio.StreamWriter, bytes]]:
        chunks, self.queue = self.queue, []
        self.bytes_pending = 0
        return chunks


class AsyncProxy:
    """The live scheduling proxy."""

    def __init__(self, config: Optional[AsyncProxyConfig] = None) -> None:
        self.config = config or AsyncProxyConfig()
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: dict[str, _ClientState] = {}
        self._control_socket: Optional[socket.socket] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._relay_tasks: set[asyncio.Task] = set()
        self.schedules_sent = 0
        self.connections_split = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP listener and start the scheduler task."""
        if self._server is not None:
            raise ConfigurationError("proxy already started")
        self._control_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._control_socket.setblocking(False)
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.create_task(self._scheduler())

    async def stop(self) -> None:
        """Tear everything down."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
        for task in list(self._relay_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._control_socket is not None:
            self._control_socket.close()

    # -- connection handling ---------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            header = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = header.decode().split()
            if len(parts) != 5 or parts[0] != "CONNECT":
                writer.close()
                return
            _, host, port, client_id, control_port = parts
            state = self._clients.get(client_id)
            if state is None:
                state = _ClientState(
                    client_id, (self.config.host, int(control_port))
                )
                self._clients[client_id] = state
            upstream_reader, upstream_writer = await asyncio.open_connection(
                host, int(port)
            )
        except (OSError, asyncio.TimeoutError, ValueError):
            writer.close()
            return
        self.connections_split += 1
        relay_up = asyncio.create_task(
            self._relay_upstream(reader, upstream_writer)
        )
        relay_down = asyncio.create_task(
            self._buffer_downstream(upstream_reader, writer, state)
        )
        for task in (relay_up, relay_down):
            self._relay_tasks.add(task)
            task.add_done_callback(self._relay_tasks.discard)

    async def _relay_upstream(self, reader, upstream_writer) -> None:
        """Client → server bytes flow immediately (requests are tiny)."""
        try:
            while True:
                data = await reader.read(CHUNK)
                if not data:
                    break
                upstream_writer.write(data)
                await upstream_writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                upstream_writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    async def _buffer_downstream(self, upstream_reader, writer, state) -> None:
        """Server → client bytes are buffered for the next burst."""
        try:
            while True:
                data = await upstream_reader.read(CHUNK)
                if not data:
                    break
                state.push(writer, data)
        except (ConnectionError, asyncio.CancelledError):
            pass

    # -- scheduling --------------------------------------------------------------

    async def _scheduler(self) -> None:
        loop = asyncio.get_running_loop()
        seq = 0
        interval = self.config.burst_interval_s
        while True:
            srp = loop.time()
            schedule = self._build_schedule(seq, srp)
            self._broadcast(schedule)
            self.schedules_sent += 1
            seq += 1
            for slot in schedule.slots:
                target = srp + slot.offset_s
                delay = target - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                await self._burst(self._clients[slot.client_id], seq)
            remaining = srp + interval - loop.time()
            if remaining > 0:
                await asyncio.sleep(remaining)

    def _build_schedule(self, seq: int, srp: float) -> RuntimeSchedule:
        config = self.config
        slots = []
        cursor = config.schedule_guard_s
        for client_id in sorted(self._clients):
            state = self._clients[client_id]
            if state.bytes_pending <= 0:
                continue
            duration = state.bytes_pending * 8.0 / config.drain_rate_bps
            slots.append(
                RuntimeSlot(
                    client_id=client_id,
                    offset_s=cursor,
                    duration_s=duration,
                    nbytes=state.bytes_pending,
                )
            )
            cursor += duration + config.slot_gap_s
        return RuntimeSchedule(
            seq=seq, srp=srp, interval_s=config.burst_interval_s,
            slots=tuple(slots),
        )

    def _broadcast(self, schedule: RuntimeSchedule) -> None:
        payload = schedule.encode()
        for state in self._clients.values():
            try:
                self._control_socket.sendto(payload, state.control_addr)
            except OSError:  # pragma: no cover - transient socket issue
                pass

    async def _burst(self, state: _ClientState, seq: int) -> None:
        chunks = state.pop_all()
        for writer, data in chunks:
            if writer.is_closing():
                continue
            writer.write(data)
            try:
                await writer.drain()
            except ConnectionError:
                continue
            state.bytes_sent += len(data)
        state.bursts += 1
        try:
            self._control_socket.sendto(
                encode_mark(state.client_id, seq), state.control_addr
            )
        except OSError:  # pragma: no cover
            pass
