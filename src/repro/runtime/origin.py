"""A local speed-test origin server for demos, load tests, and chaos.

The protocol is one request line, ``GET <nbytes>\\n``, answered with
exactly that many zero bytes. Pacing is configurable: ``pace_s > 0``
streams in small chunks with sleeps (a crude CBR stream, the demo
default), ``pace_s = 0`` blasts at loopback speed (the load-test
default, so the proxy's buffering — not the origin — is the bottleneck
under test).

For chaos experiments the server is killable mid-flight:
:meth:`SpeedTestOrigin.kill` aborts every live connection and closes
the listener, and :meth:`SpeedTestOrigin.restart` rebinds on the same
port — the live analog of the fault plan's AP outage windows.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Optional

from repro.errors import ConfigurationError

log = logging.getLogger("repro.runtime")

#: A request header must arrive within this window, and a closing
#: socket must finish its handshake within it.
IDLE_TIMEOUT_S = 30.0
CLOSE_TIMEOUT_S = 1.0


class SpeedTestOrigin:
    """The killable origin byte server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        pace_s: float = 0.0,
        chunk_bytes: int = 8192,
    ) -> None:
        if chunk_bytes <= 0:
            raise ConfigurationError(
                f"chunk_bytes must be positive: {chunk_bytes!r}"
            )
        self.host = host
        self.pace_s = pace_s
        self.chunk_bytes = chunk_bytes
        self.port: Optional[int] = None
        self.requests_served = 0
        self.bytes_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()

    @property
    def alive(self) -> bool:
        """True while the listener is accepting connections."""
        return self._server is not None and self._server.is_serving()

    async def start(self) -> int:
        """Bind the listener; returns the bound port."""
        if self._server is not None:
            raise ConfigurationError("origin already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        self._writers.add(writer)
        try:
            header = await asyncio.wait_for(
                reader.readline(), timeout=IDLE_TIMEOUT_S
            )
            parts = header.decode(errors="replace").split()
            if len(parts) != 2 or parts[0] != "GET":
                return
            remaining = int(parts[1])
            self.requests_served += 1
            while remaining > 0:
                n = min(self.chunk_bytes, remaining)
                writer.write(b"\0" * n)
                # Unbounded on purpose: the proxy's watermark pause must
                # propagate here as TCP backpressure — parking this
                # coroutine until the proxy resumes reading IS the
                # flow-control design, and kill() aborts the transport,
                # which wakes the drain with ConnectionResetError.
                await writer.drain()  # repro: noqa[ASY003] -- backpressure parking is the design; kill() unwedges it via transport.abort()
                remaining -= n
                self.bytes_served += n
                if self.pace_s > 0:
                    await asyncio.sleep(self.pace_s)
        except (ConnectionError, ValueError, asyncio.TimeoutError):
            pass  # client went away, sent garbage, or never spoke
        except asyncio.CancelledError:  # repro: noqa[ASY005] -- kill() cancels handlers then stop() awaits them; asyncio's streams done-callback calls .exception() on the task, so ending cancelled would spray the loop handler
            pass
        finally:
            if task is not None:
                self._tasks.discard(task)
            self._writers.discard(writer)
            writer.close()
            try:
                await asyncio.wait_for(
                    writer.wait_closed(), timeout=CLOSE_TIMEOUT_S
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                pass  # peer already reset the connection

    def kill(self) -> None:
        """Chaos action: abort every live connection and stop listening.

        Leaves ``port`` assigned so :meth:`restart` can rebind the same
        address (proxied retries then reach the revived origin).
        """
        for task in list(self._tasks):
            task.cancel()
        for writer in list(self._writers):
            writer.transport.abort()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            self._server = None

    async def restart(self) -> int:
        """Chaos action: rebind the listener after :meth:`kill`."""
        if self._server is not None:
            raise ConfigurationError("origin still running; kill it first")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port or 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Graceful teardown: abort connections, await every handler,
        close the listener."""
        server = self._server
        tasks = list(self._tasks)
        self.kill()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:  # repro: noqa[ASY005] -- kill() cancelled these tasks one line up; absorbing the echo is the reap
                pass  # cancellation is the expected teardown outcome
        if server is not None:
            # Local bookkeeping: kill() already closed the listener and
            # every handler task was awaited above.
            await server.wait_closed()  # repro: noqa[ASY003] -- resolves locally after close(); no peer can wedge it

    # -- asyncio.AbstractServer-style compat shims ------------------------

    def close(self) -> None:
        """Alias for :meth:`kill` (drop-in for a raw asyncio server)."""
        self.kill()

    async def wait_closed(self) -> None:
        """No-op once :meth:`close`/:meth:`kill` has run."""
        return None
