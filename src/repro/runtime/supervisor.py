"""Task supervision for the live runtime.

The live proxy runs several long-lived asyncio tasks (scheduler,
liveness reaper, per-connection relays). A single unexpected exception
in any of them must never silently halt the service — the failure mode
the paper's graceful-degradation story forbids. :class:`TaskSupervisor`
owns every task the runtime spawns:

* **supervised services** (``supervise=True``) are restarted with a
  bounded backoff when they die unexpectedly, and the failure is
  counted and logged;
* **plain tasks** (connection relays) are tracked so shutdown can
  cancel and *await* every one of them — the guarantee behind the
  zero-orphaned-tasks teardown tests.

``stop()`` is idempotent and total: after it returns there is no task
owned by the supervisor still pending.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Awaitable, Callable, Coroutine, Optional

from repro.errors import ConfigurationError

log = logging.getLogger("repro.runtime")


class TaskSupervisor:
    """Owns, restarts, and reliably tears down runtime tasks."""

    def __init__(
        self,
        restart_backoff_s: float = 0.05,
        restart_backoff_max_s: float = 1.0,
        on_restart: Optional[Callable[[str, BaseException], None]] = None,
    ) -> None:
        self.restart_backoff_s = restart_backoff_s
        self.restart_backoff_max_s = restart_backoff_max_s
        self.on_restart = on_restart
        self.restarts = 0
        self.failures: list[tuple[str, BaseException]] = []
        self._services: dict[str, asyncio.Task] = {}
        self._tasks: set[asyncio.Task] = set()
        self._stopping = False

    # -- spawning ----------------------------------------------------------

    def supervise(
        self, name: str, factory: Callable[[], Awaitable[None]]
    ) -> asyncio.Task:
        """Run ``factory()`` forever, restarting it on unexpected death.

        A supervised service is expected to run until cancelled; both a
        raised exception *and* a clean return are treated as failures
        and trigger a restart (after a bounded exponential backoff).
        """
        if self._stopping:
            raise ConfigurationError(
                f"supervisor stopping; cannot start {name!r}"
            )
        if name in self._services:
            raise ConfigurationError(f"service {name!r} already supervised")
        task = asyncio.create_task(self._run_service(name, factory), name=name)
        self._services[name] = task
        return task

    def spawn(self, coro: Coroutine, name: str = "") -> asyncio.Task:
        """Track a plain (non-restarted) task until it completes."""
        task = asyncio.create_task(coro, name=name or None)
        self._tasks.add(task)
        task.add_done_callback(self._reap_task)
        return task

    def _reap_task(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            # Retrieve and record the exception so it never surfaces as
            # an "exception was never retrieved" unhandled-task report.
            self.failures.append((task.get_name(), exc))
            log.exception(
                "runtime task %r failed", task.get_name(), exc_info=exc
            )

    async def _run_service(
        self, name: str, factory: Callable[[], Awaitable[None]]
    ) -> None:
        backoff = self.restart_backoff_s
        while True:
            try:
                await factory()
                failure: BaseException = RuntimeError(
                    f"service {name!r} returned unexpectedly"
                )
                log.error("supervised service %r returned unexpectedly", name)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                failure = exc
                log.exception(
                    "supervised service %r died; restarting in %.3fs",
                    name, backoff,
                )
            self.restarts += 1
            self.failures.append((name, failure))
            if self.on_restart is not None:
                self.on_restart(name, failure)
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2.0, self.restart_backoff_max_s)

    # -- teardown ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of tasks the supervisor still owns."""
        return len(self._tasks) + sum(
            1 for t in self._services.values() if not t.done()
        )

    async def stop(self) -> None:
        """Cancel and await everything; idempotent."""
        self._stopping = True
        everything = list(self._services.values()) + list(self._tasks)
        for task in everything:
            task.cancel()
        for task in everything:
            try:
                await task
            except asyncio.CancelledError:  # repro: noqa[ASY005] -- stop() cancelled every task one loop up; absorbing the echo is the reap
                pass  # cancellation is the expected teardown outcome
            except Exception as exc:
                log.debug(
                    "task %r raised during teardown: %r",
                    task.get_name(), exc,
                )
        self._services.clear()
        self._tasks.clear()
