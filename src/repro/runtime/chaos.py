"""Wire-level chaos injection for the live runtime.

The simulator injects faults through :mod:`repro.faults`; the live
runtime reuses the *same* :class:`~repro.faults.plan.FaultPlan`
vocabulary, reinterpreted on the wall clock (seconds relative to
:meth:`ChaosShim.install`):

* ``loss_rate`` — iid loss of proxy→client control datagrams
  (schedules *and* marks), drawn from a seeded
  :class:`~repro.sim.random.RngStreams` stream so a chaos run replays
  exactly from ``(plan, seed)`` at the decision level (wall-clock
  timing still wobbles, which is the point of a live test);
* ``schedule_blackouts`` — windows in which only schedule datagrams
  die (the paper's lost-schedule degradation scenario);
* ``outages`` — windows in which *all* control datagrams die **and**
  the origin server is killed (restarted when the window closes) — the
  live analog of an AP outage;
* ``churn`` — client vanish/rejoin: the client's control socket closes
  (heartbeats stop, in-flight fetches abort) at ``leave_at`` and, with
  a ``rejoin_at``, comes back on a fresh control port.

The datagram filter installs on :attr:`AsyncProxy.control_filter`; the
time-driven actions run from :meth:`ChaosShim.drive`.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.runtime.client import AsyncPowerClient
from repro.runtime.origin import SpeedTestOrigin
from repro.runtime.proxy import KIND_SCHEDULE, AsyncProxy
from repro.sim.random import RngStreams

log = logging.getLogger("repro.runtime")


class ChaosShim:
    """Interprets a :class:`FaultPlan` against the live runtime."""

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._rng = RngStreams(seed).get("runtime.chaos")
        self._proxy: Optional[AsyncProxy] = None
        self._epoch: Optional[float] = None
        # -- counters ------------------------------------------------------
        self.dropped_random = 0
        self.dropped_blackout = 0
        self.dropped_outage = 0
        self.origin_kills = 0
        self.origin_restarts = 0
        self.client_vanishes = 0
        self.client_rejoins = 0

    # -- datagram filter ---------------------------------------------------

    def install(self, proxy: AsyncProxy) -> None:
        """Attach the datagram filter and start the chaos clock."""
        if self._proxy is not None:
            raise ConfigurationError("chaos shim already installed")
        self._proxy = proxy
        self._epoch = asyncio.get_running_loop().time()
        proxy.control_filter = self._filter

    def uninstall(self) -> None:
        """Detach the filter (the proxy keeps running fault-free)."""
        if self._proxy is not None and self._proxy.control_filter is self._filter:
            self._proxy.control_filter = None
        self._proxy = None

    def elapsed(self) -> float:
        """Seconds since :meth:`install` (the plan's time axis)."""
        if self._epoch is None:
            raise ConfigurationError("chaos shim not installed")
        return asyncio.get_running_loop().time() - self._epoch

    def _filter(
        self, payload: bytes, addr: tuple[str, int], kind: str
    ) -> bool:
        now = self.elapsed()
        for window in self.plan.outages:
            if window.contains(now):
                self.dropped_outage += 1
                return False
        if kind == KIND_SCHEDULE:
            for window in self.plan.schedule_blackouts:
                if window.contains(now):
                    self.dropped_blackout += 1
                    return False
        if self.plan.loss_rate and self._rng.random() < self.plan.loss_rate:
            self.dropped_random += 1
            return False
        return True

    # -- time-driven actions ----------------------------------------------

    def actions(
        self,
        origin: Optional[SpeedTestOrigin] = None,
        clients: Sequence[AsyncPowerClient] = (),
    ) -> list[tuple[float, str, int]]:
        """The plan's (time, action, index) list, sorted by time.

        ``index`` points into ``clients`` for churn actions and into
        ``plan.outages`` for origin kill/restart pairs.
        """
        out: list[tuple[float, str, int]] = []
        if origin is not None:
            for i, window in enumerate(self.plan.outages):
                out.append((window.start, "origin-kill", i))
                out.append((window.end, "origin-restart", i))
        for i, churn in enumerate(self.plan.churn):
            if churn.client_index >= len(clients):
                raise ConfigurationError(
                    f"churn client_index {churn.client_index} out of range "
                    f"for {len(clients)} client(s)"
                )
            out.append((churn.leave_at, "client-vanish", i))
            if churn.rejoin_at is not None:
                out.append((churn.rejoin_at, "client-rejoin", i))
        out.sort()
        return out

    async def drive(
        self,
        origin: Optional[SpeedTestOrigin] = None,
        clients: Sequence[AsyncPowerClient] = (),
    ) -> None:
        """Fire the plan's origin-kill and client-vanish actions.

        Run this as a task alongside the workload; it returns once the
        last action has fired.
        """
        for at, action, index in self.actions(origin, clients):
            delay = at - self.elapsed()
            if delay > 0:
                await asyncio.sleep(delay)
            if action == "origin-kill" and origin is not None:
                origin.kill()
                self.origin_kills += 1
                log.info("chaos: origin killed at t=%.2fs", at)
            elif action == "origin-restart" and origin is not None:
                await origin.restart()
                self.origin_restarts += 1
                log.info("chaos: origin restarted at t=%.2fs", at)
            elif action == "client-vanish":
                clients[self.plan.churn[index].client_index].stop()
                self.client_vanishes += 1
                log.info("chaos: client vanished at t=%.2fs", at)
            elif action == "client-rejoin":
                await clients[self.plan.churn[index].client_index].start()
                self.client_rejoins += 1
                log.info("chaos: client rejoined at t=%.2fs", at)

    @property
    def dropped_total(self) -> int:
        """Control datagrams the shim has eaten so far."""
        return self.dropped_random + self.dropped_blackout + self.dropped_outage
