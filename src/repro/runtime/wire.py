"""Wire format for the runtime proxy's control datagrams.

Schedules and burst-end marks travel as single JSON datagrams on each
client's UDP control socket. Timestamps are the proxy's
``loop.time()`` values; clients use only relative offsets, exactly like
the simulated adaptive delay compensation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulingError


@dataclass(frozen=True, slots=True)
class RuntimeSlot:
    """One client's burst reservation, offsets relative to the SRP."""

    client_id: str
    offset_s: float
    duration_s: float
    nbytes: int


@dataclass(frozen=True, slots=True)
class RuntimeSchedule:
    """A schedule datagram."""

    seq: int
    srp: float  # proxy clock
    interval_s: float
    slots: tuple[RuntimeSlot, ...] = ()

    def slot_for(self, client_id: str) -> Optional[RuntimeSlot]:
        """This client's reservation, or None."""
        for slot in self.slots:
            if slot.client_id == client_id:
                return slot
        return None

    def encode(self) -> bytes:
        """Serialize to a JSON datagram payload."""
        return json.dumps(
            {
                "type": "schedule",
                "seq": self.seq,
                "srp": self.srp,
                "interval_s": self.interval_s,
                "slots": [
                    {
                        "client_id": s.client_id,
                        "offset_s": s.offset_s,
                        "duration_s": s.duration_s,
                        "nbytes": s.nbytes,
                    }
                    for s in self.slots
                ],
            }
        ).encode()

    @classmethod
    def decode(cls, payload: bytes) -> "RuntimeSchedule":
        """Parse a schedule datagram; raises SchedulingError on garbage."""
        try:
            raw = json.loads(payload)
            if raw.get("type") != "schedule":
                raise SchedulingError(f"not a schedule datagram: {raw.get('type')}")
            return cls(
                seq=raw["seq"],
                srp=raw["srp"],
                interval_s=raw["interval_s"],
                slots=tuple(
                    RuntimeSlot(
                        client_id=s["client_id"],
                        offset_s=s["offset_s"],
                        duration_s=s["duration_s"],
                        nbytes=s["nbytes"],
                    )
                    for s in raw["slots"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchedulingError(f"malformed schedule datagram: {exc}") from exc


def encode_mark(client_id: str, seq: int) -> bytes:
    """The out-of-band end-of-burst mark (TOS-bit substitute)."""
    return json.dumps({"type": "mark", "client_id": client_id, "seq": seq}).encode()


def decode_control(payload: bytes) -> dict:
    """Decode any control datagram (schedule or mark)."""
    try:
        raw = json.loads(payload)
    except ValueError as exc:
        raise SchedulingError(f"bad control datagram: {exc}") from exc
    if "type" not in raw:
        raise SchedulingError("control datagram missing type")
    return raw
