"""Wire format for the runtime proxy's control datagrams.

Schedules and burst-end marks travel as single JSON datagrams on each
client's UDP control socket. Timestamps are the proxy's
``loop.time()`` values; clients use only relative offsets, exactly like
the simulated adaptive delay compensation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulingError


def _number(raw: dict, key: str, *, minimum: Optional[float] = None,
            exclusive: bool = False) -> float:
    """A required finite numeric field, with an optional lower bound."""
    value = raw.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchedulingError(f"field {key!r} must be a number, got {value!r}")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise SchedulingError(f"field {key!r} is not finite: {value!r}")
    if minimum is not None:
        if exclusive and not value > minimum:
            raise SchedulingError(f"field {key!r} must be > {minimum}")
        if not exclusive and not value >= minimum:
            raise SchedulingError(f"field {key!r} must be >= {minimum}")
    return value


def _integer(raw: dict, key: str, *, minimum: Optional[int] = None) -> int:
    """A required integer field, with an optional lower bound."""
    value = raw.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchedulingError(f"field {key!r} must be an int, got {value!r}")
    if minimum is not None and value < minimum:
        raise SchedulingError(f"field {key!r} must be >= {minimum}")
    return value


def _loads_object(payload: bytes, what: str) -> dict:
    """Parse a JSON object, rejecting scalars/arrays/garbage bytes."""
    try:
        raw = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SchedulingError(f"bad {what} datagram: {exc}") from exc
    if not isinstance(raw, dict):
        raise SchedulingError(
            f"{what} datagram must be a JSON object, got {type(raw).__name__}"
        )
    return raw


@dataclass(frozen=True, slots=True)
class RuntimeSlot:
    """One client's burst reservation, offsets relative to the SRP."""

    client_id: str
    offset_s: float
    duration_s: float
    nbytes: int


@dataclass(frozen=True, slots=True)
class RuntimeSchedule:
    """A schedule datagram."""

    seq: int
    srp: float  # proxy clock
    interval_s: float
    slots: tuple[RuntimeSlot, ...] = ()

    def slot_for(self, client_id: str) -> Optional[RuntimeSlot]:
        """This client's reservation, or None."""
        for slot in self.slots:
            if slot.client_id == client_id:
                return slot
        return None

    def encode(self) -> bytes:
        """Serialize to a JSON datagram payload."""
        return json.dumps(
            {
                "type": "schedule",
                "seq": self.seq,
                "srp": self.srp,
                "interval_s": self.interval_s,
                "slots": [
                    {
                        "client_id": s.client_id,
                        "offset_s": s.offset_s,
                        "duration_s": s.duration_s,
                        "nbytes": s.nbytes,
                    }
                    for s in self.slots
                ],
            }
        ).encode()

    @classmethod
    def decode(cls, payload: bytes) -> "RuntimeSchedule":
        """Parse a schedule datagram.

        Every failure mode — truncated bytes, non-JSON, the wrong JSON
        shape, missing or mistyped fields — raises
        :class:`SchedulingError`.  A returned schedule is always fully
        validated; there is no partial decode.
        """
        raw = _loads_object(payload, "schedule")
        if raw.get("type") != "schedule":
            raise SchedulingError(
                f"not a schedule datagram: {raw.get('type')!r}"
            )
        slots_raw = raw.get("slots", [])
        if not isinstance(slots_raw, list):
            raise SchedulingError(
                f"field 'slots' must be a list, got {type(slots_raw).__name__}"
            )
        slots = []
        for entry in slots_raw:
            if not isinstance(entry, dict):
                raise SchedulingError(
                    f"slot must be an object, got {type(entry).__name__}"
                )
            client_id = entry.get("client_id")
            if not isinstance(client_id, str) or not client_id:
                raise SchedulingError(
                    f"slot field 'client_id' must be a non-empty string, "
                    f"got {client_id!r}"
                )
            slots.append(RuntimeSlot(
                client_id=client_id,
                offset_s=_number(entry, "offset_s", minimum=0.0),
                duration_s=_number(entry, "duration_s", minimum=0.0),
                nbytes=_integer(entry, "nbytes", minimum=0),
            ))
        return cls(
            seq=_integer(raw, "seq", minimum=0),
            srp=_number(raw, "srp"),
            interval_s=_number(raw, "interval_s", minimum=0.0, exclusive=True),
            slots=tuple(slots),
        )


def encode_mark(client_id: str, seq: int) -> bytes:
    """The out-of-band end-of-burst mark (TOS-bit substitute)."""
    return json.dumps({"type": "mark", "client_id": client_id, "seq": seq}).encode()


def encode_heartbeat(client_id: str, seq: int) -> bytes:
    """A client→proxy liveness heartbeat.

    Clients answer every schedule datagram with one of these, so the
    proxy observes uplink liveness even when the TCP data path is idle
    (the live analog of the simulated proxy's passive ``last_uplink``
    bridging signal). A vanished client stops heartbeating and ages out
    of the schedule.
    """
    return json.dumps(
        {"type": "heartbeat", "client_id": client_id, "seq": seq}
    ).encode()


def decode_heartbeat(payload: bytes) -> tuple[str, int]:
    """Parse a heartbeat datagram into ``(client_id, seq)``."""
    raw = _loads_object(payload, "heartbeat")
    if raw.get("type") != "heartbeat":
        raise SchedulingError(f"not a heartbeat datagram: {raw.get('type')!r}")
    client_id = raw.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise SchedulingError(
            f"heartbeat field 'client_id' must be a non-empty string, "
            f"got {client_id!r}"
        )
    return client_id, _integer(raw, "seq", minimum=0)


# -- CONNECT status lines ----------------------------------------------------
#
# After the client's CONNECT header the proxy answers with exactly one
# status line before any relayed bytes: ``OK\n`` once the origin dial
# succeeded, or ``ERR <reason>\n`` (overloaded, bad-connect,
# origin-unreachable) right before closing. The explicit line lets a
# client distinguish "proxy shed my connection" from "origin sent
# nothing" — the admission-control contract the demo protocol lacked.

STATUS_OK = b"OK\n"


def encode_status_error(reason: str) -> bytes:
    """The refusal status line for ``reason`` (a single token)."""
    if not reason or any(c.isspace() for c in reason):
        raise SchedulingError(f"status reason must be one token: {reason!r}")
    return f"ERR {reason}\n".encode()


def decode_status_line(line: bytes) -> Optional[str]:
    """Parse a CONNECT status line.

    Returns ``None`` for success (``OK``) or the refusal reason string;
    raises :class:`SchedulingError` for anything malformed.
    """
    text = line.decode("ascii", errors="replace").strip()
    if text == "OK":
        return None
    parts = text.split()
    if len(parts) == 2 and parts[0] == "ERR":
        return parts[1]
    raise SchedulingError(f"bad CONNECT status line: {line!r}")


def decode_control(payload: bytes) -> dict:
    """Decode any control datagram (schedule or mark)."""
    raw = _loads_object(payload, "control")
    if not isinstance(raw.get("type"), str):
        raise SchedulingError("control datagram missing string 'type'")
    return raw
