"""Self-contained demo servers and a runnable end-to-end scenario.

:func:`run_demo` spins up, inside one event loop: an origin byte server,
the scheduling proxy, and N power-aware clients that each download a
file through the proxy. It returns per-client statistics including the
virtual WNIC's estimated savings — the live analog of the simulator's
experiments (with wall-clock jitter instead of modelled jitter).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.runtime.client import AsyncPowerClient
from repro.runtime.origin import SpeedTestOrigin
from repro.runtime.proxy import AsyncProxy, AsyncProxyConfig


async def start_byte_server(
    host: str = "127.0.0.1",
) -> tuple[SpeedTestOrigin, int]:
    """A paced origin byte server (see :class:`SpeedTestOrigin`).

    Kept for backward compatibility; returns ``(origin, port)`` where
    ``origin`` supports ``close()`` + ``wait_closed()`` like the old
    raw ``asyncio.AbstractServer``.
    """
    origin = SpeedTestOrigin(host=host, pace_s=0.005)
    port = await origin.start()
    return origin, port


@dataclass
class DemoClientResult:
    """What one demo client measured."""

    client_id: str
    bytes_received: int
    schedules_heard: int
    marks_heard: int
    awake_fraction: float
    estimated_savings_pct: float


async def run_demo(
    n_clients: int = 2,
    file_size: int = 200_000,
    burst_interval_s: float = 0.1,
    duration_slack_s: float = 2.0,
) -> list[DemoClientResult]:
    """Run the live proxy demo; returns per-client results."""
    origin_server, origin_port = await start_byte_server()
    proxy = AsyncProxy(AsyncProxyConfig(burst_interval_s=burst_interval_s))
    await proxy.start()
    clients = [AsyncPowerClient(f"client-{i}") for i in range(n_clients)]
    for client in clients:
        await client.start()

    async def fetch(client: AsyncPowerClient) -> bytes:
        return await client.fetch(
            "127.0.0.1", proxy.port,
            ("127.0.0.1", origin_port),
            request=f"GET {file_size}\n".encode(),
            expect_bytes=file_size,
            timeout_s=30.0,
        )

    try:
        payloads = await asyncio.wait_for(
            asyncio.gather(*(fetch(c) for c in clients)),
            timeout=60.0 + duration_slack_s,
        )
    finally:
        await proxy.stop()
        await origin_server.stop()

    results = []
    for client, payload in zip(clients, payloads):
        elapsed = client.wnic._now()
        awake = client.wnic.awake_time()
        results.append(
            DemoClientResult(
                client_id=client.client_id,
                bytes_received=len(payload),
                schedules_heard=client.schedules_heard,
                marks_heard=client.marks_heard,
                awake_fraction=awake / elapsed if elapsed > 0 else 1.0,
                estimated_savings_pct=client.wnic.estimated_savings_pct(),
            )
        )
        client.stop()
    return results
