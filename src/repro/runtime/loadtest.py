"""Proxy load-test harness: concurrency, latency, jitter, bounded queues.

Modeled on proxy benchmarking practice (speed-test origin + N
concurrent proxied downloads), with the paper's scheduling metrics
layered on: besides req/s and p50/p99 request latency the harness
reports *schedule-broadcast jitter* (how steadily the proxy hits its
burst interval under load) and the peak per-client queue depth, which
the backpressure watermarks must keep bounded.

An optional :class:`~repro.faults.plan.FaultPlan` runs the whole test
under chaos (control-datagram loss, schedule blackouts, origin kill
windows, client vanish/rejoin) through
:class:`~repro.runtime.chaos.ChaosShim`.

Everything runs on loopback inside one event loop::

    report = asyncio.run(run_loadtest(LoadTestConfig(clients=50)))
    assert not report.watermark_exceeded

or from the CLI: ``python -m repro loadtest --clients 50 --json``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import OverloadError, ProxyProtocolError, ReproError
from repro.faults.plan import FaultPlan
from repro.obs import Recorder, SimRecorder
from repro.runtime.chaos import ChaosShim
from repro.runtime.client import AsyncPowerClient
from repro.runtime.origin import SpeedTestOrigin
from repro.runtime.proxy import CHUNK, AsyncProxy, AsyncProxyConfig


def percentile(values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` by nearest-rank."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class LoadTestConfig:
    """One load-test scenario."""

    clients: int = 8
    requests_per_client: int = 4
    bytes_per_request: int = 64_000
    burst_interval_s: float = 0.05
    #: Origin pacing; 0 = blast at loopback speed.
    origin_pace_s: float = 0.0
    #: Per-request client timeout.
    timeout_s: float = 30.0
    #: Optional chaos plan (wall-clock semantics; see repro.runtime.chaos).
    plan: Optional[FaultPlan] = None
    seed: int = 0
    #: Proxy knob overrides (watermarks, liveness windows, limits).
    proxy: AsyncProxyConfig = field(
        default_factory=lambda: AsyncProxyConfig(burst_interval_s=0.05)
    )


@dataclass
class LoadTestReport:
    """What one load test measured."""

    clients: int
    requests_total: int
    requests_ok: int
    requests_failed: int
    bytes_received: int
    duration_s: float
    req_per_s: float
    latency_p50_s: float
    latency_p99_s: float
    latency_max_s: float
    broadcast_jitter_p50_s: float
    broadcast_jitter_p99_s: float
    broadcast_jitter_max_s: float
    #: Highest per-client queue depth seen, and the configured bound.
    peak_queue_bytes: int
    queue_high_bytes: int
    #: True if any queue overshot high watermark + one read chunk.
    watermark_exceeded: bool
    peak_buffered_bytes: int
    schedules_sent: int
    scheduler_restarts: int
    connections_refused: int
    evictions: int
    slots_reclaimed: int
    chaos_dropped: int
    #: Canonical obs metrics snapshot (same instrument names as the sim).
    metrics: dict

    def summary_rows(self) -> list[dict]:
        """Flat rows for the CLI table (metrics snapshot omitted)."""
        return [{
            "clients": self.clients,
            "requests": self.requests_total,
            "ok": self.requests_ok,
            "failed": self.requests_failed,
            "req_per_s": self.req_per_s,
            "p50_ms": self.latency_p50_s * 1000.0,
            "p99_ms": self.latency_p99_s * 1000.0,
            "jitter_p99_ms": self.broadcast_jitter_p99_s * 1000.0,
            "peak_queue_kib": self.peak_queue_bytes / 1024.0,
            "refused": self.connections_refused,
            "evicted": self.evictions,
            "restarts": self.scheduler_restarts,
        }]


async def _client_worker(
    client: AsyncPowerClient,
    config: LoadTestConfig,
    proxy_port: int,
    origin_port: int,
    latencies: list[float],
    outcomes: dict,
) -> None:
    loop = asyncio.get_running_loop()
    request = f"GET {config.bytes_per_request}\n".encode()
    for _ in range(config.requests_per_client):
        if client._transport is None:  # vanished under chaos
            break
        begin = loop.time()
        try:
            payload = await client.fetch(
                "127.0.0.1", proxy_port, ("127.0.0.1", origin_port),
                request=request,
                expect_bytes=config.bytes_per_request,
                timeout_s=config.timeout_s,
            )
        except OverloadError:
            outcomes["overloaded"] += 1
            continue
        except (ProxyProtocolError, ReproError, ConnectionError, OSError,
                asyncio.TimeoutError):
            outcomes["failed"] += 1
            continue
        if len(payload) == config.bytes_per_request:
            latencies.append(loop.time() - begin)
            outcomes["ok"] += 1
            outcomes["bytes"] += len(payload)
        else:
            outcomes["failed"] += 1


def _broadcast_jitter(times: list[float], interval_s: float) -> list[float]:
    """|actual gap − nominal interval| for consecutive broadcasts."""
    return [
        abs((t1 - t0) - interval_s)
        for t0, t1 in zip(times, times[1:])
    ]


async def run_loadtest(
    config: Optional[LoadTestConfig] = None,
    obs: Optional[Recorder] = None,
) -> LoadTestReport:
    """Run one load test; returns the measured report."""
    config = config or LoadTestConfig()
    recorder = obs if obs is not None else SimRecorder()
    proxy_config = config.proxy
    proxy_config.burst_interval_s = config.burst_interval_s

    origin = SpeedTestOrigin(pace_s=config.origin_pace_s)
    origin_port = await origin.start()
    proxy = AsyncProxy(proxy_config, obs=recorder)
    await proxy.start()
    clients = [
        AsyncPowerClient(f"lt-{i}", obs=recorder)
        for i in range(config.clients)
    ]
    for client in clients:
        await client.start()

    shim: Optional[ChaosShim] = None
    chaos_task: Optional[asyncio.Task] = None
    if config.plan is not None:
        shim = ChaosShim(config.plan, seed=config.seed)
        shim.install(proxy)
        chaos_task = asyncio.create_task(
            shim.drive(origin=origin, clients=clients)
        )

    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    outcomes = {"ok": 0, "failed": 0, "overloaded": 0, "bytes": 0}
    begin = loop.time()
    try:
        await asyncio.gather(*(
            _client_worker(
                client, config, proxy.port, origin_port, latencies, outcomes,
            )
            for client in clients
        ))
        duration = max(loop.time() - begin, 1e-9)
        # Sample queue peaks *before* teardown clears client state.
        peak_queue = max(
            (s.peak_pending for s in proxy._clients.values()), default=0
        )
        jitter = _broadcast_jitter(
            list(proxy.broadcast_times), config.burst_interval_s
        )
    finally:
        if chaos_task is not None:
            chaos_task.cancel()
            try:
                await chaos_task
            except asyncio.CancelledError:  # repro: noqa[ASY005] -- we cancelled chaos_task one line up; absorbing the echo is the reap
                pass  # remaining chaos actions are moot after the run
        if shim is not None:
            shim.uninstall()
        await proxy.stop()
        for client in clients:
            client.stop()
        await origin.stop()

    total = outcomes["ok"] + outcomes["failed"] + outcomes["overloaded"]
    metrics = (
        recorder.metrics.snapshot() if recorder.metrics is not None else {}
    )
    return LoadTestReport(
        clients=config.clients,
        requests_total=total,
        requests_ok=outcomes["ok"],
        requests_failed=outcomes["failed"] + outcomes["overloaded"],
        bytes_received=outcomes["bytes"],
        duration_s=duration,
        req_per_s=outcomes["ok"] / duration,
        latency_p50_s=percentile(latencies, 0.50),
        latency_p99_s=percentile(latencies, 0.99),
        latency_max_s=max(latencies, default=0.0),
        broadcast_jitter_p50_s=percentile(jitter, 0.50),
        broadcast_jitter_p99_s=percentile(jitter, 0.99),
        broadcast_jitter_max_s=max(jitter, default=0.0),
        peak_queue_bytes=peak_queue,
        queue_high_bytes=proxy_config.queue_high_bytes,
        watermark_exceeded=(
            peak_queue > proxy_config.queue_high_bytes + CHUNK
        ),
        peak_buffered_bytes=proxy.peak_buffered_bytes,
        schedules_sent=proxy.schedules_sent,
        scheduler_restarts=proxy.scheduler_restarts,
        connections_refused=proxy.connections_refused,
        evictions=proxy.evictions,
        slots_reclaimed=proxy.slots_reclaimed,
        chaos_dropped=shim.dropped_total if shim is not None else 0,
        metrics=metrics,
    )
