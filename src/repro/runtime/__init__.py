"""A live asyncio implementation of the transparent proxy.

The discrete-event simulator (:mod:`repro.core`) carries the paper's
evaluation; this package demonstrates that the same design runs over
real sockets. Because a userspace process on localhost cannot spoof
addresses or set IP TOS bits the way the paper's kernel bridge could,
two documented substitutions apply (see DESIGN.md):

* clients dial the proxy explicitly and name their target in a one-line
  header (the kernel-bridge interception is replaced by a SOCKS-style
  connect), and
* the end-of-burst mark is an out-of-band UDP datagram to the client's
  control port instead of a TOS bit.

Everything else — per-client queues, the schedule message with SRP and
rendezvous points, burst transmission, the virtual WNIC the client
transitions around rendezvous points — matches the simulated proxy.
"""

from repro.runtime.proxy import AsyncProxy, AsyncProxyConfig
from repro.runtime.client import AsyncPowerClient, VirtualWnic
from repro.runtime.chaos import ChaosShim
from repro.runtime.loadtest import LoadTestConfig, LoadTestReport, run_loadtest
from repro.runtime.origin import SpeedTestOrigin
from repro.runtime.supervisor import TaskSupervisor
from repro.runtime.wire import RuntimeSchedule, RuntimeSlot

__all__ = [
    "AsyncPowerClient",
    "AsyncProxy",
    "AsyncProxyConfig",
    "ChaosShim",
    "LoadTestConfig",
    "LoadTestReport",
    "RuntimeSchedule",
    "RuntimeSlot",
    "SpeedTestOrigin",
    "TaskSupervisor",
    "VirtualWnic",
    "run_loadtest",
]
