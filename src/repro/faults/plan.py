"""Declarative fault-scenario configuration.

A :class:`FaultPlan` describes *what goes wrong* during a run — channel
loss (iid or Gilbert–Elliott bursty), duplication, reordering,
corruption, AP outage windows, schedule-broadcast blackouts, client
clock skew and mid-run churn — plus the graceful-degradation knobs the
system answers with. Plans are plain frozen dataclasses with a
dict round-trip, so a scenario can be stored next to its results and
replayed exactly (all randomness is drawn from the experiment's seeded
RNG streams, never from the plan itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

from repro.errors import ConfigurationError


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1), got {value!r}")


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True, slots=True)
class GilbertElliottSpec:
    """Two-state bursty loss: a good and a bad channel state.

    Per frame the chain first transitions (``p_good_bad`` /
    ``p_bad_good``), then drops the frame with the loss rate of the
    current state. The classic configuration is ``loss_good=0`` and
    ``loss_bad`` near 1, which yields loss *bursts* with geometric
    lengths — the wireless error pattern iid loss cannot imitate.
    """

    p_good_bad: float
    p_bad_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        _check_prob("p_good_bad", self.p_good_bad)
        _check_prob("p_bad_good", self.p_bad_good)
        _check_prob("loss_good", self.loss_good)
        _check_prob("loss_bad", self.loss_bad)

    @property
    def mean_burst_len(self) -> float:
        """Expected number of frames per bad-state visit."""
        if self.p_bad_good <= 0:
            return float("inf")
        return 1.0 / self.p_bad_good


@dataclass(frozen=True, slots=True)
class Window:
    """A half-open ``[start, end)`` interval of simulated time."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"bad fault window: [{self.start}, {self.end})"
            )

    def contains(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One client leaving the cell (and optionally rejoining).

    While gone, every frame to or from the client is lost on the air —
    the radio is out of range. ``rejoin_at=None`` means it never comes
    back.
    """

    client_index: int
    leave_at: float
    rejoin_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.client_index < 0:
            raise ConfigurationError(
                f"negative churn client index: {self.client_index!r}"
            )
        if self.leave_at < 0:
            raise ConfigurationError(f"negative leave_at: {self.leave_at!r}")
        if self.rejoin_at is not None and self.rejoin_at <= self.leave_at:
            raise ConfigurationError(
                f"rejoin_at {self.rejoin_at} must follow leave_at {self.leave_at}"
            )

    def gone(self, now: float) -> bool:
        if now < self.leave_at:
            return False
        return self.rejoin_at is None or now < self.rejoin_at


@dataclass(frozen=True, slots=True)
class ClockFaultSpec:
    """Client clock error: rate skew plus per-wake-up timer jitter.

    ``skew_ppm`` is the clock-rate error in parts per million — a
    client at +100 ppm fires a 500 ms timer 50 µs late. ``jitter_s``
    is the standard deviation of an extra zero-mean error on every
    wake-up (OS timer slop). Both stress the adaptive delay
    compensator, which is exactly what §3.3 claims to absorb.
    """

    skew_ppm: float = 0.0
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.jitter_s < 0:
            raise ConfigurationError(f"negative jitter: {self.jitter_s!r}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Everything injected into one run, plus the degradation knobs."""

    #: iid frame loss rate on the wireless medium.
    loss_rate: float = 0.0
    #: Bursty (Gilbert–Elliott) loss, composed with ``loss_rate``.
    burst_loss: Optional[GilbertElliottSpec] = None
    #: Probability a frame is transmitted twice.
    duplicate_rate: float = 0.0
    #: Probability a frame is pushed behind the frames queued after it.
    reorder_rate: float = 0.0
    #: Probability a frame arrives corrupted (fails its CRC: dropped,
    #: but accounted separately from channel loss).
    corrupt_rate: float = 0.0
    #: Total AP outages: nothing traverses the air in these windows.
    outages: tuple[Window, ...] = ()
    #: Schedule-broadcast blackouts: only the schedule datagrams die.
    schedule_blackouts: tuple[Window, ...] = ()
    #: Per-client clock error (applied to every power-aware client).
    clock: Optional[ClockFaultSpec] = None
    #: Mid-run client membership changes.
    churn: tuple[ChurnEvent, ...] = ()
    #: Consecutive missed schedule broadcasts before a client falls
    #: back to always-listen mode (graceful degradation).
    fallback_after_misses: int = 3
    #: Proxy-side: reclaim a client's slot after this much uplink
    #: silence (None disables reclamation).
    silence_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        _check_rate("loss_rate", self.loss_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        _check_rate("reorder_rate", self.reorder_rate)
        _check_rate("corrupt_rate", self.corrupt_rate)
        if self.fallback_after_misses < 1:
            raise ConfigurationError(
                f"fallback_after_misses must be >= 1: "
                f"{self.fallback_after_misses!r}"
            )
        if self.silence_timeout_s is not None and self.silence_timeout_s <= 0:
            raise ConfigurationError(
                f"silence_timeout_s must be positive: {self.silence_timeout_s!r}"
            )
        # Normalize lists to tuples so plans hash/compare structurally.
        for name in ("outages", "schedule_blackouts", "churn"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def touches_medium(self) -> bool:
        """True when any injector must be installed on the air."""
        return bool(
            self.loss_rate
            or self.burst_loss is not None
            or self.duplicate_rate
            or self.reorder_rate
            or self.corrupt_rate
            or self.outages
            or self.schedule_blackouts
            or self.churn
        )

    # -- dict round-trip ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (see :meth:`from_dict`)."""
        out: dict = {
            "loss_rate": self.loss_rate,
            "duplicate_rate": self.duplicate_rate,
            "reorder_rate": self.reorder_rate,
            "corrupt_rate": self.corrupt_rate,
            "outages": [[w.start, w.end] for w in self.outages],
            "schedule_blackouts": [
                [w.start, w.end] for w in self.schedule_blackouts
            ],
            "churn": [
                {
                    "client_index": c.client_index,
                    "leave_at": c.leave_at,
                    "rejoin_at": c.rejoin_at,
                }
                for c in self.churn
            ],
            "fallback_after_misses": self.fallback_after_misses,
            "silence_timeout_s": self.silence_timeout_s,
        }
        if self.burst_loss is not None:
            out["burst_loss"] = {
                f.name: getattr(self.burst_loss, f.name)
                for f in fields(GilbertElliottSpec)
            }
        if self.clock is not None:
            out["clock"] = {
                f.name: getattr(self.clock, f.name)
                for f in fields(ClockFaultSpec)
            }
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        """Build a plan from :meth:`to_dict` output (extra keys rejected)."""
        if not isinstance(raw, dict):
            raise ConfigurationError(f"fault plan must be a dict: {raw!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        kwargs = dict(raw)
        try:
            if kwargs.get("burst_loss") is not None:
                kwargs["burst_loss"] = GilbertElliottSpec(**kwargs["burst_loss"])
            if kwargs.get("clock") is not None:
                kwargs["clock"] = ClockFaultSpec(**kwargs["clock"])
            kwargs["outages"] = tuple(
                Window(*pair) for pair in kwargs.get("outages", ())
            )
            kwargs["schedule_blackouts"] = tuple(
                Window(*pair) for pair in kwargs.get("schedule_blackouts", ())
            )
            kwargs["churn"] = tuple(
                ChurnEvent(**c) for c in kwargs.get("churn", ())
            )
        except TypeError as exc:
            raise ConfigurationError(f"malformed fault plan: {exc}") from exc
        return cls(**kwargs)
