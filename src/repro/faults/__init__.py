"""Deterministic fault injection and unified drop accounting.

Declare *what goes wrong* in a :class:`FaultPlan`, hand it to a
scenario (``ScenarioConfig(faults=...)`` or
``ExperimentConfig(faults=...)``), and every injector — loss, bursty
loss, duplication, reordering, corruption, outages, schedule
blackouts, clock error, churn — replays byte-identically under the
experiment seed. :class:`FaultCounters` is the one place all drops are
accounted, whatever layer discarded the packet.
"""

from repro.faults.controller import DriftingCompensator, FaultController
from repro.faults.counters import FaultCounters
from repro.faults.injectors import (
    Churn,
    Corruptor,
    Duplicator,
    FaultPipeline,
    GilbertElliottLoss,
    IidLoss,
    Outage,
    Reorderer,
    ScheduleBlackout,
    Verdict,
)
from repro.faults.plan import (
    ChurnEvent,
    ClockFaultSpec,
    FaultPlan,
    GilbertElliottSpec,
    Window,
)

__all__ = [
    "Churn",
    "ChurnEvent",
    "ClockFaultSpec",
    "Corruptor",
    "DriftingCompensator",
    "Duplicator",
    "FaultController",
    "FaultCounters",
    "FaultPipeline",
    "FaultPlan",
    "GilbertElliottLoss",
    "GilbertElliottSpec",
    "IidLoss",
    "Outage",
    "Reorderer",
    "ScheduleBlackout",
    "Verdict",
    "Window",
]
