"""Composable, RNG-seeded fault injectors for the wireless medium.

Each injector inspects one frame as it finishes its airtime and may
return a :class:`Verdict` — drop it (with a reason that becomes a
counter key), transmit it twice, or push it behind the frames queued
after it. Injectors draw only from generators handed to them (the
experiment's named RNG streams), so a fault scenario is a pure function
of ``(plan, seed)`` and replays byte-identically.

The :class:`FaultPipeline` composes injectors in a fixed order;
:mod:`repro.net.medium` consults it from the channel drain loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.schedule import SCHEDULE_PORT
from repro.faults.plan import ChurnEvent, GilbertElliottSpec, Window
from repro.net.packet import Packet

#: Verdict actions understood by the medium.
DROP = "drop"
DUPLICATE = "duplicate"
REORDER = "reorder"


@dataclass(frozen=True, slots=True)
class Verdict:
    """What the fault layer wants done with one frame."""

    action: str  # DROP | DUPLICATE | REORDER
    reason: str  # counter suffix, e.g. "loss" -> "faults.loss"


class Injector:
    """Base class: inspect a frame, maybe return a verdict."""

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        raise NotImplementedError


class IidLoss(Injector):
    """Independent per-frame loss with a fixed rate."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = rate
        self.rng = rng

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if self.rng.random() < self.rate:
            return Verdict(DROP, "loss")
        return None


class GilbertElliottChain:
    """The bare two-state Markov chain behind Gilbert–Elliott models.

    One :meth:`step` consumes exactly one draw from ``rng`` and maybe
    flips the state — the reusable state machinery shared by the
    :class:`GilbertElliottLoss` fault injector (which steps per frame)
    and the per-client channel model in :mod:`repro.net.channel` (which
    steps per epoch on its own exclusive stream).
    """

    __slots__ = ("spec", "rng", "bad", "bad_visits")

    def __init__(
        self,
        spec: GilbertElliottSpec,
        rng: np.random.Generator,
        bad: bool = False,
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.bad = bad
        self.bad_visits = 0

    def step(self) -> bool:
        """Advance one transition; returns True when now in bad state."""
        spec = self.spec
        flip = self.rng.random()
        if self.bad:
            if flip < spec.p_bad_good:
                self.bad = False
        elif flip < spec.p_good_bad:
            self.bad = True
            self.bad_visits += 1
        return self.bad

    @property
    def loss_rate(self) -> float:
        """Per-frame loss rate of the current state."""
        return self.spec.loss_bad if self.bad else self.spec.loss_good


class GilbertElliottLoss(Injector):
    """Two-state bursty loss (Gilbert–Elliott channel model).

    The chain transitions once per frame, then the frame is dropped
    with the loss rate of the state it landed in. Burst lengths are
    geometric with mean ``1 / p_bad_good``. Transition and loss draws
    interleave on the injector's one stream exactly as before the chain
    was factored out, so existing fault-plan replays are unchanged.
    """

    def __init__(self, spec: GilbertElliottSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng
        self.chain = GilbertElliottChain(spec, rng)

    @property
    def bad(self) -> bool:
        return self.chain.bad

    @property
    def bad_visits(self) -> int:
        return self.chain.bad_visits

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        self.chain.step()
        loss = self.chain.loss_rate
        if loss > 0.0 and self.rng.random() < loss:
            return Verdict(DROP, "burst_loss")
        return None


class Corruptor(Injector):
    """Frames that arrive damaged: the CRC fails, the frame is lost.

    Counted apart from channel loss because the paper's decoder-facing
    robustness (and :mod:`repro.runtime.wire`) cares about *damaged*
    datagrams, not just absent ones.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = rate
        self.rng = rng

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if self.rng.random() < self.rate:
            return Verdict(DROP, "corrupt")
        return None


class Duplicator(Injector):
    """Occasionally transmit a frame twice (MAC-level retry gone wrong).

    The duplicate occupies airtime again, like a real spurious retry;
    the second pass is recognized and never re-duplicated.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = rate
        self.rng = rng
        self._second_pass: set[int] = set()

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if packet.packet_id in self._second_pass:
            self._second_pass.discard(packet.packet_id)
            return None
        if self.rng.random() < self.rate:
            self._second_pass.add(packet.packet_id)
            return Verdict(DUPLICATE, "duplicate")
        return None


class Reorderer(Injector):
    """Push a frame behind whatever is queued after it (AP requeue)."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = rate
        self.rng = rng
        self._deferred: set[int] = set()

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if packet.packet_id in self._deferred:
            self._deferred.discard(packet.packet_id)
            return None
        if self.rng.random() < self.rate:
            self._deferred.add(packet.packet_id)
            return Verdict(REORDER, "reorder")
        return None


class Outage(Injector):
    """AP power loss: nothing crosses the air inside the windows."""

    def __init__(self, windows: Sequence[Window]) -> None:
        self.windows = tuple(windows)

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if any(w.contains(now) for w in self.windows):
            return Verdict(DROP, "outage")
        return None


class ScheduleBlackout(Injector):
    """Only the schedule broadcasts die (lost beacon pathology).

    This is the targeted stress for the client's missed-broadcast
    fallback: data keeps flowing, but the control channel goes dark.
    """

    def __init__(self, windows: Sequence[Window]) -> None:
        self.windows = tuple(windows)

    @staticmethod
    def is_schedule(packet: Packet) -> bool:
        return packet.is_broadcast and packet.dst.port == SCHEDULE_PORT

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if self.is_schedule(packet) and any(
            w.contains(now) for w in self.windows
        ):
            return Verdict(DROP, "blackout")
        return None


class Churn:
    """Mid-run membership: a departed client's radio is out of range.

    Uplink frames *from* a gone client die on the channel
    (:meth:`judge`); frames *to* it — including broadcasts other
    stations must still hear — are missed at its antenna
    (:meth:`can_hear`, consulted by the medium's delivery loop).
    """

    def __init__(self, events: Sequence[ChurnEvent], ip_of) -> None:
        self.events: dict[str, list[ChurnEvent]] = {}
        for event in events:
            ip = ip_of(event.client_index)
            self.events.setdefault(ip, []).append(event)

    def gone(self, ip: str, now: float) -> bool:
        return any(e.gone(now) for e in self.events.get(ip, ()))

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        if self.gone(packet.src.ip, now):
            return Verdict(DROP, "churn")
        return None

    def can_hear(self, now: float, ip: str) -> bool:
        return not self.gone(ip, now)


class FaultPipeline:
    """The fixed-order composition the medium consults per frame.

    Deterministic (time-gated injectors first, then the stateful RNG
    ones) so two runs with the same seed see identical draw sequences.
    """

    def __init__(self, injectors: Sequence[Injector], churn: Optional[Churn] = None):
        self.injectors = list(injectors)
        self.churn = churn

    def judge(self, now: float, packet: Packet) -> Optional[Verdict]:
        """First verdict wins; None means deliver normally."""
        if self.churn is not None:
            verdict = self.churn.judge(now, packet)
            if verdict is not None:
                return verdict
        for injector in self.injectors:
            verdict = injector.judge(now, packet)
            if verdict is not None:
                return verdict
        return None

    def can_hear(self, now: float, ip: str) -> bool:
        """Receiver-side gate (churned clients miss even broadcasts)."""
        if self.churn is not None:
            return self.churn.can_hear(now, ip)
        return True
