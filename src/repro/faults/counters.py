"""Unified fault/drop accounting.

Every component that discards, mangles or withholds a packet reports it
here under a dotted key (``"link.dropped"``, ``"faults.blackout"``,
…). One :class:`FaultCounters` instance is shared across a whole
scenario, so the experiment report can show exactly where traffic went
missing — replacing the previous mix of per-object attributes and
trace-only conventions.
"""

from __future__ import annotations


class FaultCounters:
    """A shared registry of named event counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, key: str, n: int = 1) -> int:
        """Add ``n`` to ``key`` and return the new total."""
        total = self._counts.get(key, 0) + n
        self._counts[key] = total
        return total

    def get(self, key: str) -> int:
        """Current count for ``key`` (0 if never incremented)."""
        return self._counts.get(key, 0)

    def totals(self) -> dict[str, int]:
        """All counters, sorted by key (a copy; safe to mutate)."""
        return dict(sorted(self._counts.items()))

    def total(self, prefix: str = "") -> int:
        """Sum of every counter whose key starts with ``prefix``."""
        return sum(
            count for key, count in self._counts.items()
            if key.startswith(prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"FaultCounters({inner})"
