"""Wiring a :class:`~repro.faults.plan.FaultPlan` into a live scenario.

The controller owns the per-scenario fault state: it builds the
injector pipeline from the plan, installs it on the wireless medium,
wraps client delay compensators with the configured clock error, and
exposes the shared counters the experiment report prints. One
controller per scenario; all randomness comes from the scenario's
named RNG streams, so installation changes nothing unless the plan
actually injects something.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.core.delay_comp import DelayCompensator
from repro.errors import ConfigurationError
from repro.core.schedule import BurstSlot, Schedule
from repro.faults.counters import FaultCounters
from repro.faults.injectors import (
    Churn,
    Corruptor,
    Duplicator,
    FaultPipeline,
    GilbertElliottLoss,
    IidLoss,
    Injector,
    Outage,
    Reorderer,
    ScheduleBlackout,
)
from repro.faults.plan import FaultPlan
from repro.sim.random import RngStreams
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.medium import WirelessMedium


class DriftingCompensator(DelayCompensator):
    """A delay compensator behind a skewed, jittery client clock.

    A clock running at rate ``1 + skew`` fires a timer set for ``Δt``
    after ``Δt · (1 + skew)`` of real time; every wake-up additionally
    slips by a zero-mean Gaussian timer error. The adaptive
    compensator re-anchors on each schedule *arrival*, so only the
    per-interval drift — not the accumulated offset — has to fit
    inside the early transition amount (§3.3's claim, now testable).
    """

    def __init__(
        self,
        inner: DelayCompensator,
        skew_ppm: float,
        jitter_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(early_s=inner.early_s)
        if jitter_s > 0 and rng is None:
            raise ConfigurationError("clock jitter requires an rng")
        self.inner = inner
        self.skew = skew_ppm * 1e-6
        self.jitter_s = jitter_s
        self.rng = rng

    def _distort(self, anchor: float, target: float) -> float:
        skewed = anchor + (target - anchor) * (1.0 + self.skew)
        if self.jitter_s > 0:
            skewed += float(self.rng.normal(0.0, self.jitter_s))
        return max(anchor, skewed)

    def observe_arrival(self, schedule: Schedule, arrival: float) -> None:
        self.inner.observe_arrival(schedule, arrival)

    def predict_arrival(self, schedule: Schedule, arrival: float) -> float:
        return self.inner.predict_arrival(schedule, arrival)

    def next_schedule_wake(self, schedule: Schedule, arrival: float) -> float:
        return self._distort(
            arrival, self.inner.next_schedule_wake(schedule, arrival)
        )

    def burst_wake(
        self, schedule: Schedule, arrival: float, slot: BurstSlot
    ) -> float:
        return self._distort(
            arrival, self.inner.burst_wake(schedule, arrival, slot)
        )


class FaultController:
    """Builds, installs and accounts for one plan's injectors."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        medium: "WirelessMedium",
        streams: RngStreams,
        ip_of: Callable[[int], str],
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.plan = plan
        self.medium = medium
        self.streams = streams
        self.ip_of = ip_of
        self.trace = trace
        self.counters: FaultCounters = medium.counters
        self.pipeline: Optional[FaultPipeline] = None
        self.churn: Optional[Churn] = None

    # -- installation -------------------------------------------------------

    def install(self) -> "FaultController":
        """Attach the plan's injectors to the medium (idempotent)."""
        if self.pipeline is not None or not self.plan.touches_medium:
            return self
        plan = self.plan
        injectors: list[Injector] = []
        # Time-gated injectors first (no RNG draws), then the stateful
        # random ones in a fixed order — the draw sequence per stream
        # is then a pure function of the frame sequence.
        if plan.outages:
            injectors.append(Outage(plan.outages))
        if plan.schedule_blackouts:
            injectors.append(ScheduleBlackout(plan.schedule_blackouts))
        if plan.burst_loss is not None:
            injectors.append(
                GilbertElliottLoss(
                    plan.burst_loss, self.streams.get("fault-burst-loss")
                )
            )
        if plan.loss_rate > 0:
            injectors.append(
                IidLoss(plan.loss_rate, self.streams.get("fault-loss"))
            )
        if plan.corrupt_rate > 0:
            injectors.append(
                Corruptor(plan.corrupt_rate, self.streams.get("fault-corrupt"))
            )
        if plan.duplicate_rate > 0:
            injectors.append(
                Duplicator(plan.duplicate_rate, self.streams.get("fault-dup"))
            )
        if plan.reorder_rate > 0:
            injectors.append(
                Reorderer(plan.reorder_rate, self.streams.get("fault-reorder"))
            )
        if plan.churn:
            self.churn = Churn(plan.churn, self.ip_of)
        self.pipeline = FaultPipeline(injectors, churn=self.churn)
        self.medium.faults = self.pipeline
        return self

    # -- client wiring ------------------------------------------------------

    def compensator_for(
        self, index: int, inner: DelayCompensator
    ) -> DelayCompensator:
        """Wrap ``inner`` with this plan's clock error (if any)."""
        clock = self.plan.clock
        if clock is None or (clock.skew_ppm == 0 and clock.jitter_s == 0):
            return inner
        return DriftingCompensator(
            inner,
            skew_ppm=clock.skew_ppm,
            jitter_s=clock.jitter_s,
            rng=self.streams.get(f"fault-clock:{index}"),
        )

    # -- reporting ----------------------------------------------------------

    def totals(self) -> dict[str, int]:
        """Every fault/drop counter of the scenario, by name."""
        return self.counters.totals()
