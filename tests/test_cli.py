"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main, parse_clients, parse_interval
from repro.errors import ConfigurationError


class TestParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100ms", 0.1),
            ("500ms", 0.5),
            ("0.25", 0.25),
            ("2s", 2.0),
            ("variable", None),
            ("var", None),
        ],
    )
    def test_parse_interval(self, text, expected):
        assert parse_interval(text) == expected

    def test_parse_clients_mixed(self):
        specs = parse_clients("video:56,video:512,web,ftp:1000000")
        assert [s.kind for s in specs] == ["video", "video", "web", "ftp"]
        assert specs[0].video_kbps == 56
        assert specs[1].video_kbps == 512
        assert specs[3].ftp_bytes == 1_000_000

    def test_parse_clients_defaults(self):
        specs = parse_clients("video,web:10")
        assert specs[0].video_kbps == 56
        assert specs[1].web_pages == 10

    def test_parse_clients_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_clients("carrier-pigeon")

    def test_parse_clients_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_clients(" , ,")


class TestCommands:
    def test_run_json(self, capsys):
        code = main([
            "run", "--clients", "video:56,video:56",
            "--interval", "250ms", "--duration", "8", "--seed", "3",
            "--json",
        ])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert all(30.0 < row["saved_pct"] < 95.0 for row in rows)

    def test_run_table_output(self, capsys):
        code = main([
            "run", "--clients", "video:56", "--interval", "250ms",
            "--duration", "5", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "saved_pct" in out
        assert "avg saved" in out

    def test_table_command_quick(self, capsys):
        code = main(["table", "memory", "--quick", "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["experiment"] == "memory-footprint"

    def test_bad_client_spec_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--clients", "bogus:1", "--duration", "5"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_parser_help_lists_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in ("run", "figure", "table", "demo"):
            assert command in help_text
