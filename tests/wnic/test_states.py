"""Unit tests for the WNIC state machine."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator, TraceRecorder
from repro.wnic import Wnic, WnicState


class TestWnicTransitions:
    def test_starts_awake_by_default(self):
        wnic = Wnic(Simulator(), "c1")
        assert wnic.is_awake
        assert wnic.state == WnicState.IDLE

    def test_start_asleep(self):
        wnic = Wnic(Simulator(), "c1", start_asleep=True)
        assert not wnic.is_awake

    def test_wake_and_sleep_toggle(self):
        wnic = Wnic(Simulator(), "c1", start_asleep=True)
        assert wnic.wake()
        assert wnic.is_awake
        assert wnic.sleep()
        assert not wnic.is_awake

    def test_redundant_transitions_are_noops(self):
        wnic = Wnic(Simulator(), "c1")
        assert not wnic.wake()  # already awake: no wake event
        wnic.sleep()
        assert not wnic.sleep()  # already asleep: no transition
        assert wnic.wake_count == 0

    def test_wake_count(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1", start_asleep=True)
        for _ in range(3):
            wnic.wake()
            wnic.sleep()
        assert wnic.wake_count == 3

    def test_can_receive_gates_on_state(self):
        wnic = Wnic(Simulator(), "c1", start_asleep=True)
        assert not wnic.can_receive()
        wnic.wake()
        assert wnic.can_receive()

    def test_transitions_recorded_in_trace(self):
        trace = TraceRecorder()
        sim = Simulator()
        wnic = Wnic(sim, "c1", trace=trace, start_asleep=True)
        sim.run(until=1.0)
        wnic.wake()
        sim.run(until=2.0)
        wnic.sleep()
        rows = list(trace.query("wnic.transition"))
        assert [(r.time, r.fields["state"]) for r in rows] == [
            (1.0, "idle"),
            (2.0, "sleep"),
        ]


class TestAwakeIntervals:
    def test_always_awake(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1")
        sim.run(until=10.0)
        assert wnic.awake_intervals(10.0) == [(0.0, 10.0)]

    def test_always_asleep(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1", start_asleep=True)
        sim.run(until=10.0)
        assert wnic.awake_intervals(10.0) == []

    def test_interleaved_intervals(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1", start_asleep=True)
        for wake_at, sleep_at in [(1.0, 2.0), (4.0, 7.0)]:
            sim.call_at(wake_at, wnic.wake)
            sim.call_at(sleep_at, wnic.sleep)
        sim.run()
        assert wnic.awake_intervals(10.0) == [(1.0, 2.0), (4.0, 7.0)]
        assert wnic.awake_time(10.0) == pytest.approx(4.0)

    def test_open_interval_clipped_to_end_time(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1", start_asleep=True)
        sim.call_at(3.0, wnic.wake)
        sim.run()
        assert wnic.awake_intervals(5.0) == [(3.0, 5.0)]

    def test_end_time_before_last_transition_raises(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1", start_asleep=True)
        sim.call_at(5.0, wnic.wake)
        sim.run()
        with pytest.raises(ConfigurationError):
            wnic.awake_intervals(1.0)
