"""Unit tests for the power model."""

import pytest

from repro.errors import ConfigurationError
from repro.wnic.power import WAVELAN_2_4GHZ, PowerModel


class TestPowerModel:
    def test_paper_constants(self):
        """The exact WaveLAN values from §4.1 of the paper."""
        assert WAVELAN_2_4GHZ.idle_w == pytest.approx(1.319)
        assert WAVELAN_2_4GHZ.receive_w == pytest.approx(1.425)
        assert WAVELAN_2_4GHZ.transmit_w == pytest.approx(1.675)
        assert WAVELAN_2_4GHZ.sleep_w == pytest.approx(0.177)
        assert WAVELAN_2_4GHZ.wake_penalty_s == pytest.approx(0.002)

    def test_sleep_order_of_magnitude_below_idle(self):
        ratio = WAVELAN_2_4GHZ.idle_w / WAVELAN_2_4GHZ.sleep_w
        assert ratio > 7  # paper: "an order of magnitude less power"

    def test_energy_additivity(self):
        model = WAVELAN_2_4GHZ
        energy = model.energy(
            sleep_s=10.0, idle_s=2.0, receive_s=1.0, transmit_s=0.5, wake_count=4
        )
        expected = (
            10.0 * 0.177
            + 2.0 * 1.319
            + 1.0 * 1.425
            + 0.5 * 1.675
            + 4 * 0.002 * 1.319
        )
        assert energy == pytest.approx(expected)

    def test_wake_penalty_energy(self):
        assert WAVELAN_2_4GHZ.wake_penalty_j == pytest.approx(0.002 * 1.319)

    def test_rejects_sleep_above_idle(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_w=1.0, receive_w=1.1, transmit_w=1.2, sleep_w=1.5)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ConfigurationError):
            PowerModel(idle_w=0.0, receive_w=1.1, transmit_w=1.2, sleep_w=0.1)

    def test_rejects_negative_wake_penalty(self):
        with pytest.raises(ConfigurationError):
            PowerModel(
                idle_w=1.0, receive_w=1.1, transmit_w=1.2, sleep_w=0.1,
                wake_penalty_s=-1.0,
            )
