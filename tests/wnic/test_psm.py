"""Unit tests for the 802.11b PSM baseline."""

import pytest

from repro.net.addr import Endpoint
from repro.net.link import Link
from repro.net.medium import WirelessMedium
from repro.net.node import Node
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator
from repro.units import mbps, ms
from repro.wnic import Wnic
from repro.wnic.psm import PsmAccessPoint, PsmClient


def build_psm_cell(sim=None, n_clients=1):
    sim = sim or Simulator()
    host = Node(sim, "host", "10.0.2.1")
    ap = PsmAccessPoint(sim, "ap", "10.0.0.254")
    link = Link(sim, mbps(100), ms(0.2))
    host_iface = host.add_interface("eth0")
    link.attach(host_iface, ap.wired)
    host.set_default_route(host_iface)
    medium = WirelessMedium(sim)
    medium.attach(ap.wireless, gateway=True)
    clients = []
    for index in range(n_clients):
        node = Node(sim, f"c{index}", f"10.0.1.{index + 1}")
        iface = node.add_interface("wl0")
        medium.attach(iface)
        node.set_default_route(iface)
        wnic = Wnic(sim, node.name, start_asleep=False)
        daemon = PsmClient(node, wnic, ap)
        clients.append((node, wnic, daemon))
    return sim, host, ap, medium, clients


def test_beacons_are_periodic():
    sim, host, ap, medium, clients = build_psm_cell()
    sim.run(until=1.05)
    assert ap.beacons_sent == 10


def test_client_sleeps_when_no_traffic():
    sim, host, ap, medium, clients = build_psm_cell()
    _node, wnic, _daemon = clients[0]
    sim.run(until=10.0)
    # Mostly asleep: only short beacon wake-ups.
    assert wnic.awake_time(10.0) < 2.0
    assert wnic.wake_count >= 90


def test_buffered_frame_delivered_after_beacon():
    sim, host, ap, medium, clients = build_psm_cell()
    node, wnic, _daemon = clients[0]
    received = []
    UdpSocket(node, 7000, on_receive=lambda p: received.append(sim.now))
    # Send mid-doze: must be buffered, then arrive right after a beacon.
    sim.call_at(0.55, lambda: UdpSocket(host, 5000).sendto(
        500, Endpoint(node.ip, 7000)))
    sim.run(until=1.0)
    assert len(received) == 1
    assert received[0] > 0.6  # held until the t=0.6 beacon
    assert ap.frames_buffered == 1


def test_client_heard_beacons():
    sim, host, ap, medium, clients = build_psm_cell()
    _node, _wnic, daemon = clients[0]
    sim.run(until=2.0)
    assert daemon.beacons_heard >= 18


def test_steady_stream_is_batched_with_beacon_latency():
    """The paper's point: PSM hurts multimedia — every packet sent while
    the station dozes waits for the next beacon (up to ~100 ms)."""
    sim, host, ap, medium, clients = build_psm_cell()
    node, wnic, _daemon = clients[0]
    latencies = []
    UdpSocket(node, 7000, on_receive=lambda p: latencies.append(
        sim.now - p.created_at))
    sender = UdpSocket(host, 5000)

    def stream():
        while sim.now < 5.0:
            sender.sendto(1400, Endpoint(node.ip, 7000))
            yield sim.timeout(0.02)  # 560 kbps continuous stream

    sim.process(stream())
    sim.run(until=5.2)
    assert len(latencies) > 100  # stream is delivered...
    # ...but a large share of packets pay tens of ms of beacon latency.
    delayed = [lat for lat in latencies if lat > 0.02]
    assert len(delayed) > len(latencies) * 0.3
    assert max(latencies) > 0.05
    assert ap.frames_buffered > 50
