"""Integration tests for the live asyncio proxy (real sockets).

Wall-clock timing on shared machines is imprecise (that is precisely
why the evaluation runs on the DES); these tests assert structure and
data integrity, not exact burst timing. Every async scenario runs
through :func:`tests.runtime.conftest.run_strict`, which fails on
unhandled loop exceptions, leaked tasks, and unclosed transports.
"""

import asyncio
import socket

import pytest

from repro.errors import ConfigurationError, OverloadError, ProxyProtocolError
from repro.obs import SimRecorder
from repro.runtime.client import AsyncPowerClient
from repro.runtime.demo import run_demo, start_byte_server
from repro.runtime.origin import SpeedTestOrigin
from repro.runtime.proxy import (
    CHUNK,
    KIND_MARK,
    KIND_SCHEDULE,
    AsyncProxy,
    AsyncProxyConfig,
)
from repro.runtime.wire import RuntimeSchedule, RuntimeSlot

from tests.runtime.conftest import run_strict


def _dead_port() -> int:
    """A loopback port with nothing listening on it."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _fast_config(**overrides) -> AsyncProxyConfig:
    defaults = dict(
        burst_interval_s=0.05,
        dial_timeout_s=0.5,
        dial_retries=0,
        dial_backoff_base_s=0.01,
    )
    defaults.update(overrides)
    return AsyncProxyConfig(**defaults)


class TestConfigValidation:
    def test_low_watermark_must_not_exceed_high(self):
        with pytest.raises(ConfigurationError):
            AsyncProxyConfig(queue_high_bytes=1024, queue_low_bytes=2048)

    def test_evict_window_must_cover_silence_window(self):
        with pytest.raises(ConfigurationError):
            AsyncProxyConfig(silence_timeout_s=5.0, evict_timeout_s=1.0)


class TestLiveProxy:
    @pytest.mark.timeout(60)
    def test_single_client_download_integrity(self):
        async def scenario():
            origin, origin_port = await start_byte_server()
            proxy = AsyncProxy(_fast_config())
            await proxy.start()
            client = AsyncPowerClient("c0")
            await client.start()
            try:
                payload = await client.fetch(
                    "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                    request=b"GET 100000\n", expect_bytes=100_000,
                )
            finally:
                await proxy.stop()
                client.stop()
                await origin.stop()
            return payload, client, proxy

        payload, client, proxy = run_strict(scenario())
        assert len(payload) == 100_000
        assert client.schedules_heard > 0
        assert client.marks_heard > 0
        assert proxy.connections_split == 1

    @pytest.mark.timeout(60)
    def test_demo_multiple_clients(self):
        results = run_strict(
            run_demo(n_clients=2, file_size=120_000, burst_interval_s=0.05),
            timeout_s=60.0,
        )
        assert len(results) == 2
        for result in results:
            assert result.bytes_received == 120_000
            assert result.schedules_heard > 0
            assert result.marks_heard > 0
            # The virtual card dozed at least part of the time.
            assert result.awake_fraction < 1.0

    def test_proxy_rejects_malformed_header(self):
        async def scenario():
            proxy = AsyncProxy(_fast_config())
            await proxy.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                writer.write(b"BOGUS header line\n")
                await writer.drain()
                data = await asyncio.wait_for(reader.read(100), timeout=5.0)
                writer.close()
                await writer.wait_closed()
            finally:
                await proxy.stop()
            return data, proxy

        data, proxy = run_strict(scenario())
        # The explicit status line, then the connection closes.
        assert data == b"ERR bad-connect\n"
        assert proxy.connections_refused == 1
        assert proxy.connections_split == 0

    def test_unreachable_origin_leaves_no_ghost_registration(self):
        """A failed origin dial must refuse the connect *without*
        registering the client (the ghost-client fix): nothing may
        linger in the schedule for a client that never got a byte."""

        async def scenario():
            proxy = AsyncProxy(_fast_config())
            await proxy.start()
            client = AsyncPowerClient("ghost")
            await client.start()
            try:
                with pytest.raises(ProxyProtocolError, match="origin-unreachable"):
                    await client.fetch(
                        "127.0.0.1", proxy.port, ("127.0.0.1", _dead_port()),
                        request=b"GET 10\n", expect_bytes=10,
                    )
                registered = dict(proxy._clients)
            finally:
                await proxy.stop()
                client.stop()
            return registered, proxy

        registered, proxy = run_strict(scenario())
        assert registered == {}
        assert proxy.connections_split == 0
        assert proxy.connections_refused == 1

    def test_admission_limit_overload(self):
        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_fast_config(max_clients=1))
            await proxy.start()
            admitted = AsyncPowerClient("admitted")
            shed = AsyncPowerClient("shed")
            await admitted.start()
            await shed.start()
            try:
                payload = await admitted.fetch(
                    "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                    request=b"GET 20000\n", expect_bytes=20_000,
                )
                with pytest.raises(OverloadError):
                    await shed.fetch(
                        "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                        request=b"GET 10\n", expect_bytes=10,
                    )
            finally:
                await proxy.stop()
                admitted.stop()
                shed.stop()
                await origin.stop()
            return payload, proxy

        payload, proxy = run_strict(scenario())
        assert len(payload) == 20_000
        assert proxy.connections_refused == 1

    def test_backpressure_bounds_queue_at_watermark(self):
        """The origin read pauses above the high watermark, so the
        per-client queue can overshoot it by at most one read chunk."""

        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_fast_config(
                queue_high_bytes=128 * 1024,
                queue_low_bytes=32 * 1024,
            ))
            await proxy.start()
            client = AsyncPowerClient("bp")
            await client.start()
            try:
                payload = await client.fetch(
                    "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                    request=b"GET 1000000\n", expect_bytes=1_000_000,
                )
            finally:
                await proxy.stop()
                client.stop()
                await origin.stop()
            return payload, proxy

        payload, proxy = run_strict(scenario(), timeout_s=60.0)
        assert len(payload) == 1_000_000
        assert 0 < proxy.peak_buffered_bytes <= 128 * 1024 + CHUNK

    def test_scheduler_survives_vanished_client_slot(self):
        """The crash-window fix: a schedule slot whose client vanished
        between building and bursting is skipped — never a KeyError
        that would restart the scheduler."""

        async def scenario():
            recorder = SimRecorder()
            proxy = AsyncProxy(_fast_config(), obs=recorder)
            await proxy.start()

            def haunted_schedule(seq, srp):
                return RuntimeSchedule(
                    seq=seq, srp=srp,
                    interval_s=proxy.config.burst_interval_s,
                    slots=(RuntimeSlot("never-registered", 0.001, 0.001, 64),),
                )

            proxy._build_schedule = haunted_schedule
            try:
                await asyncio.sleep(0.3)  # several scheduler iterations
            finally:
                await proxy.stop()
            return proxy, recorder

        proxy, recorder = run_strict(scenario())
        assert proxy.scheduler_restarts == 0
        assert proxy._supervisor.failures == []
        snapshot = recorder.metrics.snapshot()
        vanished = [
            c["value"] for c in snapshot["counters"]
            if c["name"] == "drops" and c["labels"].get("reason") == "vanished"
        ]
        assert vanished and vanished[0] > 0

    def test_schedule_loss_degrades_without_stalling_data(self):
        """With every schedule datagram dropped the client never hears
        one — but bursts still flow: data degrades to plain proxying,
        mirroring the simulator's lost-schedule scenario."""

        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_fast_config())
            await proxy.start()
            proxy.control_filter = (
                lambda payload, addr, kind: kind != KIND_SCHEDULE
            )
            client = AsyncPowerClient("deaf")
            await client.start()
            try:
                payload = await client.fetch(
                    "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                    request=b"GET 60000\n", expect_bytes=60_000,
                )
            finally:
                await proxy.stop()
                client.stop()
                await origin.stop()
            return payload, client

        payload, client = run_strict(scenario())
        assert len(payload) == 60_000
        assert client.schedules_heard == 0
        assert client.marks_heard > 0

    def test_mark_loss_degrades_without_stalling_data(self):
        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_fast_config())
            await proxy.start()
            proxy.control_filter = (
                lambda payload, addr, kind: kind != KIND_MARK
            )
            client = AsyncPowerClient("markless")
            await client.start()
            try:
                payload = await client.fetch(
                    "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                    request=b"GET 60000\n", expect_bytes=60_000,
                )
            finally:
                await proxy.stop()
                client.stop()
                await origin.stop()
            return payload, client

        payload, client = run_strict(scenario())
        assert len(payload) == 60_000
        assert client.marks_heard == 0
        assert client.schedules_heard > 0


class TestTeardown:
    def test_stop_leaves_no_tasks_or_sockets(self):
        """stop() cancels and *awaits* every owned task and closes every
        writer — run_strict would fail on any orphan."""

        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_fast_config(burst_interval_s=5.0))
            await proxy.start()
            client = AsyncPowerClient("td")
            await client.start()
            # Park a transfer mid-flight: with a 5s burst interval the
            # downstream bytes sit buffered when stop() fires.
            fetch = asyncio.create_task(client.fetch(
                "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                request=b"GET 500000\n", expect_bytes=500_000,
                timeout_s=2.0,
            ))
            await asyncio.sleep(0.3)
            assert proxy._connections, "transfer should be in flight"
            await proxy.stop()
            fetch.cancel()
            try:
                await fetch
            except (asyncio.CancelledError, Exception):
                pass
            client.stop()
            await origin.stop()
            return proxy

        proxy = run_strict(scenario())
        assert proxy._supervisor.pending == 0
        assert proxy._connections == set()
        assert proxy._clients == {}
        assert proxy._handler_tasks == set()

    def test_stop_mid_handshake_closes_accepted_socket(self):
        async def scenario():
            proxy = AsyncProxy(_fast_config(handshake_timeout_s=30.0))
            await proxy.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", proxy.port
            )
            await asyncio.sleep(0.05)  # handler parked in readline()
            await proxy.stop()
            # The proxy side closed; our read completes with EOF.
            data = await asyncio.wait_for(reader.read(64), timeout=5.0)
            writer.close()
            await writer.wait_closed()
            return data, proxy

        data, proxy = run_strict(scenario())
        assert data == b""
        assert proxy._handler_tasks == set()

    def test_stop_is_idempotent(self):
        async def scenario():
            proxy = AsyncProxy(_fast_config())
            await proxy.start()
            await proxy.stop()
            await proxy.stop()
            return proxy

        proxy = run_strict(scenario())
        assert proxy._supervisor.pending == 0
