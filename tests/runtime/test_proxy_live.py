"""Integration tests for the live asyncio proxy (real sockets).

Wall-clock timing on shared machines is imprecise (that is precisely
why the evaluation runs on the DES); these tests assert structure and
data integrity, not exact burst timing.
"""

import asyncio

import pytest

from repro.runtime.client import AsyncPowerClient, VirtualWnic
from repro.runtime.demo import run_demo, start_byte_server
from repro.runtime.proxy import AsyncProxy, AsyncProxyConfig


def run(coro):
    return asyncio.run(coro)


class TestVirtualWnic:
    def test_transitions_and_awake_time(self):
        clock = {"t": 0.0}
        wnic = VirtualWnic(clock=lambda: clock["t"])
        clock["t"] = 1.0
        wnic.sleep()
        clock["t"] = 3.0
        wnic.wake()
        clock["t"] = 4.0
        assert wnic.awake_time(4.0) == pytest.approx(2.0)
        assert wnic.wake_count == 1

    def test_estimated_savings_bounds(self):
        clock = {"t": 0.0}
        wnic = VirtualWnic(clock=lambda: clock["t"])
        clock["t"] = 0.1
        wnic.sleep()
        clock["t"] = 10.0
        pct = wnic.estimated_savings_pct(until=10.0)
        assert 70.0 < pct < 90.0  # mostly asleep

    def test_always_awake_saves_nothing(self):
        clock = {"t": 0.0}
        wnic = VirtualWnic(clock=lambda: clock["t"])
        clock["t"] = 5.0
        assert wnic.estimated_savings_pct(until=5.0) == pytest.approx(0.0)


class TestLiveProxy:
    def test_single_client_download_integrity(self):
        async def scenario():
            origin, origin_port = await start_byte_server()
            proxy = AsyncProxy(AsyncProxyConfig(burst_interval_s=0.05))
            await proxy.start()
            client = AsyncPowerClient("c0")
            await client.start()
            try:
                payload = await client.fetch(
                    "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
                    request=b"GET 100000\n", expect_bytes=100_000,
                )
            finally:
                await proxy.stop()
                client.stop()
                origin.close()
                await origin.wait_closed()
            return payload, client, proxy

        payload, client, proxy = run(scenario())
        assert len(payload) == 100_000
        assert client.schedules_heard > 0
        assert client.marks_heard > 0
        assert proxy.connections_split == 1

    def test_demo_multiple_clients(self):
        results = run(run_demo(n_clients=2, file_size=120_000,
                               burst_interval_s=0.05))
        assert len(results) == 2
        for result in results:
            assert result.bytes_received == 120_000
            assert result.schedules_heard > 0
            assert result.marks_heard > 0
            # The virtual card dozed at least part of the time.
            assert result.awake_fraction < 1.0

    def test_proxy_rejects_malformed_header(self):
        async def scenario():
            proxy = AsyncProxy(AsyncProxyConfig())
            await proxy.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                writer.write(b"BOGUS header line\n")
                await writer.drain()
                data = await asyncio.wait_for(reader.read(100), timeout=5.0)
            finally:
                await proxy.stop()
            return data

        assert run(scenario()) == b""  # connection closed, nothing relayed
