"""VirtualWnic transition-log edge cases.

The virtual card's savings estimate feeds the demo and load-test
output; these tests pin down the window semantics — overlapping
queries, zero-length windows, and wake-penalty accounting — that the
wall-clock integration tests cannot time precisely.
"""

import pytest

from repro.wnic.power import WAVELAN_2_4GHZ
from repro.runtime.client import VirtualWnic


def make_wnic():
    clock = {"t": 0.0}
    wnic = VirtualWnic(clock=lambda: clock["t"])
    return clock, wnic


class TestAwakeTime:
    def test_transitions_and_awake_time(self):
        clock, wnic = make_wnic()
        clock["t"] = 1.0
        wnic.sleep()
        clock["t"] = 3.0
        wnic.wake()
        clock["t"] = 4.0
        assert wnic.awake_time(4.0) == pytest.approx(2.0)
        assert wnic.wake_count == 1

    def test_zero_duration_window(self):
        _clock, wnic = make_wnic()
        assert wnic.awake_time(0.0) == 0.0
        assert wnic.estimated_savings_pct(until=0.0) == 0.0

    def test_negative_window_clamps_to_zero(self):
        _clock, wnic = make_wnic()
        assert wnic.awake_time(-1.0) == 0.0
        assert wnic.estimated_savings_pct(until=-1.0) == 0.0

    def test_until_mid_sleep_counts_only_awake_overlap(self):
        clock, wnic = make_wnic()
        clock["t"] = 2.0
        wnic.sleep()
        clock["t"] = 6.0
        wnic.wake()
        # Query lands inside the sleep stretch.
        assert wnic.awake_time(4.0) == pytest.approx(2.0)
        # Query lands after the wake.
        clock["t"] = 8.0
        assert wnic.awake_time(8.0) == pytest.approx(4.0)

    def test_overlapping_queries_are_consistent(self):
        """awake_time at increasing `until` points is non-decreasing and
        additive over sub-windows — earlier queries must not perturb
        later ones."""
        clock, wnic = make_wnic()
        clock["t"] = 1.0
        wnic.sleep()
        clock["t"] = 4.0
        wnic.wake()
        clock["t"] = 5.0
        wnic.sleep()
        clock["t"] = 9.0
        samples = [wnic.awake_time(t) for t in (0.5, 2.0, 4.5, 6.0, 9.0)]
        assert samples == sorted(samples)
        assert samples[0] == pytest.approx(0.5)
        assert samples[-1] == pytest.approx(2.0)  # [0,1) + [4,5)
        # Re-querying an earlier point still agrees.
        assert wnic.awake_time(2.0) == pytest.approx(samples[1])

    def test_idempotent_transitions_do_not_double_count(self):
        clock, wnic = make_wnic()
        clock["t"] = 1.0
        wnic.sleep()
        wnic.sleep()
        clock["t"] = 2.0
        wnic.wake()
        wnic.wake()
        assert wnic.wake_count == 1
        clock["t"] = 3.0
        assert wnic.awake_time(3.0) == pytest.approx(2.0)


class TestWakesUntil:
    def test_counts_only_wakes_inside_window(self):
        clock, wnic = make_wnic()
        for start in (1.0, 3.0, 5.0):
            clock["t"] = start
            wnic.sleep()
            clock["t"] = start + 1.0
            wnic.wake()
        assert wnic.wake_count == 3
        assert wnic.wakes_until(0.5) == 0
        assert wnic.wakes_until(2.0) == 1
        assert wnic.wakes_until(4.0) == 2
        assert wnic.wakes_until(10.0) == 3

    def test_boundary_wake_is_included(self):
        clock, wnic = make_wnic()
        clock["t"] = 1.0
        wnic.sleep()
        clock["t"] = 2.0
        wnic.wake()
        assert wnic.wakes_until(2.0) == 1


class TestEstimatedSavings:
    def test_estimated_savings_bounds(self):
        clock, wnic = make_wnic()
        clock["t"] = 0.1
        wnic.sleep()
        clock["t"] = 10.0
        pct = wnic.estimated_savings_pct(until=10.0)
        assert 70.0 < pct < 90.0  # mostly asleep

    def test_always_awake_saves_nothing(self):
        clock, wnic = make_wnic()
        clock["t"] = 5.0
        assert wnic.estimated_savings_pct(until=5.0) == pytest.approx(0.0)

    def test_wake_penalty_outside_window_not_charged(self):
        """A wake at t=8 must not be charged against a query ending at
        t=4 (the overlapping-query accounting fix)."""
        clock, wnic = make_wnic()
        clock["t"] = 1.0
        wnic.sleep()
        clock["t"] = 8.0
        wnic.wake()
        clock["t"] = 9.0
        early = wnic.estimated_savings_pct(until=4.0)
        # Same sleep fraction by hand, no wake penalty in [0, 4):
        power = WAVELAN_2_4GHZ
        expected_energy = 1.0 * power.idle_w + 3.0 * power.sleep_w
        expected = 100.0 * (1.0 - expected_energy / (4.0 * power.idle_w))
        assert early == pytest.approx(expected)

    def test_wake_penalty_inside_window_is_charged(self):
        clock, wnic = make_wnic()
        clock["t"] = 1.0
        wnic.sleep()
        clock["t"] = 3.0
        wnic.wake()
        clock["t"] = 4.0
        with_penalty = wnic.estimated_savings_pct(until=4.0)
        power = WAVELAN_2_4GHZ
        energy = (
            2.0 * power.idle_w + 2.0 * power.sleep_w + power.wake_penalty_j
        )
        expected = 100.0 * (1.0 - energy / (4.0 * power.idle_w))
        assert with_penalty == pytest.approx(expected)
