"""Runtime-suite wiring: per-test timeouts and strict asyncio runs.

The live-runtime tests exercise real sockets and real tasks, so two
failure modes need infrastructure the simulator suites don't:

* **Hangs.** A deadlocked relay or un-drained writer would wedge the
  whole suite. Every test in this directory gets a hard per-test
  timeout: via the ``pytest-timeout`` plugin when it is installed (CI
  installs it), otherwise via a SIGALRM fallback implemented here —
  same ``@pytest.mark.timeout(N)`` marker, no extra dependency.
* **Silent leaks.** asyncio reports orphaned tasks and never-retrieved
  exceptions through the loop exception handler and ResourceWarnings,
  which pytest does not fail on by default. :func:`run_strict` runs a
  coroutine in debug mode and *asserts* zero unhandled exceptions and
  zero tasks still pending afterwards — the teardown contract of
  ``AsyncProxy.stop()``.
"""

import asyncio
import gc
import signal
import warnings

import pytest

#: Applied to every test in this directory with no explicit marker.
DEFAULT_TIMEOUT_S = 60.0

try:
    import pytest_timeout  # noqa: F401

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False

_CAN_ALARM = hasattr(signal, "SIGALRM")


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    return DEFAULT_TIMEOUT_S


if not HAVE_PYTEST_TIMEOUT and _CAN_ALARM:

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item):
        limit = _timeout_for(item)

        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {limit:.0f}s runtime-suite timeout"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            return (yield)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def run_strict(coro, timeout_s: float = 30.0):
    """Run ``coro`` under asyncio debug mode with leak assertions.

    Fails the test when, after the coroutine finishes:

    * the loop exception handler saw any unhandled exception (task
      crashes, transport errors, never-retrieved task exceptions), or
    * any task other than the runner itself is still pending, or
    * garbage collection raises a ResourceWarning for an unclosed
      transport or event loop resource.
    """
    unhandled: list[dict] = []

    async def main():
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(
            lambda _loop, context: unhandled.append(context)
        )
        try:
            return await asyncio.wait_for(coro, timeout_s)
        finally:
            # Let done-callbacks and cancellations settle, then force
            # collection so never-retrieved task exceptions surface
            # through the handler while the loop is still alive.
            await asyncio.sleep(0)
            gc.collect()
            current = asyncio.current_task()
            pending = [
                task for task in asyncio.all_tasks(loop)
                if task is not current
            ]
            assert not pending, f"leaked pending tasks: {pending!r}"

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ResourceWarning)
        result = asyncio.run(main(), debug=True)
        gc.collect()
    leaks = [w for w in caught if issubclass(w.category, ResourceWarning)]
    assert not leaks, f"resource warnings: {[str(w.message) for w in leaks]!r}"
    assert not unhandled, (
        "unhandled loop exceptions: "
        f"{[c.get('message') for c in unhandled]!r}"
    )
    return result
