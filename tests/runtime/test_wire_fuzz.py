"""Fuzzing the wire decoders with seeded corruption.

The proxy's control channel is plain UDP: anything on the network can
deliver truncated, bit-flipped, or outright hostile payloads to the
schedule port.  The contract of ``RuntimeSchedule.decode`` and
``decode_control`` is total: every input either yields a fully
validated value or raises :class:`SchedulingError` — never any other
exception, and never a half-populated schedule.
"""

import json
import math

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.runtime.wire import (
    RuntimeSchedule,
    RuntimeSlot,
    decode_control,
    encode_mark,
)

N_ROUNDS = 300


def make_schedule(rng):
    n_slots = int(rng.integers(0, 5))
    return RuntimeSchedule(
        seq=int(rng.integers(0, 1 << 20)),
        srp=float(rng.uniform(0.0, 1e6)),
        interval_s=float(rng.uniform(0.01, 1.0)),
        slots=tuple(
            RuntimeSlot(
                client_id=f"client-{i}",
                offset_s=float(rng.uniform(0.0, 0.2)),
                duration_s=float(rng.uniform(0.0, 0.05)),
                nbytes=int(rng.integers(0, 1 << 16)),
            )
            for i in range(n_slots)
        ),
    )


def assert_total(payload):
    """decode() must return a valid schedule or raise SchedulingError."""
    try:
        schedule = RuntimeSchedule.decode(payload)
    except SchedulingError:
        return None
    # Whatever survives decoding must be fully typed and in range —
    # corruption may produce a different but still *valid* schedule
    # (e.g. a flipped digit), never a partial one.
    assert isinstance(schedule.seq, int) and schedule.seq >= 0
    assert isinstance(schedule.srp, float) and math.isfinite(schedule.srp)
    assert isinstance(schedule.interval_s, float)
    assert schedule.interval_s > 0
    for slot in schedule.slots:
        assert isinstance(slot.client_id, str) and slot.client_id
        assert isinstance(slot.offset_s, float) and slot.offset_s >= 0
        assert isinstance(slot.duration_s, float) and slot.duration_s >= 0
        assert isinstance(slot.nbytes, int) and slot.nbytes >= 0
    return schedule


class TestScheduleFuzz:
    def test_truncation_never_crashes(self):
        rng = np.random.default_rng(2004)
        for _ in range(N_ROUNDS):
            payload = make_schedule(rng).encode()
            cut = int(rng.integers(0, len(payload)))
            assert_total(payload[:cut])

    def test_bit_flips_never_crash(self):
        rng = np.random.default_rng(42)
        for _ in range(N_ROUNDS):
            payload = bytearray(make_schedule(rng).encode())
            for _ in range(int(rng.integers(1, 9))):
                pos = int(rng.integers(0, len(payload)))
                payload[pos] ^= 1 << int(rng.integers(0, 8))
            assert_total(bytes(payload))

    def test_random_bytes_never_crash(self):
        rng = np.random.default_rng(7)
        for _ in range(N_ROUNDS):
            payload = rng.integers(
                0, 256, size=int(rng.integers(0, 200)), dtype=np.uint8
            ).tobytes()
            assert_total(payload)

    def test_intact_payloads_round_trip(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            schedule = make_schedule(rng)
            assert RuntimeSchedule.decode(schedule.encode()) == schedule


class TestScheduleShapeAttacks:
    """Well-formed JSON with a hostile shape must raise, not crash."""

    @pytest.mark.parametrize("payload", [
        b"5",
        b'"schedule"',
        b"null",
        b"true",
        b"[]",
        b'[{"type": "schedule"}]',
        b'{"type": "schedule"}',
        b'{"type": "schedule", "seq": "3", "srp": 0, "interval_s": 0.1}',
        b'{"type": "schedule", "seq": 3.5, "srp": 0, "interval_s": 0.1}',
        b'{"type": "schedule", "seq": true, "srp": 0, "interval_s": 0.1}',
        b'{"type": "schedule", "seq": -1, "srp": 0, "interval_s": 0.1}',
        b'{"type": "schedule", "seq": 3, "srp": null, "interval_s": 0.1}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": -0.1}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0.1,'
        b' "slots": 9}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0.1,'
        b' "slots": ["x"]}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0.1,'
        b' "slots": [{}]}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0.1,'
        b' "slots": [{"client_id": "", "offset_s": 0, "duration_s": 0,'
        b' "nbytes": 0}]}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0.1,'
        b' "slots": [{"client_id": "c", "offset_s": -1, "duration_s": 0,'
        b' "nbytes": 0}]}',
        b'{"type": "schedule", "seq": 3, "srp": 0, "interval_s": 0.1,'
        b' "slots": [{"client_id": "c", "offset_s": 0, "duration_s": 0,'
        b' "nbytes": 0.5}]}',
    ])
    def test_rejected_with_typed_error(self, payload):
        with pytest.raises(SchedulingError):
            RuntimeSchedule.decode(payload)

    def test_nan_and_inf_rejected(self):
        for value in ("NaN", "Infinity", "-Infinity"):
            payload = (
                '{"type": "schedule", "seq": 3, "srp": %s, "interval_s": 0.1}'
                % value
            ).encode()
            # Python's json accepts these non-standard literals; the
            # decoder must still refuse a non-finite SRP.
            assert isinstance(json.loads(payload)["srp"], float)
            with pytest.raises(SchedulingError):
                RuntimeSchedule.decode(payload)

    def test_missing_slots_defaults_to_empty(self):
        schedule = RuntimeSchedule.decode(
            b'{"type": "schedule", "seq": 3, "srp": 0.5, "interval_s": 0.1}'
        )
        assert schedule.slots == ()


class TestControlFuzz:
    def test_mark_corruption_never_crashes(self):
        rng = np.random.default_rng(99)
        for _ in range(N_ROUNDS):
            payload = bytearray(
                encode_mark(f"client-{rng.integers(0, 9)}",
                            int(rng.integers(0, 1000)))
            )
            pos = int(rng.integers(0, len(payload)))
            payload[pos] ^= 1 << int(rng.integers(0, 8))
            try:
                raw = decode_control(bytes(payload[:len(payload) - int(
                    rng.integers(0, 4))]))
            except SchedulingError:
                continue
            assert isinstance(raw, dict)
            assert isinstance(raw["type"], str)

    @pytest.mark.parametrize("payload", [
        b"7", b"[]", b'"mark"', b"null",
        b'{"type": 3}', b'{"type": null}', b"{}",
    ])
    def test_shape_attacks_rejected(self, payload):
        with pytest.raises(SchedulingError):
            decode_control(payload)
