"""Chaos suite: the live runtime under injected faults.

The acceptance contract: under origin kill, client vanish, and UDP
blackout, surviving clients keep scheduling and fetching, dead clients
are evicted within the liveness window, and there are zero unhandled
exceptions, leaked tasks, or leaked sockets (run_strict asserts the
latter three on every scenario).
"""

import asyncio

import pytest

from repro.errors import ConfigurationError, ProxyProtocolError
from repro.faults.plan import ChurnEvent, FaultPlan, Window
from repro.runtime.chaos import ChaosShim
from repro.runtime.client import AsyncPowerClient
from repro.runtime.origin import SpeedTestOrigin
from repro.runtime.proxy import AsyncProxy, AsyncProxyConfig

from tests.runtime.conftest import run_strict


def _chaos_config(**overrides) -> AsyncProxyConfig:
    defaults = dict(
        burst_interval_s=0.05,
        dial_timeout_s=0.5,
        dial_retries=0,
        dial_backoff_base_s=0.01,
        silence_timeout_s=0.3,
        evict_timeout_s=0.8,
        reap_interval_s=0.05,
    )
    defaults.update(overrides)
    return AsyncProxyConfig(**defaults)


async def _fetch(client, proxy, origin_port, nbytes=30_000):
    return await client.fetch(
        "127.0.0.1", proxy.port, ("127.0.0.1", origin_port),
        request=f"GET {nbytes}\n".encode(), expect_bytes=nbytes,
        timeout_s=10.0,
    )


class TestClientVanish:
    @pytest.mark.timeout(60)
    def test_survivors_keep_scheduling_and_dead_client_is_evicted(self):
        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_chaos_config())
            await proxy.start()
            clients = [AsyncPowerClient(f"c{i}") for i in range(3)]
            for client in clients:
                await client.start()
            try:
                # Everyone registers and fetches once.
                await asyncio.gather(*(
                    _fetch(c, proxy, origin_port) for c in clients
                ))
                assert set(proxy._clients) == {"c0", "c1", "c2"}
                # c0 vanishes: heartbeats stop cold.
                clients[0].stop()
                heard_before = clients[1].schedules_heard
                # Wait past the eviction window.
                await asyncio.sleep(1.2)
                evicted = "c0" not in proxy._clients
                # Survivors still hear schedules and still fetch.
                survivor_payload = await _fetch(
                    clients[1], proxy, origin_port
                )
                heard_after = clients[1].schedules_heard
                return (
                    proxy, evicted, survivor_payload,
                    heard_before, heard_after,
                )
            finally:
                await proxy.stop()
                for client in clients:
                    client.stop()
                await origin.stop()

        (proxy, evicted, survivor_payload,
         heard_before, heard_after) = run_strict(scenario(), timeout_s=30.0)
        assert evicted
        assert proxy.evictions >= 1
        assert proxy.slots_reclaimed >= 1
        assert heard_after > heard_before
        assert len(survivor_payload) == 30_000
        assert proxy.scheduler_restarts == 0
        assert proxy._supervisor.failures == []


class TestOriginKill:
    @pytest.mark.timeout(60)
    def test_kill_refuses_new_fetches_and_restart_recovers(self):
        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_chaos_config())
            await proxy.start()
            client = AsyncPowerClient("c0")
            await client.start()
            try:
                before = await _fetch(client, proxy, origin_port)
                origin.kill()
                with pytest.raises(ProxyProtocolError,
                                   match="origin-unreachable"):
                    await _fetch(client, proxy, origin_port)
                await origin.restart()
                after = await _fetch(client, proxy, origin_port)
            finally:
                await proxy.stop()
                client.stop()
                await origin.stop()
            return before, after, proxy

        before, after, proxy = run_strict(scenario(), timeout_s=30.0)
        assert len(before) == 30_000
        assert len(after) == 30_000
        assert proxy.scheduler_restarts == 0
        assert proxy._supervisor.failures == []

    @pytest.mark.timeout(60)
    def test_kill_mid_transfer_does_not_crash_the_proxy(self):
        async def scenario():
            origin = SpeedTestOrigin(pace_s=0.02)  # slow stream
            origin_port = await origin.start()
            proxy = AsyncProxy(_chaos_config())
            await proxy.start()
            client = AsyncPowerClient("c0")
            await client.start()
            try:
                fetch = asyncio.create_task(
                    _fetch(client, proxy, origin_port, nbytes=500_000)
                )
                await asyncio.sleep(0.2)
                origin.kill()
                # The fetch ends short (origin aborted); the proxy
                # delivers what it buffered and survives.
                payload = await fetch
                assert len(payload) < 500_000
                await origin.restart()
                recovered = await _fetch(client, proxy, origin_port)
            finally:
                await proxy.stop()
                client.stop()
                await origin.stop()
            return recovered, proxy

        recovered, proxy = run_strict(scenario(), timeout_s=30.0)
        assert len(recovered) == 30_000
        assert proxy.scheduler_restarts == 0
        assert proxy._supervisor.failures == []


class TestBlackout:
    @pytest.mark.timeout(60)
    def test_schedule_blackout_degrades_but_data_flows(self):
        async def scenario():
            origin = SpeedTestOrigin()
            origin_port = await origin.start()
            proxy = AsyncProxy(_chaos_config())
            await proxy.start()
            shim = ChaosShim(
                FaultPlan(schedule_blackouts=(Window(0.0, 120.0),))
            )
            shim.install(proxy)
            client = AsyncPowerClient("c0")
            await client.start()
            try:
                payload = await _fetch(client, proxy, origin_port)
            finally:
                shim.uninstall()
                await proxy.stop()
                client.stop()
                await origin.stop()
            return payload, client, shim, proxy

        payload, client, shim, proxy = run_strict(scenario(), timeout_s=30.0)
        assert len(payload) == 30_000
        assert client.schedules_heard == 0
        assert shim.dropped_blackout > 0
        assert proxy._supervisor.failures == []


class TestChaosShim:
    def test_loss_decisions_replay_from_plan_and_seed(self):
        async def scenario():
            plan = FaultPlan(loss_rate=0.5)

            def decisions(seed):
                shim = ChaosShim(plan, seed=seed)
                shim.install(AsyncProxy())
                out = [
                    shim._filter(b"x", ("127.0.0.1", 1), "mark")
                    for _ in range(200)
                ]
                shim.uninstall()
                return out

            a, b = decisions(7), decisions(7)
            c = decisions(8)
            return a, b, c

        a, b, c = run_strict(scenario())
        assert a == b  # same (plan, seed) -> same decision stream
        assert a != c  # a different seed actually changes something
        assert 40 < a.count(False) < 160  # loss rate is roughly honored

    def test_actions_are_time_ordered(self):
        async def scenario():
            plan = FaultPlan(
                outages=(Window(2.0, 3.0),),
                churn=(ChurnEvent(0, 0.5, 2.5), ChurnEvent(1, 1.0, None)),
            )
            shim = ChaosShim(plan)
            clients = [AsyncPowerClient("a"), AsyncPowerClient("b")]
            actions = shim.actions(SpeedTestOrigin(), clients)
            return actions

        actions = run_strict(scenario())
        times = [at for at, _action, _i in actions]
        assert times == sorted(times)
        assert [a for _t, a, _i in actions] == [
            "client-vanish", "client-vanish", "origin-kill",
            "client-rejoin", "origin-restart",
        ]

    def test_churn_index_out_of_range_rejected(self):
        async def scenario():
            shim = ChaosShim(FaultPlan(churn=(ChurnEvent(3, 1.0, None),)))
            with pytest.raises(ConfigurationError, match="out of range"):
                shim.actions(None, [AsyncPowerClient("only")])

        run_strict(scenario())

    def test_double_install_rejected(self):
        async def scenario():
            shim = ChaosShim(FaultPlan(loss_rate=0.1))
            shim.install(AsyncProxy())
            with pytest.raises(ConfigurationError, match="already installed"):
                shim.install(AsyncProxy())
            shim.uninstall()

        run_strict(scenario())
