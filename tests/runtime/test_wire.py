"""Unit tests for the runtime wire format."""

import pytest

from repro.errors import SchedulingError
from repro.runtime.wire import (
    RuntimeSchedule,
    RuntimeSlot,
    decode_control,
    encode_mark,
)


def make_schedule():
    return RuntimeSchedule(
        seq=3,
        srp=123.456,
        interval_s=0.1,
        slots=(
            RuntimeSlot("client-0", 0.002, 0.02, 4096),
            RuntimeSlot("client-1", 0.023, 0.03, 8192),
        ),
    )


class TestRuntimeSchedule:
    def test_encode_decode_round_trip(self):
        schedule = make_schedule()
        assert RuntimeSchedule.decode(schedule.encode()) == schedule

    def test_slot_for(self):
        schedule = make_schedule()
        assert schedule.slot_for("client-1").nbytes == 8192
        assert schedule.slot_for("client-9") is None

    def test_decode_rejects_garbage(self):
        with pytest.raises(SchedulingError):
            RuntimeSchedule.decode(b"not json at all {")

    def test_decode_rejects_wrong_type(self):
        with pytest.raises(SchedulingError):
            RuntimeSchedule.decode(encode_mark("c", 1))


class TestControlDatagrams:
    def test_mark_round_trip(self):
        raw = decode_control(encode_mark("client-7", 42))
        assert raw == {"type": "mark", "client_id": "client-7", "seq": 42}

    def test_decode_control_requires_type(self):
        with pytest.raises(SchedulingError):
            decode_control(b"{}")

    def test_decode_control_rejects_garbage(self):
        with pytest.raises(SchedulingError):
            decode_control(b"\xff\xfe")
