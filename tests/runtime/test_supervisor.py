"""TaskSupervisor: restart-on-crash, exception retrieval, total teardown."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.runtime.supervisor import TaskSupervisor

from tests.runtime.conftest import run_strict


class TestSupervisedServices:
    def test_crashing_service_is_restarted(self):
        async def scenario():
            runs = []
            restarts = []
            supervisor = TaskSupervisor(
                restart_backoff_s=0.01,
                on_restart=lambda name, exc: restarts.append((name, exc)),
            )

            async def flaky():
                runs.append(1)
                if len(runs) < 3:
                    raise RuntimeError(f"crash #{len(runs)}")
                await asyncio.sleep(60)  # healthy at last

            supervisor.supervise("flaky", flaky)
            while len(runs) < 3:
                await asyncio.sleep(0.01)
            await supervisor.stop()
            return runs, restarts, supervisor

        runs, restarts, supervisor = run_strict(scenario())
        assert len(runs) == 3
        assert supervisor.restarts == 2
        assert [name for name, _exc in restarts] == ["flaky", "flaky"]
        assert all(
            isinstance(exc, RuntimeError) for _name, exc in restarts
        )

    def test_unexpected_return_is_restarted(self):
        async def scenario():
            runs = []
            supervisor = TaskSupervisor(restart_backoff_s=0.01)

            async def quitter():
                runs.append(1)
                if len(runs) >= 2:
                    await asyncio.sleep(60)
                # else: returns — a supervised service must never do that

            supervisor.supervise("quitter", quitter)
            while len(runs) < 2:
                await asyncio.sleep(0.01)
            await supervisor.stop()
            return runs, supervisor

        runs, supervisor = run_strict(scenario())
        assert supervisor.restarts == 1
        assert "returned unexpectedly" in str(supervisor.failures[0][1])

    def test_duplicate_service_name_rejected(self):
        async def scenario():
            supervisor = TaskSupervisor()

            async def service():
                await asyncio.sleep(60)

            supervisor.supervise("svc", service)
            with pytest.raises(ConfigurationError, match="already supervised"):
                supervisor.supervise("svc", service)
            await supervisor.stop()

        run_strict(scenario())

    def test_supervise_after_stop_rejected(self):
        async def scenario():
            supervisor = TaskSupervisor()
            await supervisor.stop()
            with pytest.raises(ConfigurationError, match="stopping"):
                supervisor.supervise("late", asyncio.Event().wait)

        run_strict(scenario())


class TestPlainTasks:
    def test_spawned_task_exception_is_retrieved(self):
        """A crashing relay task is reaped into .failures — never an
        'exception was never retrieved' report (run_strict asserts the
        loop handler stayed silent)."""

        async def scenario():
            supervisor = TaskSupervisor()

            async def doomed():
                raise ValueError("relay died")

            supervisor.spawn(doomed(), name="doomed")
            await asyncio.sleep(0.05)
            await supervisor.stop()
            return supervisor

        supervisor = run_strict(scenario())
        assert [name for name, _ in supervisor.failures] == ["doomed"]
        assert isinstance(supervisor.failures[0][1], ValueError)

    def test_stop_cancels_and_awaits_everything(self):
        async def scenario():
            supervisor = TaskSupervisor()
            cancelled = []

            async def relay(i):
                try:
                    await asyncio.sleep(60)
                except asyncio.CancelledError:
                    cancelled.append(i)
                    raise

            for i in range(5):
                supervisor.spawn(relay(i), name=f"relay-{i}")

            async def service():
                await asyncio.sleep(60)

            supervisor.supervise("svc", service)
            assert supervisor.pending == 6
            await asyncio.sleep(0)  # let every task reach its first await
            await supervisor.stop()
            return cancelled, supervisor

        cancelled, supervisor = run_strict(scenario())
        assert sorted(cancelled) == [0, 1, 2, 3, 4]
        assert supervisor.pending == 0

    def test_stop_is_idempotent(self):
        async def scenario():
            supervisor = TaskSupervisor()
            supervisor.spawn(asyncio.sleep(60), name="sleeper")
            await supervisor.stop()
            await supervisor.stop()
            return supervisor

        assert run_strict(scenario()).pending == 0
