"""Metric name compatibility between the live runtime and the simulator.

The runtime's whole observability story is that a live run and a
simulated run can be diffed instrument-by-instrument. This test runs
both and asserts that every non-``runtime.``-prefixed instrument the
live proxy emits exists under the *same name* in a simulator run
(``runtime.*`` names are the documented live-only extensions).
"""

import pytest

from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    run_experiment,
)
from repro.faults.plan import FaultPlan
from repro.obs import SimRecorder
from repro.runtime.loadtest import LoadTestConfig, run_loadtest

from tests.runtime.conftest import run_strict


def _instrument_names(snapshot: dict) -> set[str]:
    return {
        entry["name"]
        for section in ("counters", "gauges", "histograms")
        for entry in snapshot[section]
    }


#: Names both sides must emit in any non-trivial run — the shared
#: vocabulary pinned down so a rename on either side fails loudly.
SHARED_CORE = {
    "scheduler.queue_bytes",
    "scheduler.slot_lateness_s",
    "proxy.schedules_broadcast",
    "proxy.bursts",
    "proxy.burst_bytes",
    "client.schedules_heard",
}


@pytest.mark.timeout(120)
def test_runtime_metric_names_match_simulator():
    # A short simulated run with enough fault surface to emit the
    # reclaim/drop families too.
    sim_result = run_experiment(ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56)],
        burst_interval_s=0.1,
        duration_s=10.0,
        seed=0,
        faults=FaultPlan(loss_rate=0.3, silence_timeout_s=1.0),
    ))
    sim_names = _instrument_names(sim_result.obs.metrics.snapshot())

    recorder = SimRecorder()
    report = run_strict(
        run_loadtest(
            LoadTestConfig(
                clients=3, requests_per_client=2, bytes_per_request=16_000,
            ),
            obs=recorder,
        ),
        timeout_s=60.0,
    )
    runtime_names = _instrument_names(report.metrics)

    assert SHARED_CORE <= runtime_names
    assert SHARED_CORE <= sim_names
    shared = {n for n in runtime_names if not n.startswith("runtime.")}
    missing = shared - sim_names
    assert not missing, (
        "live runtime emits instrument names the simulator does not: "
        f"{sorted(missing)} (rename them or prefix with 'runtime.')"
    )
