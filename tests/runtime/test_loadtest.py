"""Load-test harness: concurrency acceptance + report plumbing.

The headline acceptance test drives >= 50 concurrent loopback clients
through the proxy and asserts, *from the obs metrics snapshot*, that no
per-client queue ever exceeded the high watermark by more than one read
chunk.
"""

import pytest

from repro.faults.plan import ChurnEvent, FaultPlan
from repro.obs import SimRecorder
from repro.runtime.loadtest import (
    LoadTestConfig,
    _broadcast_jitter,
    percentile,
    run_loadtest,
)
from repro.runtime.proxy import CHUNK, AsyncProxyConfig

from tests.runtime.conftest import run_strict


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 4.0
        assert percentile(values, 0.5) == 3.0  # rank round(0.5 * 3) = 2


class TestBroadcastJitter:
    def test_perfectly_periodic_is_zero(self):
        times = [0.0, 0.1, 0.2, 0.3]
        assert _broadcast_jitter(times, 0.1) == pytest.approx([0.0] * 3)

    def test_gap_deviation(self):
        assert _broadcast_jitter([0.0, 0.25], 0.1) == pytest.approx([0.15])

    def test_fewer_than_two_points(self):
        assert _broadcast_jitter([], 0.1) == []
        assert _broadcast_jitter([1.0], 0.1) == []


class TestLoadTest:
    @pytest.mark.timeout(120)
    def test_fifty_concurrent_clients_within_watermark(self):
        recorder = SimRecorder()
        config = LoadTestConfig(
            clients=50,
            requests_per_client=1,
            bytes_per_request=16_000,
            burst_interval_s=0.05,
            timeout_s=60.0,
        )
        report = run_strict(
            run_loadtest(config, obs=recorder), timeout_s=90.0
        )
        assert report.clients == 50
        assert report.requests_ok == 50
        assert report.requests_failed == 0
        assert report.bytes_received == 50 * 16_000
        assert not report.watermark_exceeded
        assert report.scheduler_restarts == 0
        # Watermark honored, asserted from the obs metrics snapshot:
        # every per-client queue-peak gauge stays within high + CHUNK.
        peaks = [
            g["value"] for g in report.metrics["gauges"]
            if g["name"] == "runtime.queue_peak_bytes"
        ]
        assert peaks, "expected runtime.queue_peak_bytes gauges"
        assert max(peaks) <= report.queue_high_bytes + CHUNK
        assert report.peak_queue_bytes <= report.queue_high_bytes + CHUNK

    @pytest.mark.timeout(120)
    def test_report_under_churn_counts_eviction(self):
        plan = FaultPlan(churn=(ChurnEvent(0, 0.2, None),))
        config = LoadTestConfig(
            clients=4,
            requests_per_client=30,
            bytes_per_request=8_000,
            burst_interval_s=0.05,
            timeout_s=30.0,
            plan=plan,
            proxy=AsyncProxyConfig(
                burst_interval_s=0.05,
                silence_timeout_s=0.3,
                evict_timeout_s=0.8,
                reap_interval_s=0.05,
            ),
        )
        report = run_strict(run_loadtest(config), timeout_s=90.0)
        # Survivors finished their full request quota.
        assert report.requests_ok >= 3 * 30
        assert report.scheduler_restarts == 0
        # The vanished client aged out of the schedule.
        assert report.slots_reclaimed >= 1
        assert report.evictions >= 1

    def test_summary_rows_shape(self):
        config = LoadTestConfig(
            clients=2, requests_per_client=1, bytes_per_request=4_000,
        )
        report = run_strict(run_loadtest(config), timeout_s=60.0)
        [row] = report.summary_rows()
        assert row["clients"] == 2
        assert row["ok"] == 2
        assert set(row) == {
            "clients", "requests", "ok", "failed", "req_per_s",
            "p50_ms", "p99_ms", "jitter_p99_ms", "peak_queue_kib",
            "refused", "evicted", "restarts",
        }
