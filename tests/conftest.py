"""Shared pytest wiring: golden re-blessing and test tiers.

Tiers:

* ``tier1`` (implicit) — the fast suite CI gates every commit on.
* ``slow`` — golden-trace and simulation-level property suites.
* ``bench`` — timing benchmarks under ``benchmarks/``.

Anything not explicitly marked ``slow`` or ``bench`` is auto-marked
``tier1``, so ``pytest -m tier1`` and the default ``addopts``
deselection stay in sync without per-test annotations.
"""

import pathlib

import pytest

TESTS_DIR = pathlib.Path(__file__).parent


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/obs/goldens from the current run "
        "instead of comparing against it",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if TESTS_DIR not in pathlib.Path(str(item.fspath)).parents:
            continue
        marks = {mark.name for mark in item.iter_markers()}
        if not marks & {"slow", "bench"}:
            item.add_marker(pytest.mark.tier1)
