"""CampusTopology / MobilityPlan / HandoffSpec configuration contract."""

import pytest

from repro.campus import CampusTopology, HandoffSpec, MobilityPlan
from repro.errors import ConfigurationError


class TestMobilityPlan:
    def test_round_trip(self):
        plan = MobilityPlan(roam_rate=0.25, epoch_s=2.0)
        assert MobilityPlan.from_dict(plan.to_dict()) == plan

    def test_disabled_by_default(self):
        assert not MobilityPlan().enabled
        assert MobilityPlan(roam_rate=0.01).enabled

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rejects_bad_rate(self, rate):
        with pytest.raises(ConfigurationError):
            MobilityPlan(roam_rate=rate)

    def test_rejects_bad_epoch(self):
        with pytest.raises(ConfigurationError):
            MobilityPlan(epoch_s=0.0)

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            MobilityPlan.from_dict({"roam_rate": 0.1, "speed": 3})


class TestHandoffSpec:
    def test_round_trip(self):
        spec = HandoffSpec(policy="drain", latency_s=0.05)
        assert HandoffSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            HandoffSpec(policy="teleport")

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            HandoffSpec(latency_s=-0.001)


class TestCampusTopology:
    def test_round_trip_nested(self):
        campus = CampusTopology(
            n_cells=4,
            mobility=MobilityPlan(roam_rate=0.1, epoch_s=0.5),
            handoff=HandoffSpec(policy="drain", latency_s=0.03),
        )
        assert CampusTopology.from_dict(campus.to_dict()) == campus

    def test_round_trip_minimal(self):
        campus = CampusTopology()
        assert CampusTopology.from_dict(campus.to_dict()) == campus

    @pytest.mark.parametrize("n_cells", [0, -1, 33, True, 2.0])
    def test_rejects_bad_cell_count(self, n_cells):
        with pytest.raises(ConfigurationError):
            CampusTopology(n_cells=n_cells)

    def test_rejects_mobility_without_cells(self):
        with pytest.raises(ConfigurationError):
            CampusTopology(n_cells=1, mobility=MobilityPlan(roam_rate=0.5))

    def test_trivial(self):
        assert CampusTopology().trivial
        assert CampusTopology(n_cells=1, mobility=MobilityPlan()).trivial
        assert not CampusTopology(n_cells=2).trivial
        assert not CampusTopology(
            n_cells=2, mobility=MobilityPlan(roam_rate=0.1)
        ).trivial
