"""Property tests for the campus sharding invariants.

Two invariants the paper's single-AP scheduler takes for granted, and
that sharding could silently break:

* **Partition** — at every instant, every client belongs to exactly one
  proxy shard (the cells' ``client_ips`` sets partition the client set).
* **Slot locality** — a shard never grants a burst slot to a client it
  does not currently own; a roamed-away client must get its slots from
  its new cell only.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campus import CampusTopology, HandoffSpec, MobilityPlan
from repro.core.scheduler import DynamicScheduler
from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    run_experiment,
)
from repro.experiments.scenarios import (
    ScenarioConfig,
    build_scenario,
    client_ip,
)

N_CLIENTS = 6
N_CELLS = 3


def _campus() -> CampusTopology:
    return CampusTopology(
        n_cells=N_CELLS,
        mobility=MobilityPlan(roam_rate=0.6, epoch_s=0.2),
        handoff=HandoffSpec(policy="transfer", latency_s=0.02),
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_client_in_exactly_one_shard(seed):
    """The shards partition the client set at every mobility epoch."""
    scenario = build_scenario(
        ScenarioConfig(n_clients=N_CLIENTS, seed=seed, campus=_campus())
    )
    all_ips = {client_ip(i) for i in range(N_CLIENTS)}
    scenario.mobility.start()
    violations: list[str] = []

    def check() -> None:
        owned = [cell.proxy.client_ips for cell in scenario.cells]
        union = set().union(*owned)
        if union != all_ips or sum(len(s) for s in owned) != N_CLIENTS:
            violations.append(
                f"t={scenario.sim.now}: shards {owned} do not "
                f"partition {sorted(all_ips)}"
            )

    # Sample just after each epoch's handoffs have been issued, and
    # again mid-gap, so the radio-gap window is covered too.
    t = 0.01
    while t < 3.0:
        scenario.sim.call_at(t, check)
        scenario.sim.call_at(t + 0.1, check)
        t += 0.2
    scenario.sim.run(until=3.0)
    assert scenario.handoff.handoffs > 0, "mobility should have roamed"
    assert not violations, violations[0]


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_no_slot_granted_outside_own_cell(seed):
    """Every burst slot names a client the granting shard owns."""
    records: list[tuple[float, frozenset, frozenset]] = []
    original = DynamicScheduler.build_schedule

    def probe(self, srp):
        schedule = original(self, srp)
        records.append(
            (
                srp,
                frozenset(slot.client_ip for slot in schedule.slots),
                frozenset(self.proxy.client_ips),
            )
        )
        return schedule

    DynamicScheduler.build_schedule = probe
    try:
        result = run_experiment(
            ExperimentConfig(
                clients=[ClientSpec("video", video_kbps=56)] * N_CLIENTS,
                burst_interval_s=0.25,
                duration_s=3.0,
                warmup_s=0.2,
                start_stagger_s=0.05,
                seed=seed,
                campus=_campus(),
                obs_mode="off",
            )
        )
    finally:
        DynamicScheduler.build_schedule = original

    assert result.handoffs > 0, "mobility should have roamed"
    assert records, "schedulers should have built schedules"
    for srp, slot_ips, owned in records:
        strays = slot_ips - owned
        assert not strays, (
            f"schedule at srp={srp} grants slots to {sorted(strays)} "
            "which the shard does not own"
        )
