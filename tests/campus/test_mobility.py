"""MobilityModel: seeded roaming, exclusive streams, disabled = free."""

import pytest

from repro.campus import MOBILITY_STREAM_PREFIX, MobilityModel, MobilityPlan
from repro.errors import ConfigurationError
from repro.sim.core import Simulator
from repro.sim.random import RngStreams

IPS = ["10.0.1.1", "10.0.1.2", "10.0.1.3"]


def _roam_log(seed: int, until: float = 3.0) -> list[tuple]:
    sim = Simulator()
    streams = RngStreams(seed=seed)
    log: list[tuple] = []

    def on_roam(ip, old, new):
        log.append((round(sim.now, 9), ip, old, new))

    model = MobilityModel(
        sim,
        MobilityPlan(roam_rate=0.5, epoch_s=0.25),
        3,
        IPS,
        streams,
        on_roam=on_roam,
    )
    model.start()
    sim.run(until=until)
    return log


def test_same_seed_same_trajectory():
    first = _roam_log(seed=11)
    assert first, "roam_rate=0.5 over 12 epochs should roam someone"
    assert first == _roam_log(seed=11)


def test_different_seed_different_trajectory():
    assert _roam_log(seed=11) != _roam_log(seed=12)


def test_initial_placement_round_robin():
    sim = Simulator()
    model = MobilityModel(
        sim, None, 2, IPS, RngStreams(seed=0), on_roam=lambda *a: None
    )
    assert [model.cell_of(ip) for ip in IPS] == [0, 1, 0]


def test_disabled_plan_creates_no_streams():
    """No mobility → no reserved streams, no process: replays that
    predate the campus layer stay byte-identical."""
    sim = Simulator()
    streams = RngStreams(seed=0)
    for plan in (None, MobilityPlan(roam_rate=0.0)):
        model = MobilityModel(
            sim, plan, 2, IPS, streams, on_roam=lambda *a: None
        )
        model.start()
    sim.run(until=5.0)
    assert not any(
        name.startswith(MOBILITY_STREAM_PREFIX) for name in streams._streams
    )


def test_enabled_needs_two_cells():
    with pytest.raises(ConfigurationError):
        MobilityModel(
            Simulator(),
            MobilityPlan(roam_rate=0.5),
            1,
            IPS,
            RngStreams(seed=0),
            on_roam=lambda *a: None,
        )


def test_roam_targets_are_other_cells():
    sim = Simulator()
    streams = RngStreams(seed=3)
    moves: list[tuple] = []
    model = MobilityModel(
        sim,
        MobilityPlan(roam_rate=1.0, epoch_s=0.5),
        4,
        IPS,
        streams,
        on_roam=lambda ip, old, new: moves.append((old, new)),
    )
    model.start()
    sim.run(until=4.0)
    assert moves
    assert all(old != new for old, new in moves)
    assert all(0 <= new < 4 for _, new in moves)


def test_residency_timeline_tracks_roams():
    sim = Simulator()
    streams = RngStreams(seed=5)
    model = MobilityModel(
        sim,
        MobilityPlan(roam_rate=1.0, epoch_s=1.0),
        2,
        IPS[:2],
        streams,
        on_roam=lambda *a: None,
    )
    model.start()
    sim.run(until=2.5)
    residency = model.residency()
    for ip in IPS[:2]:
        steps = residency[ip]
        assert steps[0][0] == 0.0
        # roam_rate=1.0: every epoch flips the cell.
        assert len(steps) == 3
        labels = [label for _, label in steps]
        assert all(label in ("c0", "c1") for label in labels)
        assert all(a != b for a, b in zip(labels, labels[1:]))
