"""Differential proof that the campus layer is a strict superset.

A 1-cell campus with mobility disabled must be *byte-identical* to the
pre-campus simulator: same metrics JSON, same event stream, down to the
digests pinned by the golden suite. This is the strongest statement the
repo can make that bolting on the campus machinery changed nothing for
every existing experiment.
"""

import json
from pathlib import Path

import pytest

from repro.campus import CampusTopology, HandoffSpec, MobilityPlan
from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    run_experiment,
)
from repro.obs import digest, events_jsonl, metrics_json

DIGEST_FILE = (
    Path(__file__).parent.parent / "obs" / "goldens" / "digests.json"
)


def _dynamic_config(campus) -> ExperimentConfig:
    """The golden suite's 'dynamic' scenario, plus a campus field."""
    return ExperimentConfig(
        clients=[ClientSpec("video", video_kbps=56), ClientSpec("web")],
        burst_interval_s=0.1,
        duration_s=2.0,
        warmup_s=0.2,
        start_stagger_s=0.3,
        seed=3,
        campus=campus,
    )


def _exports(campus) -> dict[str, str]:
    result = run_experiment(_dynamic_config(campus))
    return {
        "metrics.json": metrics_json(result.obs),
        "events.jsonl": events_jsonl(result.obs),
    }


@pytest.mark.parametrize(
    "campus",
    [
        CampusTopology(),
        CampusTopology(n_cells=1, mobility=MobilityPlan(roam_rate=0.0)),
        CampusTopology(n_cells=1, handoff=HandoffSpec(policy="drain")),
    ],
    ids=["default", "disabled-mobility", "drain-policy"],
)
def test_trivial_campus_matches_dynamic_golden(campus):
    """1-cell campus reproduces the stored 'dynamic' golden digests."""
    digests = json.loads(DIGEST_FILE.read_text())["dynamic"]
    produced = _exports(campus)
    for suffix, text in produced.items():
        assert digest(text) == digests[suffix], (
            f"trivial campus diverged from the dynamic golden in {suffix}: "
            "the campus layer is supposed to be a no-op at 1 cell"
        )


def test_trivial_campus_matches_no_campus_run():
    """campus=None and campus=trivial produce identical bytes."""
    assert _exports(None) == _exports(CampusTopology())
