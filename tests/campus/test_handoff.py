"""HandoffCoordinator: queue migration, slot release, radio gap."""

import pytest

from repro.campus import CampusTopology, HandoffSpec
from repro.errors import ConfigurationError
from repro.experiments.scenarios import (
    ScenarioConfig,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.packet import Packet


def _scenario(policy: str = "transfer", latency_s: float = 0.02):
    return build_scenario(
        ScenarioConfig(
            n_clients=4,
            campus=CampusTopology(
                n_cells=2,
                handoff=HandoffSpec(policy=policy, latency_s=latency_s),
            ),
        )
    )


def _buffer_udp(proxy, dst_ip: str, nbytes: int) -> None:
    queue = proxy.queue_for(dst_ip)
    queue.push_udp(
        Packet(
            "udp",
            src=Endpoint("10.0.2.3", 5004),
            dst=Endpoint(dst_ip, 5004),
            payload_size=nbytes,
        )
    )


def test_initial_partition_round_robin():
    scenario = _scenario()
    assert scenario.cells[0].proxy.client_ips == {client_ip(0), client_ip(2)}
    assert scenario.cells[1].proxy.client_ips == {client_ip(1), client_ip(3)}


def test_transfer_moves_backlog_and_membership():
    scenario = _scenario(policy="transfer")
    ip = client_ip(0)
    _buffer_udp(scenario.cells[0].proxy, ip, 700)
    _buffer_udp(scenario.cells[0].proxy, ip, 300)

    scenario.handoff.handoff(ip, 0, 1)

    assert ip not in scenario.cells[0].proxy.client_ips
    assert ip in scenario.cells[1].proxy.client_ips
    new_queue = scenario.cells[1].proxy.queue_for(ip)
    assert new_queue.bytes_pending == 1000
    assert new_queue.udp_bytes_pending == 1000
    assert scenario.handoff.handoffs == 1
    assert scenario.handoff.bytes_transferred == 1000
    assert scenario.handoff.bytes_dropped == 0


def test_drain_drops_backlog():
    scenario = _scenario(policy="drain")
    ip = client_ip(0)
    _buffer_udp(scenario.cells[0].proxy, ip, 700)

    scenario.handoff.handoff(ip, 0, 1)

    assert scenario.cells[1].proxy.queue_for(ip).bytes_pending == 0
    assert scenario.handoff.bytes_transferred == 0
    assert scenario.handoff.bytes_dropped == 700


def test_radio_gap_then_reattach():
    scenario = _scenario(latency_s=0.02)
    ip = client_ip(0)
    iface = scenario.handoff.client_ifaces[ip]
    assert iface.channel is scenario.cells[0].medium

    scenario.handoff.handoff(ip, 0, 1)

    # Mid-gap: attached to neither medium; uplink attempts are swallowed.
    assert iface.channel is not scenario.cells[0].medium
    assert iface.channel is not scenario.cells[1].medium
    iface.channel.transmit(
        iface,
        Packet(
            "udp",
            src=Endpoint(ip, 5005),
            dst=Endpoint("10.0.2.3", 5005),
            payload_size=10,
        ),
    )
    assert scenario.handoff.gap_tx_drops == 1
    assert ip in scenario.cells[0].medium.departed

    scenario.sim.run(until=0.05)
    assert iface.channel is scenario.cells[1].medium


def test_second_roam_during_gap_supersedes_first():
    scenario = _scenario(latency_s=0.02)
    ip = client_ip(0)
    iface = scenario.handoff.client_ifaces[ip]
    scenario.handoff.handoff(ip, 0, 1)
    scenario.handoff.handoff(ip, 1, 0)
    scenario.sim.run(until=0.1)
    # Only the second gap's attach fires; the first is superseded.
    assert iface.channel is scenario.cells[0].medium
    assert ip in scenario.cells[1].proxy.client_ips or (
        ip in scenario.cells[0].proxy.client_ips
    )
    assert ip in scenario.cells[0].proxy.client_ips
    assert ip not in scenario.cells[1].proxy.client_ips


def test_same_cell_handoff_rejected():
    scenario = _scenario()
    with pytest.raises(ConfigurationError):
        scenario.handoff.handoff(client_ip(0), 0, 0)


def test_departed_downlink_counts_as_handoff_miss():
    scenario = _scenario()
    ip = client_ip(0)
    scenario.handoff.handoff(ip, 0, 1)
    missed_before = scenario.cells[0].medium.frames_missed

    # A straggler frame for the departed client arrives at the old AP.
    scenario.cells[0].ap.wireless.send(
        Packet(
            "udp",
            src=Endpoint("10.0.2.3", 5004),
            dst=Endpoint(ip, 5004),
            payload_size=100,
        )
    )
    scenario.sim.run(until=0.5)
    assert scenario.cells[0].medium.frames_missed > missed_before
    assert scenario.counters.totals().get("campus.handoff_miss", 0) >= 1
