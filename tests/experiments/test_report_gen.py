"""Tests for the EXPERIMENTS.md generator."""

import json

import pytest

from repro.experiments.report_gen import generate_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "figure4.json").write_text(
        json.dumps(
            [
                {
                    "figure": "4", "interval": "500ms", "pattern": "56K",
                    "avg_saved_pct": 81.6, "min_saved_pct": 81.3,
                    "max_saved_pct": 81.9, "avg_loss_pct": 0.0,
                    "max_loss_pct": 0.0, "downshifts": 0,
                }
            ]
        )
    )
    (tmp_path / "memory_footprint.json").write_text(
        json.dumps(
            {
                "experiment": "memory-footprint",
                "peak_buffer_bytes": 400000,
                "claimed_bound_bytes": 524288,
                "within_claim": True,
            }
        )
    )
    return tmp_path


def test_report_contains_present_sections(results_dir):
    text = generate_report(results_dir)
    assert "Figure 4" in text
    assert "81.6" in text
    assert "proxy memory" in text
    # absent results produce no section
    assert "Figure 6" not in text


def test_report_handles_empty_dir(tmp_path):
    text = generate_report(tmp_path)
    assert "EXPERIMENTS" in text


def test_write_report(results_dir, tmp_path):
    out = write_report(results_dir=results_dir, output=tmp_path / "EXP.md")
    assert out.exists()
    assert "Figure 4" in out.read_text()


def test_markdown_tables_well_formed(results_dir):
    text = generate_report(results_dir)
    for line in text.splitlines():
        if line.startswith("|"):
            assert line.endswith("|")
