"""Integration tests for the experiment runner (small scale)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    ClientSpec,
    ExperimentConfig,
    mixed,
    run_experiment,
    video_only,
)
from repro.units import mib


class TestConfigValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientSpec("torrent")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scheduler="mystery")

    def test_empty_clients_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(clients=[])

    def test_static_needs_fixed_interval(self):
        config = ExperimentConfig(
            clients=[ClientSpec("video")], scheduler="static",
            burst_interval_s=None, duration_s=5.0,
        )
        with pytest.raises(ConfigurationError):
            run_experiment(config)


class TestVideoExperiments:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            video_only([56, 56, 256], burst_interval_s=0.25,
                       duration_s=15.0, seed=3)
        )

    def test_all_clients_reported(self, result):
        assert len(result.reports) == 3
        assert result.summary.count == 3

    def test_savings_substantial_and_bounded(self, result):
        for report in result.reports:
            assert 30.0 < report.energy_saved_pct < 95.0

    def test_lower_rate_saves_more(self, result):
        saved = [r.energy_saved_pct for r in result.reports]
        assert saved[0] > saved[2]  # 56K beats 256K

    def test_loss_is_low(self, result):
        assert result.summary.avg_loss_pct < 3.0

    def test_optimal_dominates(self, result):
        for report in result.reports:
            assert report.optimal_saved_pct is not None
            assert report.optimal_saved_pct > report.energy_saved_pct

    def test_energy_breakdown_consistency(self, result):
        for report in result.reports:
            assert report.breakdown.duration_s == pytest.approx(
                result.duration_s, rel=0.01
            )
            assert report.breakdown.energy_j < report.naive.energy_j

    def test_clients_received_stream_data(self, result):
        for report in result.reports:
            assert report.extra["app_bytes"] > 0

    def test_determinism(self):
        config = video_only([56], burst_interval_s=0.25, duration_s=5.0, seed=9)
        a = run_experiment(config)
        b = run_experiment(config)
        assert a.reports[0].energy_j == b.reports[0].energy_j
        assert a.medium_frames == b.medium_frames


class TestMixedExperiments:
    def test_web_clients_browse_and_save(self):
        result = run_experiment(
            mixed([56], n_web=1, burst_interval_s=0.25, duration_s=20.0, seed=4)
        )
        web = [r for r in result.reports if r.kind == "web"][0]
        assert web.extra["objects_loaded"] > 0
        assert web.energy_saved_pct > 40.0
        assert result.tcp_summary.count == 1

    def test_ftp_download_completes(self):
        result = run_experiment(
            ExperimentConfig(
                clients=[ClientSpec("ftp", ftp_bytes=mib(1))],
                burst_interval_s=0.25, duration_s=30.0, seed=5,
            )
        )
        report = result.reports[0]
        assert report.extra["done"]
        assert report.extra["transfer_time_s"] < 25.0

    def test_naive_clients_mode(self):
        result = run_experiment(
            ExperimentConfig(
                clients=[ClientSpec("video")], burst_interval_s=0.25,
                duration_s=10.0, seed=6, power_aware_clients=False,
            )
        )
        assert result.reports[0].energy_saved_pct == pytest.approx(0.0, abs=1.0)

    def test_static_scheduler_runs(self):
        result = run_experiment(
            ExperimentConfig(
                clients=[ClientSpec("video")] * 2,
                burst_interval_s=0.1, scheduler="static",
                duration_s=10.0, seed=7,
            )
        )
        for report in result.reports:
            assert report.energy_saved_pct > 30.0

    def test_fixed_compensator_with_clock_error_misses(self):
        good = run_experiment(
            ExperimentConfig(
                clients=[ClientSpec("video")], burst_interval_s=0.25,
                duration_s=15.0, seed=8, compensator="fixed",
                fixed_clock_offset_error_s=0.0,
            )
        )
        bad = run_experiment(
            ExperimentConfig(
                clients=[ClientSpec("video")], burst_interval_s=0.25,
                duration_s=15.0, seed=8, compensator="fixed",
                fixed_clock_offset_error_s=0.05,
            )
        )
        # A 50 ms clock error on absolute timestamps wrecks reception.
        assert (
            bad.reports[0].missed_schedules
            > good.reports[0].missed_schedules
        )
