"""Unit tests for the scenario builder."""

import pytest

from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket


class TestBuildScenario:
    def test_default_shape(self):
        scenario = build_scenario(ScenarioConfig(n_clients=3, seed=0))
        assert len(scenario.clients) == 3
        assert scenario.proxy.client_ips == {client_ip(i) for i in range(3)}
        assert len(scenario.servers) == 3
        assert scenario.monitor.wireless.promiscuous

    def test_end_to_end_wiring_server_to_client(self):
        """A UDP datagram can cross servers->proxy->AP->client (when the
        proxy is not intercepting that port... it intercepts all client-
        bound udp, so verify it lands in the proxy queue)."""
        scenario = build_scenario(ScenarioConfig(n_clients=1, seed=0))
        UdpSocket(scenario.video_server, 30000).sendto(
            123, Endpoint(client_ip(0), 5004)
        )
        scenario.sim.run(until=0.5)
        assert scenario.proxy.queue_for(client_ip(0)).bytes_pending == 123

    def test_client_to_server_path(self):
        scenario = build_scenario(ScenarioConfig(n_clients=1, seed=0))
        received = []
        UdpSocket(
            scenario.video_server, 31000,
            on_receive=lambda p: received.append(p.payload_size),
        )
        UdpSocket(scenario.clients[0].node, 6000).sendto(
            77, Endpoint(VIDEO_SERVER_IP, 31000)
        )
        scenario.sim.run(until=0.5)
        assert received == [77]

    def test_determinism(self):
        def run(seed):
            scenario = build_scenario(ScenarioConfig(n_clients=2, seed=seed))
            UdpSocket(scenario.video_server, 30000).sendto(
                100, Endpoint(client_ip(0), 5004)
            )
            scenario.sim.run(until=1.0)
            return [
                (f.start, f.end, f.dst_ip) for f in scenario.monitor.frames
            ]

        assert run(5) == run(5)

    def test_different_seed_changes_timing(self):
        def run(seed):
            scenario = build_scenario(ScenarioConfig(n_clients=1, seed=seed))
            sock = UdpSocket(scenario.video_server, 30000)
            # several packets so jitter draws differ
            for i in range(5):
                sock.sendto(100, Endpoint(client_ip(0), 5004))
            scenario.sim.run(until=1.0)
            # packets are buffered; look at wired arrival time via trace
            return scenario.proxy.queue_for(client_ip(0)).total_enqueued_bytes

        # volume identical regardless of seed (determinism of workload)
        assert run(1) == run(2)
