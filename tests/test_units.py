"""Unit-helper properties: round trips, identities, and error taxonomy."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.errors import ConfigurationError


class TestTime:
    def test_ms_us_scale(self):
        assert units.ms(1) == 1e-3
        assert units.us(1) == 1e-6
        assert units.ms(1000) == 1.0
        assert units.minutes(2) == 120.0

    def test_seconds_identity(self):
        assert units.seconds(3.5) == 3.5

    @given(st.integers(min_value=0, max_value=10**6))
    def test_ms_us_consistent_on_integers(self, n):
        assert units.ms(n) == pytest.approx(units.us(n * 1000))

    def test_common_constants_are_bit_exact(self):
        """The UNI001 sweep replaced literals; values must not drift."""
        assert units.ms(6) == 0.006
        assert units.ms(4) == 0.004
        assert units.ms(12) == 0.012
        assert units.ms(10) == 0.010
        assert units.ms(40) == 0.04
        assert units.ms(100) == 0.1
        assert units.ms(500) == 0.5
        assert units.ms(1.5) == 0.0015
        assert units.ms(0.8) == 0.0008
        assert units.ms(0.4) == 0.0004
        assert units.us(500) == 0.0005
        assert units.us(900) == 0.0009
        assert units.us(300) == 0.0003


class TestSizes:
    def test_kib_mib(self):
        assert units.kib(1) == 1024
        assert units.kib(64) == 65536
        assert units.mib(1) == 1024 * 1024
        assert units.mib(2) == 2 * units.MB

    @given(st.integers(min_value=0, max_value=4096))
    def test_mib_is_1024_kib(self, n):
        assert units.mib(n) == units.kib(n * 1024)


class TestRates:
    def test_prefixes_are_decimal(self):
        assert units.kbps(56) == 56_000.0
        assert units.mbps(11) == 11_000_000.0
        assert units.bps(5.0) == 5.0

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_mbps_is_1000_kbps(self, rate):
        assert units.mbps(rate) == pytest.approx(units.kbps(rate * 1000.0))

    def test_bytes_per_second(self):
        assert units.bytes_per_second(units.mbps(8)) == 1_000_000.0

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=1.0, max_value=1e9, allow_nan=False),
    )
    def test_transmit_time_round_trip(self, size, rate):
        t = units.transmit_time(size, rate)
        assert t >= 0.0
        assert t * rate == pytest.approx(size * 8.0)

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_transmit_time_rejects_bad_rate(self, rate):
        with pytest.raises(ConfigurationError):
            units.transmit_time(100, rate)


class TestEnergy:
    def test_mj_and_joules(self):
        assert units.mj(1500) == 1.5
        assert units.joules(2.0) == 2.0

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_mj_round_trip(self, value):
        assert units.mj(value) * 1e3 == pytest.approx(value)
