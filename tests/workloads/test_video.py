"""Unit tests for the VBR video workload."""

import pytest

from repro.errors import ConfigurationError
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket
from repro.sim import RngStreams, Simulator
from repro.units import kbps
from repro.workloads.video import (
    EFFECTIVE_BITRATE_BPS,
    VideoClientApp,
    VideoServerApp,
    VideoStreamConfig,
)

from tests.net.helpers import wire_pair


def make_stream(sim, server, client, nominal=56, duration=10.0, seed=1,
                adaptive=True, feedback=False, start_at=0.0):
    config = VideoStreamConfig(
        nominal_kbps=nominal, duration_s=duration, adaptive=adaptive
    )
    server_app = VideoServerApp(
        server,
        Endpoint(client.ip, 5004),
        config,
        rng=RngStreams(seed).get("video"),
        stream_id=0,
        start_at=start_at,
    )
    client_app = VideoClientApp(
        client,
        Endpoint(server.ip, 20000),
        feedback_endpoint=server_app.feedback_endpoint if feedback else None,
        local_port=5004,
    )
    return server_app, client_app


class TestVideoStreamConfig:
    def test_effective_bitrates_match_paper(self):
        assert EFFECTIVE_BITRATE_BPS[56] == kbps(34)
        assert EFFECTIVE_BITRATE_BPS[128] == kbps(80)
        assert EFFECTIVE_BITRATE_BPS[256] == kbps(225)
        assert EFFECTIVE_BITRATE_BPS[512] == kbps(450)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            VideoStreamConfig(nominal_kbps=300)

    def test_total_bytes(self):
        config = VideoStreamConfig(nominal_kbps=56, duration_s=119.0)
        assert config.total_bytes == int(kbps(34) * 119.0 / 8)

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            VideoStreamConfig(duration_s=0.0)


class TestVideoStreaming:
    def test_volume_near_effective_bitrate(self):
        sim, a, b, _ = wire_pair()
        server_app, client_app = make_stream(sim, a, b, nominal=256, duration=20.0)
        sim.run(until=25.0)
        expected = kbps(225) * 20.0 / 8
        assert client_app.bytes_received == pytest.approx(expected, rel=0.35)
        assert client_app.loss_fraction == 0.0

    def test_vbr_rate_varies_between_segments(self):
        sim, a, b, _ = wire_pair()
        arrivals = []
        UdpSocket(b, 6004, on_receive=lambda p: arrivals.append(sim.now))
        config = VideoStreamConfig(nominal_kbps=256, duration_s=10.0)
        VideoServerApp(
            a, Endpoint(b.ip, 6004), config,
            rng=RngStreams(3).get("video"), stream_id=1,
        )
        sim.run(until=11.0)
        # count packets per half-second segment: VBR should vary
        counts = {}
        for t in arrivals:
            counts.setdefault(int(t / 0.5), 0)
            counts[int(t / 0.5)] += 1
        assert len(set(counts.values())) > 1

    def test_deterministic_given_seed(self):
        def run(seed):
            sim, a, b, _ = wire_pair()
            server_app, client_app = make_stream(sim, a, b, seed=seed, duration=5.0)
            sim.run(until=6.0)
            return server_app.packets_sent

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_start_delay_respected(self):
        sim, a, b, _ = wire_pair()
        server_app, client_app = make_stream(sim, a, b, duration=5.0, start_at=2.0)
        sim.run(until=1.9)
        assert server_app.packets_sent == 0
        sim.run(until=8.0)
        assert server_app.packets_sent > 0

    def test_stream_stops_at_duration(self):
        sim, a, b, _ = wire_pair()
        server_app, _ = make_stream(sim, a, b, duration=3.0)
        sim.run(until=10.0)
        assert server_app.done


class TestAdaptation:
    def test_downshift_on_reported_loss(self):
        drop = {"rate": 0.0}
        import numpy as np

        rng = np.random.default_rng(5)

        def lossy(packet):
            return (
                packet.dst.port == 5004 and rng.random() < drop["rate"]
            )

        sim, a, b, _ = wire_pair(drop=lossy)
        server_app, client_app = make_stream(
            sim, a, b, nominal=512, duration=30.0, feedback=True
        )
        sim.run(until=5.0)
        assert server_app.current_tier == 512
        drop["rate"] = 0.25  # heavy loss begins
        sim.run(until=31.0)
        assert server_app.downshifts >= 1
        assert server_app.current_tier < 512

    def test_no_adaptation_when_disabled(self):
        import numpy as np

        rng = np.random.default_rng(5)

        def lossy(packet):
            return packet.dst.port == 5004 and rng.random() < 0.3

        sim, a, b, _ = wire_pair(drop=lossy)
        server_app, client_app = make_stream(
            sim, a, b, nominal=512, duration=10.0, adaptive=False,
            feedback=True,
        )
        sim.run(until=12.0)
        assert server_app.downshifts == 0
        assert server_app.current_tier == 512

    def test_loss_fraction_tracks_gaps(self):
        state = {"n": 0}

        def drop_every_fifth(packet):
            if packet.dst.port == 5004:
                state["n"] += 1
                return state["n"] % 5 == 0
            return False

        sim, a, b, _ = wire_pair(drop=drop_every_fifth)
        server_app, client_app = make_stream(sim, a, b, nominal=256, duration=10.0)
        sim.run(until=12.0)
        assert client_app.loss_fraction == pytest.approx(0.2, abs=0.06)
