"""Unit tests for the web browsing and FTP workloads."""

import pytest

from repro.net.addr import Endpoint
from repro.sim import RngStreams, Simulator
from repro.units import mib
from repro.workloads.ftp import FtpClientApp, FtpServerApp
from repro.workloads.web import (
    PageVisit,
    WebClientApp,
    WebScript,
    WebServerApp,
)

from tests.net.helpers import wire_pair


class TestWebScript:
    def test_generation_is_deterministic(self):
        a = WebScript.generate(RngStreams(4).get("web"))
        b = WebScript.generate(RngStreams(4).get("web"))
        assert a == b

    def test_different_seeds_differ(self):
        a = WebScript.generate(RngStreams(4).get("web"))
        b = WebScript.generate(RngStreams(5).get("web"))
        assert a != b

    def test_object_sizes_bounded(self):
        script = WebScript.generate(RngStreams(1).get("web"), n_pages=50)
        for visit in script.visits:
            assert len(visit.object_sizes) >= 1
            for size in visit.object_sizes:
                assert 1024 <= size <= 150 * 1024

    def test_zero_pages_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WebScript.generate(RngStreams(1).get("web"), n_pages=0)

    def test_total_bytes(self):
        script = WebScript(
            visits=(
                PageVisit((1000, 2000), 1.0),
                PageVisit((500,), 2.0),
            )
        )
        assert script.total_bytes == 3500


class TestWebBrowsing:
    def test_direct_browse_loads_all_pages(self):
        sim, a, b, _ = wire_pair()
        WebServerApp(b)
        script = WebScript(
            visits=(
                PageVisit((5000, 3000, 8000), 0.5),
                PageVisit((10_000,), 0.5),
            )
        )
        app = WebClientApp(a, Endpoint(b.ip, 80), script)
        sim.run(until=30.0)
        assert app.pages_loaded == 2
        assert app.objects_loaded == 4
        assert app.bytes_received == script.total_bytes
        assert len(app.page_latencies) == 2
        assert app.mean_object_latency > 0

    def test_stop_at_cuts_session_short(self):
        sim, a, b, _ = wire_pair()
        WebServerApp(b)
        script = WebScript(
            visits=tuple(PageVisit((2000,), 1.0) for _ in range(50))
        )
        app = WebClientApp(a, Endpoint(b.ip, 80), script, stop_at=5.0)
        sim.run(until=60.0)
        assert 0 < app.pages_loaded < 50

    def test_server_counters(self):
        sim, a, b, _ = wire_pair()
        server = WebServerApp(b)
        script = WebScript(visits=(PageVisit((4000, 6000), 0.1),))
        WebClientApp(a, Endpoint(b.ip, 80), script)
        sim.run(until=20.0)
        assert server.requests_served == 2
        assert server.bytes_served == 10_000


class TestFtp:
    def test_download_completes_and_times(self):
        sim, a, b, _ = wire_pair()
        FtpServerApp(b)
        app = FtpClientApp(a, Endpoint(b.ip, 21), file_size=mib(1), start_at=1.0)
        sim.run(until=60.0)
        assert app.done
        assert app.bytes_received == mib(1)
        assert app.started_at == pytest.approx(1.0)
        assert app.transfer_time_s > 0

    def test_bad_file_size_rejected(self):
        from repro.errors import ConfigurationError

        sim, a, b, _ = wire_pair()
        with pytest.raises(ConfigurationError):
            FtpClientApp(a, Endpoint(b.ip, 21), file_size=0)

    def test_server_counts_bytes(self):
        sim, a, b, _ = wire_pair()
        server = FtpServerApp(b)
        FtpClientApp(a, Endpoint(b.ip, 21), file_size=50_000)
        sim.run(until=30.0)
        assert server.files_served == 1
        assert server.bytes_served == 50_000
