"""Unit tests for client reports and the trace analyzer."""

import pytest

from repro.energy.analyzer import EnergyAnalyzer
from repro.energy.report import summarize
from repro.errors import TraceError
from repro.net.sniffer import FrameRecord
from repro.sim import Simulator, TraceRecorder
from repro.wnic import WAVELAN_2_4GHZ, Wnic


def frame(start, end, dst="10.0.1.1", src="10.0.0.254", payload=1000, **kw):
    defaults = dict(
        start=start, end=end, src_ip=src, src_port=5000, dst_ip=dst,
        dst_port=7000, proto="udp", wire_size=payload + 62,
        payload_size=payload, tos_marked=False, broadcast=False,
        packet_id=0, sender="ap",
    )
    defaults.update(kw)
    return FrameRecord(**defaults)


class TestAnalyzer:
    def test_requires_positive_duration(self):
        with pytest.raises(TraceError):
            EnergyAnalyzer([], WAVELAN_2_4GHZ, duration_s=0.0)

    def test_rx_intervals_include_broadcasts(self):
        frames = [
            frame(0.0, 0.1),
            frame(1.0, 1.1, dst="255.255.255.255", broadcast=True),
            frame(2.0, 2.1, dst="10.0.1.2"),
        ]
        analyzer = EnergyAnalyzer(frames, WAVELAN_2_4GHZ, 10.0)
        assert analyzer.rx_intervals("10.0.1.1") == [(0.0, 0.1), (1.0, 1.1)]

    def test_tx_intervals(self):
        frames = [frame(0.0, 0.1, src="10.0.1.1", dst="10.0.0.254")]
        analyzer = EnergyAnalyzer(frames, WAVELAN_2_4GHZ, 10.0)
        assert analyzer.tx_intervals("10.0.1.1") == [(0.0, 0.1)]

    def test_analyze_produces_consistent_report(self):
        sim = Simulator()
        wnic = Wnic(sim, "c1", start_asleep=True)
        sim.call_at(0.5, wnic.wake)
        sim.call_at(2.5, wnic.sleep)
        sim.run()
        frames = [frame(1.0, 1.2), frame(5.0, 5.2)]  # second missed
        analyzer = EnergyAnalyzer(frames, WAVELAN_2_4GHZ, 10.0)
        report = analyzer.analyze("c1", "10.0.1.1", wnic)
        assert report.breakdown.receive_s == pytest.approx(0.2)
        assert report.breakdown.idle_s == pytest.approx(1.8)
        assert report.breakdown.sleep_s == pytest.approx(8.0)
        assert report.packets_expected == 2
        assert report.energy_saved_pct > 0
        assert report.naive.receive_s == pytest.approx(0.4)

    def test_misses_counted_from_medium_trace(self):
        sim = Simulator()
        trace = TraceRecorder()
        trace.record(5.0, "medium.miss", dst="10.0.1.1", proto="udp",
                     size=1062, payload=1000, marked=False, broadcast=False,
                     packet_id=1)
        trace.record(6.0, "medium.miss", dst="10.0.1.2", proto="udp",
                     size=1062, payload=1000, marked=False, broadcast=False,
                     packet_id=2)
        wnic = Wnic(sim, "c1")
        frames = [frame(1.0, 1.2), frame(5.0, 5.2)]
        analyzer = EnergyAnalyzer(frames, WAVELAN_2_4GHZ, 10.0, trace=trace)
        report = analyzer.analyze("c1", "10.0.1.1", wnic)
        assert report.packets_missed == 1
        assert report.loss_pct == pytest.approx(50.0)
        assert report.bytes_received == 1000

    def test_broadcast_misses_not_counted_as_data_loss(self):
        sim = Simulator()
        trace = TraceRecorder()
        trace.record(5.0, "medium.miss", dst="10.0.1.1", proto="udp",
                     size=100, payload=50, marked=False, broadcast=True,
                     packet_id=1)
        wnic = Wnic(sim, "c1")
        analyzer = EnergyAnalyzer([frame(0.0, 0.1)], WAVELAN_2_4GHZ, 10.0,
                                  trace=trace)
        report = analyzer.analyze("c1", "10.0.1.1", wnic)
        assert report.packets_missed == 0


class TestReports:
    def _report(self, saved_target, loss=0.0):
        sim = Simulator()
        wnic = Wnic(sim, "c", start_asleep=True)
        analyzer = EnergyAnalyzer([frame(0.0, 0.1)], WAVELAN_2_4GHZ, 10.0)
        return analyzer.analyze("c", "10.0.1.1", wnic)

    def test_saved_pct_bounds(self):
        report = self._report(None)
        assert 0.0 <= report.energy_saved_pct <= 100.0

    def test_gap_to_optimal(self):
        sim = Simulator()
        wnic = Wnic(sim, "c", start_asleep=True)
        analyzer = EnergyAnalyzer([frame(0.0, 0.1)], WAVELAN_2_4GHZ, 10.0)
        report = analyzer.analyze(
            "c", "10.0.1.1", wnic, optimal_saved_pct=90.0
        )
        assert report.gap_to_optimal_pct == pytest.approx(
            90.0 - report.energy_saved_pct
        )

    def test_summarize(self):
        sim = Simulator()
        reports = []
        for _ in range(3):
            wnic = Wnic(sim, "c", start_asleep=True)
            analyzer = EnergyAnalyzer([frame(0.0, 0.1)], WAVELAN_2_4GHZ, 10.0)
            reports.append(analyzer.analyze("c", "10.0.1.1", wnic))
        summary = summarize(reports)
        assert summary.count == 3
        assert summary.min_saved_pct <= summary.avg_saved_pct <= summary.max_saved_pct

    def test_summarize_empty(self):
        summary = summarize([])
        assert summary.count == 0
