"""Tests for the postmortem policy replay (§4.1 methodology)."""

import pytest

from repro.core.bandwidth_model import calibrate
from repro.core.client import PowerAwareClient
from repro.core.delay_comp import AdaptiveCompensator
from repro.core.scheduler import DynamicScheduler
from repro.energy.replay import replay_policy, sweep_early_amounts
from repro.errors import TraceError
from repro.experiments.scenarios import (
    ScenarioConfig,
    VIDEO_SERVER_IP,
    build_scenario,
    client_ip,
)
from repro.net.addr import Endpoint
from repro.net.udp import UdpSocket
from repro.wnic.power import WAVELAN_2_4GHZ


@pytest.fixture(scope="module")
def capture():
    """A live run whose capture the replay tests chew on."""
    scenario = build_scenario(ScenarioConfig(n_clients=2, seed=31))
    scheduler = DynamicScheduler(
        scenario.proxy, calibrate(scenario.medium), interval_s=0.1
    )
    scenario.proxy.attach_scheduler(scheduler)
    scenario.proxy.start()
    daemons = []
    for handle in scenario.clients:
        daemons.append(
            PowerAwareClient(
                handle.node, handle.wnic, AdaptiveCompensator(early_s=0.006)
            )
        )
        handle.daemon = daemons[-1]
        UdpSocket(handle.node, 5004)
    sender = UdpSocket(scenario.video_server, 24000)

    def feed():
        while scenario.sim.now < 10.0:
            for index in (0, 1):
                sender.sendto(700, Endpoint(client_ip(index), 5004))
            yield scenario.sim.timeout(0.06)

    scenario.sim.process(feed())
    scenario.sim.run(until=10.5)
    return scenario


def test_empty_capture_rejected():
    with pytest.raises(TraceError):
        replay_policy([], "10.0.1.1", AdaptiveCompensator(), WAVELAN_2_4GHZ)


def test_replay_matches_live_run_closely(capture):
    """Replaying the *same* policy over the capture must land close to
    the live client's measured energy."""
    live = capture
    frames = live.monitor.frames
    result = replay_policy(
        frames, client_ip(0), AdaptiveCompensator(early_s=0.006),
        WAVELAN_2_4GHZ, duration_s=live.sim.now,
    )
    from repro.energy.analyzer import EnergyAnalyzer

    analyzer = EnergyAnalyzer(
        frames, WAVELAN_2_4GHZ, duration_s=live.sim.now, trace=live.trace
    )
    live_report = analyzer.analyze(
        "live", client_ip(0), live.clients[0].wnic
    )
    assert result.report.energy_saved_pct == pytest.approx(
        live_report.energy_saved_pct, abs=4.0
    )
    assert result.schedules_heard > 80


def test_replay_hears_schedules_and_bursts(capture):
    frames = capture.monitor.frames
    result = replay_policy(
        frames, client_ip(1), AdaptiveCompensator(early_s=0.006),
        WAVELAN_2_4GHZ, duration_s=capture.sim.now,
    )
    assert result.schedules_heard > 80
    assert result.frames_delivered > 100
    assert result.report.energy_saved_pct > 50.0


def test_sweep_early_amounts_shape(capture):
    """The offline sweep reproduces the Figure 6 trend: less early →
    more missed schedules; more early → more idle wait."""
    frames = capture.monitor.frames
    results = dict(
        sweep_early_amounts(
            frames, client_ip(0), WAVELAN_2_4GHZ,
            early_amounts_s=[0.0, 0.006, 0.012],
            duration_s=capture.sim.now,
        )
    )
    assert (
        results[0.0].missed_schedules >= results[0.006].missed_schedules
    )
    assert (
        results[0.012].report.early_wait_s
        > results[0.006].report.early_wait_s * 0.8
    )


def test_zero_early_replay_misses_more_frames(capture):
    frames = capture.monitor.frames
    eager = replay_policy(
        frames, client_ip(0), AdaptiveCompensator(early_s=0.006),
        WAVELAN_2_4GHZ, duration_s=capture.sim.now,
    )
    risky = replay_policy(
        frames, client_ip(0), AdaptiveCompensator(early_s=0.0, window=0),
        WAVELAN_2_4GHZ, duration_s=capture.sim.now,
    )
    assert risky.frames_missed >= eager.frames_missed
