"""Unit tests for interval overlap and energy integration."""

import numpy as np
import pytest

from repro.energy.model import (
    cumulative_time_fn,
    integrate_intervals,
    merge_intervals,
    naive_breakdown,
    overlap_total,
)
from repro.errors import TraceError
from repro.wnic.power import WAVELAN_2_4GHZ


class TestCumulativeTime:
    def test_empty_base(self):
        fn = cumulative_time_fn([])
        assert fn(5.0) == 0.0

    def test_single_interval(self):
        fn = cumulative_time_fn([(1.0, 3.0)])
        assert fn(0.5) == 0.0
        assert fn(2.0) == pytest.approx(1.0)
        assert fn(10.0) == pytest.approx(2.0)

    def test_multiple_intervals(self):
        fn = cumulative_time_fn([(0.0, 1.0), (2.0, 4.0)])
        assert fn(3.0) == pytest.approx(2.0)
        assert fn(5.0) == pytest.approx(3.0)

    def test_unsorted_base_rejected(self):
        with pytest.raises(TraceError):
            cumulative_time_fn([(2.0, 3.0), (0.0, 1.0)])

    def test_inverted_interval_rejected(self):
        with pytest.raises(TraceError):
            cumulative_time_fn([(3.0, 2.0)])


class TestOverlap:
    def test_no_overlap(self):
        assert overlap_total([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0

    def test_partial_overlap(self):
        assert overlap_total([(0.0, 2.0)], [(1.0, 3.0)]) == pytest.approx(1.0)

    def test_query_inside_base(self):
        assert overlap_total([(0.0, 10.0)], [(2.0, 3.0)]) == pytest.approx(1.0)

    def test_overlapping_queries_not_double_counted(self):
        total = overlap_total([(0.0, 10.0)], [(1.0, 3.0), (2.0, 4.0)])
        assert total == pytest.approx(3.0)

    def test_empty_queries(self):
        assert overlap_total([(0.0, 1.0)], []) == 0.0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        starts = np.sort(rng.uniform(0, 100, 20))
        base = [(s, s + 1.0) for s in starts if True]
        # ensure disjoint
        base = [
            (s, min(e, base[i + 1][0]) if i + 1 < len(base) else e)
            for i, (s, e) in enumerate(base)
        ]
        queries = [(float(x), float(x + rng.uniform(0, 5))) for x in rng.uniform(0, 100, 30)]

        def brute(base, queries):
            resolution = 0.001
            timeline = np.zeros(int(110 / resolution), dtype=bool)
            qline = np.zeros_like(timeline)
            for s, e in base:
                timeline[int(s / resolution): int(e / resolution)] = True
            for s, e in queries:
                qline[int(s / resolution): int(e / resolution)] = True
            return (timeline & qline).sum() * resolution

        assert overlap_total(base, queries) == pytest.approx(
            brute(base, queries), abs=0.1
        )


class TestMergeIntervals:
    def test_merges_overlaps(self):
        merged = merge_intervals(np.array([[0.0, 2.0], [1.0, 3.0], [5.0, 6.0]]))
        assert merged.tolist() == [[0.0, 3.0], [5.0, 6.0]]

    def test_sorts_input(self):
        merged = merge_intervals(np.array([[5.0, 6.0], [0.0, 1.0]]))
        assert merged.tolist() == [[0.0, 1.0], [5.0, 6.0]]

    def test_empty(self):
        assert merge_intervals(np.empty((0, 2))).size == 0


class TestIntegrateIntervals:
    def test_always_asleep(self):
        breakdown = integrate_intervals(
            awake=[], rx_frames=[], tx_frames=[], duration_s=100.0,
            wake_count=0, power=WAVELAN_2_4GHZ,
        )
        assert breakdown.sleep_s == pytest.approx(100.0)
        assert breakdown.energy_j == pytest.approx(100.0 * 0.177)

    def test_always_awake_no_traffic(self):
        breakdown = integrate_intervals(
            awake=[(0.0, 100.0)], rx_frames=[], tx_frames=[],
            duration_s=100.0, wake_count=0, power=WAVELAN_2_4GHZ,
        )
        assert breakdown.idle_s == pytest.approx(100.0)
        assert breakdown.energy_j == pytest.approx(100.0 * 1.319)

    def test_rx_only_counts_awake_overlap(self):
        breakdown = integrate_intervals(
            awake=[(0.0, 10.0)],
            rx_frames=[(5.0, 6.0), (50.0, 51.0)],  # second is while asleep
            tx_frames=[],
            duration_s=100.0,
            wake_count=1,
            power=WAVELAN_2_4GHZ,
        )
        assert breakdown.receive_s == pytest.approx(1.0)
        assert breakdown.idle_s == pytest.approx(9.0)
        assert breakdown.sleep_s == pytest.approx(90.0)

    def test_wake_penalty_added(self):
        no_wakes = integrate_intervals(
            awake=[], rx_frames=[], tx_frames=[], duration_s=10.0,
            wake_count=0, power=WAVELAN_2_4GHZ,
        )
        with_wakes = integrate_intervals(
            awake=[], rx_frames=[], tx_frames=[], duration_s=10.0,
            wake_count=5, power=WAVELAN_2_4GHZ,
        )
        assert with_wakes.energy_j - no_wakes.energy_j == pytest.approx(
            5 * WAVELAN_2_4GHZ.wake_penalty_j
        )

    def test_residency_sums_to_duration(self):
        breakdown = integrate_intervals(
            awake=[(10.0, 30.0), (50.0, 55.0)],
            rx_frames=[(12.0, 13.0)],
            tx_frames=[(14.0, 14.5)],
            duration_s=100.0,
            wake_count=2,
            power=WAVELAN_2_4GHZ,
        )
        assert breakdown.duration_s == pytest.approx(100.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError):
            integrate_intervals(
                awake=[], rx_frames=[], tx_frames=[], duration_s=-1.0,
                wake_count=0, power=WAVELAN_2_4GHZ,
            )


class TestNaiveBreakdown:
    def test_naive_idles_when_not_receiving(self):
        breakdown = naive_breakdown(
            rx_frames=[(0.0, 10.0)], tx_frames=[], duration_s=100.0,
            power=WAVELAN_2_4GHZ,
        )
        assert breakdown.receive_s == pytest.approx(10.0)
        assert breakdown.idle_s == pytest.approx(90.0)
        assert breakdown.sleep_s == 0.0

    def test_naive_energy_exceeds_sleeping_client(self):
        rx = [(float(i), float(i) + 0.01) for i in range(0, 100, 10)]
        naive = naive_breakdown(rx, [], 100.0, WAVELAN_2_4GHZ)
        aware = integrate_intervals(
            awake=[(float(i), float(i) + 0.02) for i in range(0, 100, 10)],
            rx_frames=rx, tx_frames=[], duration_s=100.0, wake_count=10,
            power=WAVELAN_2_4GHZ,
        )
        assert aware.energy_j < naive.energy_j
        saved = 1 - aware.energy_j / naive.energy_j
        assert saved > 0.8  # sparse traffic -> large savings
