"""Property-based tests for energy accounting invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.model import integrate_intervals, naive_breakdown
from repro.wnic.power import WAVELAN_2_4GHZ


@st.composite
def disjoint_intervals(draw, max_t=100.0, max_n=20):
    """Sorted, disjoint [start, end) intervals inside [0, max_t]."""
    n = draw(st.integers(0, max_n))
    points = sorted(
        draw(
            st.lists(
                st.floats(0.0, max_t, allow_nan=False),
                min_size=2 * n, max_size=2 * n, unique=True,
            )
        )
    )
    return [(points[2 * i], points[2 * i + 1]) for i in range(n)]


@st.composite
def frame_intervals(draw, max_t=100.0, max_n=30):
    """Arbitrary (possibly overlapping) frame airtime intervals."""
    n = draw(st.integers(0, max_n))
    frames = []
    for _ in range(n):
        start = draw(st.floats(0.0, max_t - 0.01, allow_nan=False))
        length = draw(st.floats(0.0001, 0.01, allow_nan=False))
        frames.append((start, min(max_t, start + length)))
    return frames


class TestEnergyInvariants:
    @given(
        awake=disjoint_intervals(),
        rx=frame_intervals(),
        tx=frame_intervals(),
        wakes=st.integers(0, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_residency_sums_to_duration(self, awake, rx, tx, wakes):
        breakdown = integrate_intervals(
            awake=awake, rx_frames=rx, tx_frames=tx, duration_s=100.0,
            wake_count=wakes, power=WAVELAN_2_4GHZ,
        )
        assert breakdown.duration_s <= 100.0 + 1e-6
        for value in (
            breakdown.sleep_s, breakdown.idle_s, breakdown.receive_s,
            breakdown.transmit_s,
        ):
            assert value >= -1e-9

    def test_simultaneous_rx_tx_charged_as_transmit_only(self):
        """Half-duplex: coinciding rx/tx airtime must not double count
        (regression for a hypothesis-found residency overflow)."""
        breakdown = integrate_intervals(
            awake=[(0.0, 1.0)], rx_frames=[(0.0, 1.0)],
            tx_frames=[(0.0, 1.0)], duration_s=100.0,
            wake_count=0, power=WAVELAN_2_4GHZ,
        )
        assert breakdown.receive_s == 0.0
        assert breakdown.transmit_s == 1.0
        assert abs(breakdown.duration_s - 100.0) < 1e-9

    @given(awake=disjoint_intervals(), rx=frame_intervals())
    @settings(max_examples=100, deadline=None)
    def test_power_aware_never_beats_all_sleep_nor_exceeds_naive(
        self, awake, rx
    ):
        breakdown = integrate_intervals(
            awake=awake, rx_frames=rx, tx_frames=[], duration_s=100.0,
            wake_count=0, power=WAVELAN_2_4GHZ,
        )
        floor = 100.0 * WAVELAN_2_4GHZ.sleep_w
        ceiling = naive_breakdown(rx, [], 100.0, WAVELAN_2_4GHZ).energy_j
        assert breakdown.energy_j >= floor - 1e-6
        assert breakdown.energy_j <= ceiling + 1e-6

    @given(awake=disjoint_intervals(), rx=frame_intervals())
    @settings(max_examples=60, deadline=None)
    def test_more_awake_time_never_costs_less(self, awake, rx):
        """Adding awake time is monotone in energy (idle > sleep)."""
        base = integrate_intervals(
            awake=awake, rx_frames=rx, tx_frames=[], duration_s=200.0,
            wake_count=0, power=WAVELAN_2_4GHZ,
        )
        extended = list(awake) + [(150.0, 160.0)]
        extended = sorted(extended)
        # keep only if still disjoint (awake drawn inside [0, 100])
        more = integrate_intervals(
            awake=extended, rx_frames=rx, tx_frames=[], duration_s=200.0,
            wake_count=0, power=WAVELAN_2_4GHZ,
        )
        assert more.energy_j >= base.energy_j - 1e-9

    @given(rx=frame_intervals())
    @settings(max_examples=60, deadline=None)
    def test_naive_receive_time_bounded_by_merged_airtime(self, rx):
        breakdown = naive_breakdown(rx, [], 100.0, WAVELAN_2_4GHZ)
        total_span = sum(e - s for s, e in rx)
        assert breakdown.receive_s <= total_span + 1e-9
