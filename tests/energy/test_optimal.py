"""Unit tests for the theoretical-optimal formula (paper §4.3)."""

import pytest

from repro.energy.optimal import (
    naive_energy_j,
    optimal_energy_j,
    optimal_energy_saved_pct,
    receive_time_s,
)
from repro.errors import ConfigurationError
from repro.units import kbps, mbps
from repro.wnic.power import WAVELAN_2_4GHZ

#: The paper's trailer: 1:59 at the listed *effective* bitrates.
TRAILER_S = 119.0
EFFECTIVE_BITRATE = {56: kbps(34), 256: kbps(225), 512: kbps(450)}


def stream_bytes(nominal_kbps):
    return int(EFFECTIVE_BITRATE[nominal_kbps] * TRAILER_S / 8)


class TestReceiveTime:
    def test_basic(self):
        assert receive_time_s(1_000_000, mbps(8)) == pytest.approx(1.0)

    def test_zero_bytes(self):
        assert receive_time_s(0, mbps(1)) == 0.0

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            receive_time_s(100, 0.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            receive_time_s(-1, mbps(1))


class TestOptimalFormula:
    def test_stream_too_big_for_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_energy_j(10**9, 1.0, mbps(1), WAVELAN_2_4GHZ)

    def test_savings_decrease_with_fidelity(self):
        """Paper: optimal is 90% / 83% / 77% for 56K / 256K / 512K."""
        saved = {
            rate: optimal_energy_saved_pct(
                stream_bytes(rate), TRAILER_S, mbps(4.5), WAVELAN_2_4GHZ
            )
            for rate in (56, 256, 512)
        }
        assert saved[56] > saved[256] > saved[512]

    def test_magnitudes_match_paper_shape(self):
        """Within a few points of the paper's 90/83/77."""
        expected = {56: 90.0, 256: 83.0, 512: 77.0}
        for rate, paper_value in expected.items():
            ours = optimal_energy_saved_pct(
                stream_bytes(rate), TRAILER_S, mbps(4.5), WAVELAN_2_4GHZ
            )
            assert ours == pytest.approx(paper_value, abs=6.0)

    def test_zero_byte_stream_saves_maximum(self):
        saved = optimal_energy_saved_pct(0, 100.0, mbps(4), WAVELAN_2_4GHZ)
        ratio = WAVELAN_2_4GHZ.sleep_w / WAVELAN_2_4GHZ.idle_w
        assert saved == pytest.approx(100.0 * (1 - ratio))

    def test_optimal_below_naive(self):
        for rate in (56, 256, 512):
            optimal = optimal_energy_j(
                stream_bytes(rate), TRAILER_S, mbps(4.5), WAVELAN_2_4GHZ
            )
            naive = naive_energy_j(
                stream_bytes(rate), TRAILER_S, mbps(4.5), WAVELAN_2_4GHZ
            )
            assert optimal < naive
