"""Incremental (--changed) mode: merge-base diff + untracked files."""

import subprocess
from pathlib import Path

import pytest

from repro.analysis.incremental import changed_python_files, restrict_to
from repro.errors import ConfigurationError


def git(repo, *args):
    subprocess.run(
        [
            "git",
            "-c", "user.email=t@example.invalid",
            "-c", "user.name=t",
            *args,
        ],
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture
def repo(tmp_path):
    git(tmp_path, "init", "-b", "main")
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("A = 1\n")
    (tmp_path / "pkg" / "b.py").write_text("B = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    git(tmp_path, "add", "-A")
    git(tmp_path, "commit", "-m", "seed")
    return tmp_path


class TestChangedPythonFiles:
    def test_clean_tree_reports_nothing(self, repo):
        assert changed_python_files("main", cwd=repo) == []

    def test_modified_and_untracked_files_are_listed(self, repo):
        git(repo, "checkout", "-b", "feature")
        (repo / "pkg" / "a.py").write_text("A = 2\n")
        (repo / "pkg" / "c.py").write_text("C = 1\n")  # untracked
        (repo / "notes.txt").write_text("still not python\n")
        changed = changed_python_files("main", cwd=repo)
        assert [p.name for p in changed] == ["a.py", "c.py"]

    def test_deleted_files_are_skipped(self, repo):
        git(repo, "checkout", "-b", "feature")
        (repo / "pkg" / "b.py").unlink()
        git(repo, "add", "-A")
        git(repo, "commit", "-m", "drop b")
        assert changed_python_files("main", cwd=repo) == []

    def test_merge_base_ignores_changes_already_on_base(self, repo):
        git(repo, "checkout", "-b", "feature")
        (repo / "pkg" / "c.py").write_text("C = 1\n")
        git(repo, "add", "-A")
        git(repo, "commit", "-m", "feature work")
        # Advance main independently; the diff is against the fork
        # point, so main's later churn does not appear.
        git(repo, "checkout", "main")
        (repo / "pkg" / "a.py").write_text("A = 99\n")
        git(repo, "add", "-A")
        git(repo, "commit", "-m", "main churn")
        git(repo, "checkout", "feature")
        changed = changed_python_files("main", cwd=repo)
        assert [p.name for p in changed] == ["c.py"]

    def test_bad_base_raises_configuration_error(self, repo):
        with pytest.raises(ConfigurationError):
            changed_python_files("no-such-ref", cwd=repo)


class TestRestrictTo:
    def test_keeps_only_files_under_scopes(self, tmp_path):
        keep = tmp_path / "src" / "x.py"
        drop = tmp_path / "other" / "y.py"
        keep.parent.mkdir()
        drop.parent.mkdir()
        keep.touch()
        drop.touch()
        kept = restrict_to([keep, drop], [tmp_path / "src"])
        assert kept == [keep]

    def test_exact_file_scope_matches(self, tmp_path):
        f = tmp_path / "x.py"
        f.touch()
        assert restrict_to([f], [f]) == [f]
        assert restrict_to([f], [tmp_path / "z.py"]) == []
