"""Engine mechanics: suppressions, baseline, pragmas, select/ignore."""

import json

import pytest

from repro.analysis import (
    EVERYWHERE,
    PARSE_RULE,
    UNUSED_SUPPRESSION_RULE,
    AnalysisConfig,
    analyze_source,
    filter_baselined,
    load_baseline,
    module_path_for,
    write_baseline,
)
from repro.analysis.suppress import parse_suppressions
from repro.errors import ConfigurationError


def analyze(source, module_path="experiments/fake.py", config=None):
    return analyze_source(source, "fake.py", module_path, config)


class TestSuppressions:
    def test_noqa_suppresses_matching_rule(self):
        src = 'raise ValueError("x")  # repro: noqa[ERR001] -- intentional\n'
        assert analyze(src) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = 'raise ValueError("x")  # repro: noqa[DET001] -- wrong rule\n'
        rules = {f.rule for f in analyze(src)}
        assert "ERR001" in rules
        # ... and the mismatched waiver is itself reported as unused.
        assert UNUSED_SUPPRESSION_RULE in rules

    def test_multi_rule_noqa(self):
        src = 'raise ValueError("x")  # repro: noqa[ERR001,DET001] -- both\n'
        findings = analyze(src)
        # ERR001 suppressed; DET001 waiver unused.
        assert [f.rule for f in findings] == [UNUSED_SUPPRESSION_RULE]

    def test_unused_suppression_reported(self):
        src = "X = 1  # repro: noqa[ERR001] -- stale\n"
        findings = analyze(src)
        assert [f.rule for f in findings] == [UNUSED_SUPPRESSION_RULE]
        assert "ERR001" in findings[0].message

    def test_reason_is_parsed(self):
        found = parse_suppressions(
            "x = 1  # repro: noqa[ERR001] -- because reasons\n"
        )
        assert found[1].reason == "because reasons"
        assert found[1].rules == ("ERR001",)

    def test_noqa_inside_string_literal_is_ignored(self):
        src = 's = "# repro: noqa[ERR001] -- not a comment"\n'
        assert parse_suppressions(src) == {}

    def test_disabled_rule_waiver_not_reported_unused(self):
        src = 'raise ValueError("x")  # repro: noqa[ERR001] -- intentional\n'
        config = AnalysisConfig(ignore=frozenset({"ERR001"}))
        assert analyze(src, config=config) == []


class TestEngine:
    def test_syntax_error_reported_as_parse_finding(self):
        findings = analyze("def broken(:\n")
        assert [f.rule for f in findings] == [PARSE_RULE]

    def test_module_path_pragma_overrides_location(self):
        src = (
            "# repro: module-path=sim/fake.py\n"
            "import socket\n"
        )
        assert {f.rule for f in analyze(src, module_path="outside.py")} == {
            "SIM001"
        }

    def test_select_runs_only_listed_rules(self):
        src = "import random\nraise ValueError('x')\n"
        config = AnalysisConfig(select=frozenset({"DET001"}))
        rules = {f.rule for f in analyze(src, config=config)}
        assert rules == {"DET001"}

    def test_everywhere_config_ignores_scopes(self):
        src = "import socket\n"
        assert {f.rule for f in analyze(src, "outside.py", EVERYWHERE)} == {
            "SIM001"
        }

    def test_module_path_for(self):
        from pathlib import Path

        assert module_path_for(
            Path("src/repro/core/scheduler.py")
        ) == "core/scheduler.py"
        assert module_path_for(Path("elsewhere/thing.py")) == "thing.py"

    def test_findings_sorted_by_location(self):
        src = "raise ValueError('b')\nraise ValueError('a')\n"
        findings = analyze(src)
        assert [f.line for f in findings] == [1, 2]


class TestBaseline:
    def test_round_trip_filters_known_findings(self, tmp_path):
        src = "raise ValueError('x')\n"
        findings = analyze(src)
        assert findings
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        allowed = load_baseline(path)
        assert filter_baselined(findings, allowed) == []

    def test_new_findings_survive_filter(self, tmp_path):
        old = analyze("raise ValueError('x')\n")
        path = tmp_path / "baseline.json"
        write_baseline(path, old)
        allowed = load_baseline(path)
        new = analyze("raise ValueError('x')\nraise RuntimeError('y')\n")
        fresh = filter_baselined(new, allowed)
        assert len(fresh) == 1
        assert "RuntimeError" in fresh[0].message

    def test_count_budget_is_respected(self, tmp_path):
        one = analyze("raise ValueError('x')\n")
        path = tmp_path / "baseline.json"
        write_baseline(path, one)
        allowed = load_baseline(path)
        two = analyze("raise ValueError('x')\nraise ValueError('x')\n")
        assert len(filter_baselined(two, allowed)) == 1

    def test_corrupt_baseline_raises_configuration_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json")
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_stale_waivers_cannot_be_grandfathered(self, tmp_path):
        # A file whose only problem is an unused suppression: the
        # SUP001 finding must neither be written into a baseline nor
        # filtered out by one that (hand-edited) lists it.
        src = "x = 1  # repro: noqa[ERR001] -- nothing here raises\n"
        findings = analyze(src)
        assert [f.rule for f in findings] == ["SUP001"]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert load_baseline(path) == {}  # nothing was recorded
        forged = {findings[0].fingerprint(): 5}
        assert filter_baselined(findings, forged) == findings

    def test_parse_errors_cannot_be_grandfathered(self, tmp_path):
        findings = analyze("def broken(:\n")
        assert [f.rule for f in findings] == ["E000"]
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        assert load_baseline(path) == {}
        forged = {findings[0].fingerprint(): 1}
        assert filter_baselined(findings, forged) == findings
